#!/usr/bin/env python
"""Interleaved A/B guard: the observability plane must not tax the
invoke hot path.

The two gated scenarios are the ones the perf record watches most
closely — ``full_invoke_round_trip`` and ``batched_invoke_sizes[32]``.
Both run the core client→host→enclave path, which is registry-free by
construction: no counter, gauge, tracer or verifier hook sits between
``alice.invoke`` and the sealed reply.  This guard keeps it that way.

Two arms, interleaved round by round (A,B,B,A,… so slow drift in the
box cancels instead of biasing one arm):

* arm ``off`` — the scenarios exactly as the microbenchmarks run them,
  no observability object anywhere in the process;
* arm ``on`` — the same scenarios with the plane maximally live in the
  same process: a ``MetricsRegistry`` carrying counters/histograms and
  a registered collector, an enabled ``SpanTracer`` with open spans,
  and a ``ShardedCluster`` running with streaming verification and
  tracing on (constructed and exercised before timing, kept alive
  throughout).

The gate fails when the median of the *per-round* ``on/off`` ratios
exceeds the threshold (default 1.05×).  Per-round ratios — both arms
timed back to back inside each round, GC paused — are the repo's
standing A/B methodology: box-speed drift between rounds divides out
of every ratio instead of landing on one arm.  What it catches: any future change that threads
*gated* instrumentation into the invoke path (``if registry: …``) —
the on-arm pays the call, the off-arm only the branch, and the ratio
moves.  What it leaves to ``run_micro.py --gate``: *ungated* cost added
to the path, which hits both arms equally and shows up against the
committed record instead.

``--arm on|off`` times a single arm and prints its medians as JSON —
that is the stash-interleaved mode: ``git stash push -- src`` keeps
this file in place, so the same harness can time an older revision
(arm ``off`` degrades gracefully when ``repro.obs`` does not exist)
and the per-round medians are comparable across the stash boundary.

``--guard tracing`` runs the *other* A/B: a sharded closed-loop round
with tracing + push export fully ON versus the identical round with
both OFF (streaming verification off in both arms, so the comparison
isolates the span/stage/export machinery).  Tracing is opt-in and
allowed to cost something — stage stamps are wall-clock reads inside
the ecall and every span is a dict — but the cost must stay *bounded*:
the documented bound is 1.60x median per-round ratio (default
threshold for this guard).  What it catches: an exporter flush or
stage probe accidentally becoming super-linear in batch size, or
tracing overhead creeping from "bounded tax" toward "2x the run".

    PYTHONPATH=src:. python benchmarks/ab_guard.py [--threshold 1.05]
    PYTHONPATH=src:. python benchmarks/ab_guard.py --guard tracing
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

GATED_SCENARIOS = ("full_invoke_round_trip", "batched_invoke_sizes[32]")


def _build_scenarios():
    """Fresh deployments + closures for the two gated scenarios.

    Each arm gets its *own* deployments so sealed-state growth in one
    arm can never leak into the other's per-op cost.
    """
    from tests.conftest import build_deployment
    from repro.kvstore import get, put

    from benchmarks.bench_protocol_micro import _batched_invoke_round

    _, _, (alice, *_) = build_deployment()
    alice.invoke(put("k", "v" * 100))

    host, deployment, clients = build_deployment(clients=32)
    _batched_invoke_round(host, deployment, clients)  # warm caches

    return {
        "full_invoke_round_trip": lambda: alice.invoke(get("k")),
        "batched_invoke_sizes[32]": lambda: _batched_invoke_round(
            host, deployment, clients
        ),
    }


def _activate_observability_plane():
    """Make the plane as live as it ever gets, in this process.

    Returns the objects so they stay referenced (and so a stale import
    error on an old revision surfaces as a clean skip, not a crash).
    """
    from repro.kvstore import put
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import SpanTracer
    from repro.sharding import ShardRouter, ShardedCluster

    registry = MetricsRegistry()
    for index in range(64):
        registry.counter("guard.noise", lane=index % 8).inc()
        registry.histogram("guard.sizes").observe(index)
        registry.emit("guard.event", index=index)
    registry.register_collector(lambda reg: reg.gauge("guard.live").set(1))

    tracer = SpanTracer(enabled=True)
    open_spans = [
        tracer.start("operation", client_id=i, shard_id=0) for i in range(8)
    ]

    cluster = ShardedCluster(shards=2, clients=3, seed=5, tracing=True)
    router = ShardRouter(cluster)
    for client_id in cluster.client_ids:
        router.submit(client_id, put(f"ab-{client_id}", "v"))
    cluster.run()
    cluster.metrics()  # collectors fire at least once

    return registry, tracer, open_spans, cluster, router


def _time_chunk(fn, iterations: int) -> float:
    """Per-op seconds for one timed chunk."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _time_round(fn, iterations: int) -> float:
    """Best of two chunks — the repeatable floor, not the noise spikes."""
    return min(_time_chunk(fn, iterations), _time_chunk(fn, iterations))


ITERATIONS = {
    "full_invoke_round_trip": 150,
    "batched_invoke_sizes[32]": 20,
}

# ----------------------------------------------------- pipelined guard

PIPELINED_SCENARIO = "sharded_closed_loop_round[pipelined-vs-serial]"
PIPELINED_ITERATIONS = 3
#: documented bound for the pipelined arm on a host where the overlap
#: buys nothing (single core): the deferral machinery — handle capture,
#: FIFO flush chaining, pool handoff, idle drains — may tax the round,
#: but the tax must stay bounded; multi-core hosts see a ratio < 1
PIPELINED_THRESHOLD = 1.40


def _build_pipelined_arm(backend: str):
    """A sharded closed-loop round under one execution backend.

    ``streaming=False`` in both arms so the ratio isolates the execution
    backend (the deferred-seal machinery), not the verifier.
    """
    from repro.kvstore import get, put
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(
        shards=2, clients=4, seed=11, streaming=False, execution=backend
    )
    router = ShardRouter(cluster)
    keys = [f"guard-{index}" for index in range(8)]

    def round_fn() -> None:
        for client_id in cluster.client_ids:
            for key in keys:
                router.submit(client_id, put(key, "v"))
                router.submit(client_id, get(key))
        cluster.run()

    round_fn()  # warm: provision channels, seal caches, first batches
    return round_fn


def run_interleaved_pipelined(*, rounds: int, warmup: int) -> dict:
    """ABBA-interleaved pipelined vs serial closed-loop rounds."""
    import gc

    arm_fns = {
        "on": _build_pipelined_arm("pipelined"),
        "off": _build_pipelined_arm("serial"),
    }
    timings = {"on": [], "off": []}
    ratios = []
    for round_number in range(warmup + rounds):
        order = ("on", "off") if round_number % 2 == 0 else ("off", "on")
        gc.collect()
        gc.disable()
        try:
            per_op = {
                arm: _time_round(arm_fns[arm], PIPELINED_ITERATIONS)
                for arm in order
            }
        finally:
            gc.enable()
        if round_number >= warmup:
            timings["on"].append(per_op["on"])
            timings["off"].append(per_op["off"])
            ratios.append(per_op["on"] / per_op["off"])
    return {"timings": timings, "ratios": ratios}


# ------------------------------------------------------- tracing guard

TRACING_SCENARIO = "sharded_closed_loop_round"
TRACING_ITERATIONS = 3
#: documented bound for the tracing-on arm: opt-in instrumentation may
#: tax the run, but the tax must stay bounded (see module docstring)
TRACING_THRESHOLD = 1.60


def _build_tracing_arm(enabled: bool):
    """A sharded closed-loop round with the tracing plane on or off.

    ``streaming=False`` in both arms so the ratio isolates spans, stage
    probes and the batch-boundary export flush — not the verifier.
    """
    from repro.kvstore import get, put
    from repro.sharding import ShardRouter, ShardedCluster

    export = None
    if enabled:
        from repro.obs.export import RingSink

        export = RingSink(capacity=4096)
    cluster = ShardedCluster(
        shards=2, clients=4, seed=11, streaming=False,
        tracing=enabled, export=export,
    )
    router = ShardRouter(cluster)
    keys = [f"guard-{index}" for index in range(8)]

    def round_fn() -> None:
        for client_id in cluster.client_ids:
            for key in keys:
                router.submit(client_id, put(key, "v"))
                router.submit(client_id, get(key))
        cluster.run()

    round_fn()  # warm: provision channels, seal caches, first batches
    return round_fn


def run_interleaved_tracing(*, rounds: int, warmup: int) -> dict:
    """ABBA-interleaved tracing-on vs tracing-off closed-loop rounds."""
    import gc

    arm_fns = {"on": _build_tracing_arm(True), "off": _build_tracing_arm(False)}
    timings = {"on": [], "off": []}
    ratios = []
    for round_number in range(warmup + rounds):
        order = ("on", "off") if round_number % 2 == 0 else ("off", "on")
        gc.collect()
        gc.disable()
        try:
            per_op = {
                arm: _time_round(arm_fns[arm], TRACING_ITERATIONS)
                for arm in order
            }
        finally:
            gc.enable()
        if round_number >= warmup:
            timings["on"].append(per_op["on"])
            timings["off"].append(per_op["off"])
            ratios.append(per_op["on"] / per_op["off"])
    return {"timings": timings, "ratios": ratios}


def run_arm(name: str, *, rounds: int, warmup: int) -> dict[str, list[float]]:
    """Time one arm in isolation (the stash-interleaved single-arm mode)."""
    if name == "on":
        _activate_observability_plane()
    scenarios = _build_scenarios()
    timings: dict[str, list[float]] = {key: [] for key in scenarios}
    for round_number in range(warmup + rounds):
        for key, fn in scenarios.items():
            per_op = _time_round(fn, ITERATIONS[key])
            if round_number >= warmup:
                timings[key].append(per_op)
    return timings


def run_interleaved(*, rounds: int, warmup: int) -> dict:
    """Both arms in one process; the per-round on/off ratio is the claim.

    Each round times both arms back to back (first-arm order alternates
    ABBA so neither arm systematically gets the colder cache), with GC
    paused so a collection landing inside one arm's chunk cannot fake a
    regression.  Box-speed drift *between* rounds divides out of every
    per-round ratio.
    """
    import gc

    plane = _activate_observability_plane()  # noqa: F841 — keep it alive
    arm_on = _build_scenarios()
    arm_off = _build_scenarios()
    timings = {
        "on": {key: [] for key in GATED_SCENARIOS},
        "off": {key: [] for key in GATED_SCENARIOS},
    }
    ratios = {key: [] for key in GATED_SCENARIOS}
    for round_number in range(warmup + rounds):
        order = ("on", "off") if round_number % 2 == 0 else ("off", "on")
        for key in GATED_SCENARIOS:
            gc.collect()
            gc.disable()
            try:
                per_op = {}
                for arm in order:
                    fn = (arm_on if arm == "on" else arm_off)[key]
                    per_op[arm] = _time_round(fn, ITERATIONS[key])
            finally:
                gc.enable()
            if round_number >= warmup:
                timings["on"][key].append(per_op["on"])
                timings["off"][key].append(per_op["off"])
                ratios[key].append(per_op["on"] / per_op["off"])
    return {"timings": timings, "ratios": ratios}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=15,
        help="timed rounds per arm (default 15; per-round ratios on a "
        "shared box swing tens of percent, and the median needs that "
        "many samples to hold a 1.05x bound; odd counts avoid "
        "interpolation)",
    )
    parser.add_argument(
        "--warmup", type=int, default=2,
        help="untimed warmup rounds before measurement (default 2)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="fail when median(on)/median(off) exceeds this (default "
        "1.05 for --guard hotpath — the within-noise bound — and "
        f"{TRACING_THRESHOLD} for --guard tracing, the documented "
        "bounded-tax ceiling)",
    )
    parser.add_argument(
        "--guard", choices=("hotpath", "tracing", "pipelined"),
        default="hotpath",
        help="hotpath: registry-free invoke path with the plane merely "
        "alive in-process (gated-instrumentation guard); tracing: "
        "sharded closed-loop round with tracing+export ON vs OFF "
        "(bounded-overhead guard for the opt-in plane); pipelined: the "
        "same round under the pipelined vs serial execution backend "
        "(bounded-overhead guard for the deferred-seal machinery on "
        "hosts where the overlap buys nothing)",
    )
    parser.add_argument(
        "--arm", choices=("on", "off"), default=None,
        help="time a single arm and print its medians as JSON — the "
        "stash-interleaved mode for comparing against older revisions "
        "(--guard hotpath only)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also write the result document to this JSON file",
    )
    args = parser.parse_args()
    if args.threshold is None:
        args.threshold = {
            "tracing": TRACING_THRESHOLD,
            "pipelined": PIPELINED_THRESHOLD,
        }.get(args.guard, 1.05)

    if args.guard in ("tracing", "pipelined"):
        if args.arm is not None:
            parser.error("--arm only applies to --guard hotpath")
        if args.guard == "tracing":
            scenario = TRACING_SCENARIO
            result = run_interleaved_tracing(
                rounds=args.rounds, warmup=args.warmup
            )
            overhead = "tracing-on"
            what = "tracing+export overhead"
        else:
            scenario = PIPELINED_SCENARIO
            result = run_interleaved_pipelined(
                rounds=args.rounds, warmup=args.warmup
            )
            overhead = "pipelined-backend"
            what = "deferred-seal machinery overhead"
        median_on = statistics.median(result["timings"]["on"])
        median_off = statistics.median(result["timings"]["off"])
        ratio = statistics.median(result["ratios"])
        document = {
            "guard": args.guard,
            "threshold": args.threshold,
            "rounds": args.rounds,
            "scenarios": {
                scenario: {
                    "median_on_us": round(median_on * 1e6, 2),
                    "median_off_us": round(median_off * 1e6, 2),
                    "median_round_ratio": round(ratio, 4),
                    "round_ratios": [
                        round(value, 4) for value in result["ratios"]
                    ],
                },
            },
        }
        verdict = "ok" if ratio <= args.threshold else "FAILED"
        print(
            f"  {scenario}: on={median_on * 1e6:.2f}us "
            f"off={median_off * 1e6:.2f}us "
            f"median round ratio={ratio:.3f}x [{verdict}]"
        )
        if args.output:
            pathlib.Path(args.output).write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        if ratio > args.threshold:
            print(
                f"AB GUARD FAILED: {overhead} overhead {ratio:.3f}x beyond "
                f"the documented {args.threshold:.2f}x bound"
            )
            raise SystemExit(1)
        print(
            f"ab guard ok: {what} bounded "
            f"(<= {args.threshold:.2f}x median round ratio)"
        )
        return

    if args.arm is not None:
        timings = run_arm(args.arm, rounds=args.rounds, warmup=args.warmup)
        document = {
            "arm": args.arm,
            "median_us": {
                key: round(statistics.median(values) * 1e6, 2)
                for key, values in timings.items()
            },
            "rounds": args.rounds,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        if args.output:
            pathlib.Path(args.output).write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        return

    result = run_interleaved(rounds=args.rounds, warmup=args.warmup)
    timings, ratios = result["timings"], result["ratios"]
    document = {"threshold": args.threshold, "rounds": args.rounds, "scenarios": {}}
    failed = []
    for key in GATED_SCENARIOS:
        median_on = statistics.median(timings["on"][key])
        median_off = statistics.median(timings["off"][key])
        ratio = statistics.median(ratios[key])
        document["scenarios"][key] = {
            "median_on_us": round(median_on * 1e6, 2),
            "median_off_us": round(median_off * 1e6, 2),
            "median_round_ratio": round(ratio, 4),
            "round_ratios": [round(value, 4) for value in ratios[key]],
        }
        verdict = "ok" if ratio <= args.threshold else "FAILED"
        print(
            f"  {key}: on={median_on * 1e6:.2f}us off={median_off * 1e6:.2f}us "
            f"median round ratio={ratio:.3f}x [{verdict}]"
        )
        if ratio > args.threshold:
            failed.append((key, ratio))
    if args.output:
        pathlib.Path(args.output).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
    if failed:
        print(
            f"AB GUARD FAILED: metrics-on overhead beyond "
            f"{args.threshold:.2f}x on: "
            + ", ".join(f"{key} ({ratio:.3f}x)" for key, ratio in failed)
        )
        raise SystemExit(1)
    print(
        f"ab guard ok: metrics-off overhead within noise "
        f"(<= {args.threshold:.2f}x median ratio) on both gated scenarios"
    )


if __name__ == "__main__":
    main()
