"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but sweeps over the parameters the paper
fixes, showing *why* the published configuration behaves as it does:

1. batch-depth sweep (the paper fixes 16) under fsync;
2. store-per-op vs. store-per-batch (the Sec. 5.2 optimisation);
3. stability quorum size (majority vs. all clients);
4. EPC-size sensitivity for the Sec. 6.2 knee.
"""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import render_series_table
from repro.perf.model import SystemSpec, measure_throughput
from repro.tee.sgx import MIB, EpcModel, MapMemoryModel

from benchmarks.conftest import register_table


def test_ablation_batch_depth(benchmark):
    """Deeper batches amortise the fsync: throughput under synchronous
    writes grows with batch depth and flattens once the per-op work
    dominates the shared flush."""

    depths = [1, 2, 4, 8, 16, 32, 64]

    def sweep():
        return [
            measure_throughput(
                SystemSpec(f"lcm_b{depth}", enclave=True, lcm=True, batch_limit=depth),
                clients=32,
                fsync=True,
            ).ops_per_second
            for depth in depths
        ]

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation-batch-depth",
        description="LCM under fsync, 32 clients, batch depth sweep",
        parameters={"clients": 32, "fsync": True},
        series={"batch_depth": depths, "lcm_ops_per_sec": series},
    )
    register_table(render_series_table(result, x_key="batch_depth"))
    assert series[4] > series[0] * 5          # depth 16 >> depth 1
    assert series[6] > series[4] * 0.9        # diminishing returns past 16


def test_ablation_store_per_batch(benchmark):
    """The Sec. 5.2 optimisation isolated: batching the *ecall and store*
    (batch_limit>1) vs. paying them per operation, under async writes."""

    def run():
        per_op = measure_throughput("lcm", clients=32).ops_per_second
        per_batch = measure_throughput("lcm_batch", clients=32).ops_per_second
        return per_op, per_batch

    per_op, per_batch = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation-store-frequency",
        description="store/ecall per operation vs. per batch (async, 32 clients)",
        parameters={"clients": 32},
        series={"policy": ["per-op", "per-batch"], "ops_per_sec": [per_op, per_batch]},
    )
    register_table(render_series_table(result, x_key="policy"))
    assert per_batch > per_op * 1.2


def test_ablation_stability_quorum(benchmark):
    """Quorum size trades detection strength for stability latency: with a
    full quorum a single silent client freezes stability; a majority
    quorum keeps advancing."""
    from tests.conftest import build_deployment
    from repro.kvstore import put

    def run():
        outcome = {}
        for name, quorum in (("majority", None), ("all-clients", 3)):
            _, _, (alice, bob, carol) = build_deployment(
                clients=3, quorum_override=quorum
            )
            sequence = alice.invoke(put("k", "v")).sequence
            # bob participates; carol stays silent forever
            for _ in range(3):
                alice.poll_stability()
                bob.poll_stability()
            outcome[name] = alice.is_stable(sequence)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation-quorum",
        description="stability progress with one silent client (n=3)",
        parameters={"clients": 3},
        series={
            "quorum": list(outcome),
            "op_becomes_stable": [outcome[k] for k in outcome],
        },
    )
    register_table(render_series_table(result, x_key="quorum"))
    assert outcome["majority"] is True
    assert outcome["all-clients"] is False


def test_ablation_epc_size(benchmark):
    """Sec. 6.2 knee position scales with the usable EPC: doubling the EPC
    pushes the paging penalty past the 1M-object working set."""

    memory = MapMemoryModel()
    working_set = memory.heap_bytes(1_000_000, 40, 100)

    def sweep():
        sizes_mb = [64, 93, 128, 256, 512]
        return sizes_mb, [
            EpcModel(usable_bytes=mb * MIB).latency_multiplier(working_set)
            for mb in sizes_mb
        ]

    sizes_mb, multipliers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation-epc-size",
        description="latency multiplier at 1M objects vs. usable EPC size",
        parameters={"objects": 1_000_000},
        series={"epc_mb": sizes_mb, "latency_multiplier": multipliers},
    )
    register_table(render_series_table(result, x_key="epc_mb"))
    assert multipliers == sorted(multipliers, reverse=True)
    assert multipliers[-1] == 1.0  # 512 MB EPC holds the whole working set
