"""Virtual-time cluster benchmarks: emergent batching on the real protocol.

The Sec. 5.3 prototype flushes its bounded queue whenever the enclave is
free; batch sizes are therefore an *emergent* property of load.  These
benchmarks run the actual protocol (real crypto, real context) over the
DES network and record how batches grow with client count — the mechanism
behind the batching curves of Figs. 5-6.
"""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import render_series_table
from repro.harness.simulated_cluster import SimulatedCluster
from repro.kvstore import get, put

from benchmarks.conftest import register_table


def _drive(clients: int, ops_per_client: int = 8, batch_limit: int = 16):
    cluster = SimulatedCluster(clients=clients, batch_limit=batch_limit, seed=clients)
    for client_id in range(1, clients + 1):
        for round_number in range(ops_per_client):
            if round_number % 2 == 0:
                cluster.submit(client_id, put(f"k{round_number}", str(client_id)))
            else:
                cluster.submit(client_id, get(f"k{round_number - 1}"))
    cluster.run()
    return cluster


def test_cluster_emergent_batch_size(benchmark):
    counts = [1, 2, 4, 8, 16]

    def sweep():
        return [_drive(n).stats.mean_batch_size for n in counts]

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="cluster-batching",
        description="mean emergent batch size vs. client count (real protocol on DES)",
        parameters={"batch_limit": 16, "ops_per_client": 8},
        series={"clients": counts, "mean_batch_size": sizes},
    )
    register_table(render_series_table(result, x_key="clients"))
    assert sizes[0] <= 1.5            # one client cannot form batches
    assert sizes[-1] > sizes[0]       # load grows batches
    assert all(size <= 16 for size in sizes)


def test_cluster_store_amortisation(benchmark):
    """Sealed-state stores per operation fall as batches grow."""

    def run():
        cluster = _drive(12, ops_per_client=6)
        return cluster.host.stored_versions() / cluster.stats.operations_completed

    stores_per_op = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stores_per_op < 0.9        # strictly better than one store per op


def test_cluster_full_run_wall_time(benchmark):
    """End-to-end wall time of a 64-operation protocol run on the DES —
    a regression canary for the whole stack's constant factors."""
    cluster = benchmark.pedantic(
        _drive, args=(8,), kwargs={"ops_per_client": 8}, rounds=3, iterations=1
    )
    assert cluster.stats.operations_completed == 64
    cluster.check_fork_linearizable()
