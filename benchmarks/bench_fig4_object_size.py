"""Fig. 4: throughput vs. object size (100-2500 B), SGX vs. LCM, async.

Paper result: LCM's throughput overhead over the plain SGX KVS is 20.12%
at 100-byte objects and falls to 10.96% at 2500 bytes, because the
protocol's extra work per operation is constant while the crypto cost
grows with the payload.
"""

from repro.harness.experiments import run_fig4_object_size
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_fig4_object_size(benchmark):
    result = benchmark.pedantic(run_fig4_object_size, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="object_size")
        + "\n"
        + summarize_bands(result)
    )
    # LCM below SGX at every size
    for sgx, lcm in zip(result.series["sgx"], result.series["lcm"]):
        assert 0 < lcm < sgx
    # overhead decays from ~20% to ~11% (generous shape bands)
    assert 0.10 <= result.ratios["overhead_smallest"] <= 0.30
    assert 0.05 <= result.ratios["overhead_largest"] <= 0.20
    assert result.ratios["overhead_largest"] < result.ratios["overhead_smallest"]
    assert result.ratios["overhead_decreases"]


def test_fig4_lcm_throughput_decreases_with_size(benchmark):
    result = benchmark.pedantic(
        run_fig4_object_size,
        kwargs={"object_sizes": [100, 1000, 2500]},
        rounds=1,
        iterations=1,
    )
    series = result.series["lcm"]
    assert series[0] > series[1] > series[2]
