"""Fig. 5: throughput vs. #clients (1-32), async disk writes, 7 systems.

Paper results reproduced here:
- Native and Redis scale almost linearly while LCM and SGX saturate
  around 8 clients;
- SGX reaches 0.42x-0.78x of Native;
- LCM reaches 0.67x-0.95x of SGX (0.72x-0.98x with batching);
- the emulated TMC is pinned at ~12 ops/s.
"""

from repro.harness.experiments import run_fig5_clients_async
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_fig5_clients_async(benchmark):
    result = benchmark.pedantic(run_fig5_clients_async, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="clients") + "\n" + summarize_bands(result)
    )
    series = result.series

    # ordering at 32 clients: native/redis on top, then batching variants,
    # then plain SGX, then LCM, with TMC orders of magnitude below.
    at32 = {name: series[name][-1] for name in series if name != "clients"}
    assert at32["native"] > at32["sgx_batch"] > at32["sgx"]
    assert at32["redis"] > at32["lcm_batch"] > at32["lcm"]
    assert at32["sgx_tmc"] < 20

    # saturation: SGX gains <25% from 8 -> 32 clients; native more than 2x
    index8 = result.series["clients"].index(8)
    assert series["sgx"][-1] < series["sgx"][index8] * 1.25
    assert series["native"][-1] > series["native"][index8] * 2

    # the paper's headline ratio bands (with reproduction slack)
    low, high = result.ratios["sgx_vs_native"]
    assert 0.25 <= low <= 0.55 and 0.70 <= high <= 1.0
    low, high = result.ratios["lcm_vs_sgx"]
    assert 0.65 <= low and high <= 1.0
    low, high = result.ratios["lcm_batch_vs_sgx_batch"]
    assert 0.70 <= low and high <= 1.0


def test_fig5_tmc_flat(benchmark):
    result = benchmark.pedantic(
        run_fig5_clients_async,
        kwargs={"systems": ["sgx_tmc"], "client_counts": [1, 8, 32]},
        rounds=1,
        iterations=1,
    )
    series = result.series["sgx_tmc"]
    assert max(series) <= 1.5 * min(series)
    assert 8 <= sum(series) / len(series) <= 20
