"""Fig. 6: throughput vs. #clients with synchronous (fsync) disk writes.

Paper results reproduced here:
- Native, SGX, LCM and SGX+TMC stay flat (one fsync per request);
- Redis, SGX+batching and LCM+batching scale (amortised flushes);
- SGX = 0.98x Native; LCM = 0.69x SGX; LCM+batching = 0.72x-9.87x SGX
  and 0.71x-0.75x SGX+batching.
"""

from repro.harness.experiments import run_fig6_clients_sync
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_fig6_clients_sync(benchmark):
    result = benchmark.pedantic(run_fig6_clients_sync, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="clients") + "\n" + summarize_bands(result)
    )
    series = result.series

    # flat systems stay flat; batching systems scale
    flags = result.ratios["flat_systems"]
    assert all(flags[name] for name in ("native", "sgx", "lcm", "sgx_tmc"))
    assert series["lcm_batch"][-1] > series["lcm_batch"][0] * 4
    assert series["sgx_batch"][-1] > series["sgx_batch"][0] * 4
    assert series["redis"][-1] > series["redis"][0] * 4

    # headline ratios
    low, high = result.ratios["sgx_vs_native"]
    assert 0.9 <= low <= high <= 1.0          # paper: 0.98x
    low, high = result.ratios["lcm_vs_sgx"]
    assert 0.6 <= low <= high <= 0.8          # paper: 0.69x
    low, high = result.ratios["lcm_batch_vs_sgx"]
    assert low >= 0.6 and 7.0 <= high <= 13.0  # paper: 0.72x-9.87x
    low, high = result.ratios["lcm_batch_vs_sgx_batch"]
    assert 0.6 <= low <= high <= 0.85          # paper: 0.71x-0.75x


def test_fig6_fsync_collapse_factor(benchmark):
    """fsync costs non-batching SGX ~50x of its async throughput."""
    from repro.perf.model import measure_throughput

    def run():
        sync = measure_throughput("sgx", clients=8, fsync=True).ops_per_second
        async_ = measure_throughput("sgx", clients=8, fsync=False).ops_per_second
        return sync, async_

    sync, async_ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert async_ / sync > 20
