"""Microbenchmarks of the real (functional) protocol stack.

These time the actual Python implementation — not the calibrated cost
model — so regressions in the protocol hot path (AEAD, hash chain,
sealing, full invoke round trip) are visible in benchmark history.
"""

import pytest

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.crypto.hashing import GENESIS_HASH, chain_extend
from repro.kvstore import get, put

from tests.conftest import build_deployment


def test_micro_aead_encrypt_100b(benchmark):
    key = AeadKey(b"\x01" * 16)
    payload = b"x" * 100
    box = benchmark(auth_encrypt, payload, key)
    assert len(box) == 100 + 28


def test_micro_aead_round_trip_2500b(benchmark):
    key = AeadKey(b"\x01" * 16)
    payload = b"x" * 2500

    def round_trip():
        return auth_decrypt(auth_encrypt(payload, key), key)

    assert benchmark(round_trip) == payload


def test_micro_hash_chain_extend(benchmark):
    operation = serde.encode(["PUT", "k" * 40, "v" * 100])
    value = benchmark(chain_extend, GENESIS_HASH, operation, 1, 1)
    assert len(value) == 32


def test_micro_serde_encode_state(benchmark):
    state = {f"user{i:012d}": "v" * 100 for i in range(100)}
    encoded = benchmark(serde.encode, state)
    assert len(encoded) > 100 * 100


def test_micro_full_invoke_round_trip(benchmark):
    """One complete LCM operation through client, host, enclave and back."""
    _, _, (alice, *_) = build_deployment()
    alice.invoke(put("k", "v" * 100))

    def one_get():
        return alice.invoke(get("k"))

    result = benchmark(one_get)
    assert result.result == "v" * 100


def test_micro_invoke_with_state_growth(benchmark):
    """Invoke cost with a 1000-object service state (the paper's working
    set) — dominated by sealing the full state each operation."""
    _, _, (alice, *_) = build_deployment()
    for i in range(200):  # scaled-down load phase to keep the suite quick
        alice.invoke(put(f"user{i:012d}", "v" * 100))

    def one_put():
        return alice.invoke(put("user000000000000", "w" * 100))

    result = benchmark(one_put)
    assert result.sequence > 200


def _batched_invoke_round(host, deployment, clients):
    """One full batch round trip: seal the batch, one ecall, complete.

    Uses the batch seal API when the revision under test has it (so
    stash-interleaved A/B runs against older revisions keep working:
    the old side falls back to per-payload sealing).
    """
    import repro.core.messages as messages_mod
    from repro.core.messages import InvokePayload

    key = deployment.communication_key
    payloads = [
        InvokePayload(
            client_id=client.client_id,
            last_sequence=client.last_sequence,
            last_chain=client.last_chain,
            operation=serde.encode(["PUT", "shared", "v"]),
        )
        for client in clients
    ]
    seal_invokes = getattr(messages_mod, "seal_invokes", None)
    if seal_invokes is not None:
        boxes = seal_invokes(payloads, key)
    else:
        boxes = [payload.seal(key) for payload in payloads]
    messages = [
        (client.client_id, box) for client, box in zip(clients, boxes)
    ]
    replies = host.send_invoke_batch(messages)
    # feed the replies back so contexts stay current between rounds
    unseal_replies = getattr(messages_mod, "unseal_replies", None)
    if unseal_replies is not None:
        for client, fields in zip(clients, unseal_replies(replies, key)):
            client._complete_fields(("PUT", "shared", "v"), fields)
    else:
        for client, reply in zip(clients, replies):
            client._complete(("PUT", "shared", "v"), reply)
    return replies


def test_micro_batched_invoke(benchmark):
    """A 16-message batch through one ecall (the Sec. 5.2 fast path).

    Since PR 3 the rounds are preceded by warmup (cold-start effects —
    interpreter specialization, cache fills — used to contribute a
    constant ~60µs to the 20-round median, drowning real deltas).  When
    comparing against an older revision, run *both* sides under this
    harness interleaved (``git stash push -- src`` keeps the benchmark
    files in place) so the methodology cancels out.
    """
    host, deployment, clients = build_deployment(clients=16)

    def one_batch():
        return _batched_invoke_round(host, deployment, clients)

    replies = benchmark.pedantic(
        one_batch, rounds=20, iterations=1, warmup_rounds=10
    )
    assert len(replies) == 16


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_micro_batched_invoke_sizes(benchmark, batch_size):
    """The batched-invoke family across batch sizes (Sec. 5.2/5.3
    amortisation curve): per-op cost should fall as the batch grows.
    Warmup rounds exclude cold caches from the steady-state numbers."""
    host, deployment, clients = build_deployment(clients=batch_size)

    def one_batch():
        return _batched_invoke_round(host, deployment, clients)

    replies = benchmark.pedantic(
        one_batch, rounds=30, iterations=1, warmup_rounds=5
    )
    assert len(replies) == batch_size


@pytest.mark.slow
def test_micro_parallel_invoke_4shards(benchmark):
    """Wall-clock (not virtual-time) cost of one 4-shard trace under the
    serial vs threaded execution backend.  On a multi-core host the
    threaded backend overlaps the shards' one-C-call batch ecalls (GIL
    released inside the C fastpath), so the ratio measures real
    multi-core scaling; single-core runners skip the speedup assertion
    (pool overhead with nothing to overlap) but still verify that the
    audit evidence is byte-identical across backends.  Older revisions
    without the execution-backend seam skip (stash-interleaved A/B)."""
    import os

    from repro.harness import experiments

    run_parallel = getattr(experiments, "run_parallel_wallclock", None)
    if run_parallel is None:
        pytest.skip("revision predates the execution-backend seam")

    def one_comparison():
        return run_parallel(shards=4, clients=8, requests_per_client=20)

    result = benchmark.pedantic(
        one_comparison, rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.ratios["identical_digests"]
    assert result.ratios["zero_violations"]
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert result.ratios["threaded_speedup"] > 1.0
    else:
        # same convention as run_micro's missing-bench notices: say why
        # the assertion is not running instead of silently passing
        print(
            "  test_micro_parallel_invoke_4shards: speedup assertion "
            f"skipped — single-core host (os.cpu_count()={cores}); "
            "determinism contract still verified"
        )


def test_micro_pipelined_invoke(benchmark):
    """A fixed closed-loop sharded round under the pipelined backend's
    default (wall-only) mode: every batch's ``state_seal`` flush runs on
    the worker pool, overlapped with the next batch's ecall, while the
    virtual schedule — and every byte of evidence — stays the serial
    backend's.  What this tracks is the cost of the deferral machinery
    itself (handle capture, FIFO flush chaining, idle drains); on a
    multi-core box the overlap turns into real wall-clock savings.
    Older revisions without the pipelined backend skip
    (stash-interleaved A/B)."""
    from repro.server import execution as execution_mod

    if getattr(execution_mod, "PipelinedBackend", None) is None:
        pytest.skip("revision predates the pipelined execution backend")
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=2, clients=4, seed=17, execution="pipelined")
    router = ShardRouter(cluster)

    def one_round():
        for client_id in cluster.client_ids:
            for i in range(4):
                router.submit(client_id, put(f"k-{i}", "v" * 64))
        cluster.run()

    benchmark.pedantic(one_round, rounds=10, iterations=1, warmup_rounds=2)
    gauges = cluster.metrics()["gauges"]
    assert gauges.get("dispatch.seals_deferred", 0) > 0
    assert all(
        cluster.shard_violation(sid) is None for sid in cluster.shard_ids
    )


def test_micro_shard_scaling(benchmark):
    """A fixed uniform workload over 2 sharded groups vs. the same keys
    funneled through 1 group — the per-round cost of the routed path,
    provisioning excluded (clusters are reused across rounds)."""
    from repro.sharding import ShardRouter, ShardedCluster

    clusters = {
        shards: ShardedCluster(shards=shards, clients=4, seed=shards)
        for shards in (1, 2)
    }
    routers = {shards: ShardRouter(cluster) for shards, cluster in clusters.items()}

    def one_round():
        elapsed = {}
        for shards, cluster in clusters.items():
            router = routers[shards]
            start = cluster.sim.now
            for client_id in cluster.client_ids:
                for i in range(4):
                    # fixed key set: state size (and so per-round cost)
                    # reaches steady state after the first round
                    router.submit(client_id, put(f"k-{i}", "v" * 64))
            cluster.run()
            elapsed[shards] = cluster.sim.now - start
        return elapsed

    elapsed = benchmark.pedantic(one_round, rounds=10, iterations=1)
    # two groups drain the same offered load in less virtual time
    assert elapsed[2] < elapsed[1]


def _handoff_pair(keys=100):
    """Two live single-group deployments in one attestation group, with a
    populated keyspace and the arc list that moves the lower half of the
    ring."""
    from repro.crypto.attestation import EpidGroup
    from repro.crypto.hashing import RING_SPAN
    from repro.tee import TeePlatform

    group = EpidGroup()
    host_a, _, (alice, *_) = build_deployment(
        epid_group=group, platform=TeePlatform(group, seed=71)
    )
    host_b, _, _ = build_deployment(
        epid_group=group, platform=TeePlatform(group, seed=72)
    )
    for i in range(keys):
        alice.invoke(put(f"user{i:012d}", "v" * 64))
    return host_a, host_b, group.verifier(), [[0, RING_SPAN // 2]]


def test_micro_key_handoff_round_trip(benchmark):
    """One elastic-resharding handoff there and back: mutual attestation,
    arc filtering inside both enclaves, sealed bundle transfer, chained
    import/export and a state seal on each side.  Bouncing the same arcs
    A→B→A keeps the states stationary across rounds."""
    from repro.core.migration import migrate_keys

    host_a, host_b, verifier, arcs = _handoff_pair()

    def bounce():
        moved_out = migrate_keys(host_a, host_b, verifier, arcs)
        moved_back = migrate_keys(host_b, host_a, verifier, arcs)
        return moved_out, moved_back

    moved_out, moved_back = benchmark.pedantic(
        bounce, rounds=15, iterations=1, warmup_rounds=2
    )
    assert moved_out == moved_back > 0


def test_micro_cross_shard_txn(benchmark):
    """One two-participant atomic commit through the router's 2PC
    coordinator: two prepares and two decisions — four sequenced LCM
    operations over two groups — per round, clusters reused across
    rounds so the cost is the steady-state transaction path."""
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=2, clients=4, seed=41)
    router = ShardRouter(cluster)
    keys, index = [], 0
    while len(keys) < 2:
        key = f"txnkey-{index}"
        index += 1
        if not keys or cluster.ring.owner(key) != cluster.ring.owner(keys[0]):
            keys.append(key)
    for key in keys:
        router.submit(1, put(key, "v" * 64))
    cluster.run()

    def one_txn():
        done = {}
        router.submit_txn(
            1,
            [put(keys[0], "v" * 64), put(keys[1], "v" * 64)],
            lambda result: done.setdefault("r", result),
        )
        cluster.run()
        return done["r"]

    result = benchmark.pedantic(one_txn, rounds=15, iterations=1, warmup_rounds=3)
    assert result.committed
    assert router.transactions_aborted == 0


def _group_commit_cluster(shards, seed=47, clients=4):
    """A persistent cluster with a preloaded key universe and a fixed
    list of cross-shard key pairs for the group-commit rounds."""
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=shards, clients=clients, seed=seed)
    router = ShardRouter(cluster)
    keys = [f"gc-{i:04d}" for i in range(48)]
    for key in keys:
        router.submit(1, put(key, "v" * 64))
    cluster.run()
    by_shard = {}
    for key in keys:
        by_shard.setdefault(cluster.ring.owner(key), []).append(key)
    shard_ids = sorted(by_shard)
    pairs = []
    for index in range(16):
        shard_a = shard_ids[index % len(shard_ids)]
        shard_b = shard_ids[(index + 1) % len(shard_ids)]
        pairs.append(
            (
                by_shard[shard_a][index % len(by_shard[shard_a])],
                by_shard[shard_b][index % len(by_shard[shard_b])],
            )
        )
    return cluster, router, pairs


def _group_commit_round(cluster, router, pairs, depth=4):
    """One pipelined transaction burst: every client keeps ``depth``
    cross-shard transactions in flight at once, so the coordinator's
    group commit merges their prepares and decisions into *_MANY sealed
    operations — one ecall per participant per boundary."""
    for client_id in cluster.client_ids:
        for slot in range(depth):
            key_a, key_b = pairs[
                (client_id * depth + slot) % len(pairs)
            ]
            router.submit_txn(
                client_id, [put(key_a, "v" * 64), put(key_b, "v" * 64)]
            )
    cluster.run()


#: virtual-time throughput per shard count, filled by the parametrized
#: group-commit bench so the 4-shard variant can assert scaling over 2
_GC_VIRTUAL_TPS = {}


@pytest.mark.parametrize("shards", [2, 4])
def test_micro_txn_group_commit(benchmark, shards):
    """A pipelined burst of cross-shard transactions per round (4
    clients x 4 in flight, multi-key mix with some key overlap so lock
    waiters engage).  Clusters persist across rounds, so the cost is
    the steady-state grouped transaction path; virtual-time throughput
    must rise with the shard count."""
    cluster, router, pairs = _group_commit_cluster(shards)
    elapsed = {}

    def one_burst():
        start = cluster.sim.now
        before = router.transactions_committed + router.transactions_aborted
        _group_commit_round(cluster, router, pairs)
        elapsed["virtual"] = cluster.sim.now - start
        done = router.transactions_committed + router.transactions_aborted
        return done - before

    finished = benchmark.pedantic(
        one_burst, rounds=10, iterations=1, warmup_rounds=2
    )
    assert finished == len(cluster.client_ids) * 4
    assert router.transactions_committed > 0
    assert getattr(router, "txn_group_flushes", 1) > 0
    _GC_VIRTUAL_TPS[shards] = finished / elapsed["virtual"]
    if shards == 4 and 2 in _GC_VIRTUAL_TPS:
        assert _GC_VIRTUAL_TPS[4] > _GC_VIRTUAL_TPS[2]


def test_micro_elastic_reshard(benchmark):
    """A full control-plane split + merge on a quiet populated cluster:
    group provisioning, quiescence barrier, per-arc handoffs and the two
    ring swaps.  Each round adds one shard and removes it again, so the
    cluster returns to its starting shape."""
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=2, clients=4, seed=31)
    router = ShardRouter(cluster)
    for client_id in cluster.client_ids:
        for i in range(25):
            router.submit(client_id, put(f"user{client_id}-{i:04d}", "v" * 64))
    cluster.run()

    def split_and_merge():
        new_id = cluster.add_shard()
        cluster.remove_shard(new_id)
        return new_id

    benchmark.pedantic(split_and_merge, rounds=10, iterations=1, warmup_rounds=1)
    assert cluster.shard_count == 2
    assert cluster.stats.keys_migrated > 0
