"""Microbenchmarks of the real (functional) protocol stack.

These time the actual Python implementation — not the calibrated cost
model — so regressions in the protocol hot path (AEAD, hash chain,
sealing, full invoke round trip) are visible in benchmark history.
"""

import pytest

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.crypto.hashing import GENESIS_HASH, chain_extend
from repro.kvstore import get, put

from tests.conftest import build_deployment


def test_micro_aead_encrypt_100b(benchmark):
    key = AeadKey(b"\x01" * 16)
    payload = b"x" * 100
    box = benchmark(auth_encrypt, payload, key)
    assert len(box) == 100 + 28


def test_micro_aead_round_trip_2500b(benchmark):
    key = AeadKey(b"\x01" * 16)
    payload = b"x" * 2500

    def round_trip():
        return auth_decrypt(auth_encrypt(payload, key), key)

    assert benchmark(round_trip) == payload


def test_micro_hash_chain_extend(benchmark):
    operation = serde.encode(["PUT", "k" * 40, "v" * 100])
    value = benchmark(chain_extend, GENESIS_HASH, operation, 1, 1)
    assert len(value) == 32


def test_micro_serde_encode_state(benchmark):
    state = {f"user{i:012d}": "v" * 100 for i in range(100)}
    encoded = benchmark(serde.encode, state)
    assert len(encoded) > 100 * 100


def test_micro_full_invoke_round_trip(benchmark):
    """One complete LCM operation through client, host, enclave and back."""
    _, _, (alice, *_) = build_deployment()
    alice.invoke(put("k", "v" * 100))

    def one_get():
        return alice.invoke(get("k"))

    result = benchmark(one_get)
    assert result.result == "v" * 100


def test_micro_invoke_with_state_growth(benchmark):
    """Invoke cost with a 1000-object service state (the paper's working
    set) — dominated by sealing the full state each operation."""
    _, _, (alice, *_) = build_deployment()
    for i in range(200):  # scaled-down load phase to keep the suite quick
        alice.invoke(put(f"user{i:012d}", "v" * 100))

    def one_put():
        return alice.invoke(put("user000000000000", "w" * 100))

    result = benchmark(one_put)
    assert result.sequence > 200


def _batched_invoke_round(host, deployment, clients):
    """One full batch round trip: seal per client, one ecall, complete."""
    from repro.core.messages import InvokePayload

    key = deployment.communication_key
    messages = []
    for client in clients:
        payload = InvokePayload(
            client_id=client.client_id,
            last_sequence=client.last_sequence,
            last_chain=client.last_chain,
            operation=serde.encode(["PUT", "shared", "v"]),
        )
        messages.append((client.client_id, payload.seal(key)))
    replies = host.send_invoke_batch(messages)
    # feed the replies back so contexts stay current between rounds
    for client, reply in zip(clients, replies):
        client._complete(("PUT", "shared", "v"), reply)
    return replies


def test_micro_batched_invoke(benchmark):
    """A 16-message batch through one ecall (the Sec. 5.2 fast path).

    Since PR 3 the rounds are preceded by warmup (cold-start effects —
    interpreter specialization, cache fills — used to contribute a
    constant ~60µs to the 20-round median, drowning real deltas).  When
    comparing against an older revision, run *both* sides under this
    harness interleaved (``git stash push -- src`` keeps the benchmark
    files in place) so the methodology cancels out.
    """
    host, deployment, clients = build_deployment(clients=16)

    def one_batch():
        return _batched_invoke_round(host, deployment, clients)

    replies = benchmark.pedantic(
        one_batch, rounds=20, iterations=1, warmup_rounds=10
    )
    assert len(replies) == 16


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_micro_batched_invoke_sizes(benchmark, batch_size):
    """The batched-invoke family across batch sizes (Sec. 5.2/5.3
    amortisation curve): per-op cost should fall as the batch grows.
    Warmup rounds exclude cold caches from the steady-state numbers."""
    host, deployment, clients = build_deployment(clients=batch_size)

    def one_batch():
        return _batched_invoke_round(host, deployment, clients)

    replies = benchmark.pedantic(
        one_batch, rounds=30, iterations=1, warmup_rounds=5
    )
    assert len(replies) == batch_size


def test_micro_shard_scaling(benchmark):
    """A fixed uniform workload over 2 sharded groups vs. the same keys
    funneled through 1 group — the per-round cost of the routed path,
    provisioning excluded (clusters are reused across rounds)."""
    from repro.sharding import ShardRouter, ShardedCluster

    clusters = {
        shards: ShardedCluster(shards=shards, clients=4, seed=shards)
        for shards in (1, 2)
    }
    routers = {shards: ShardRouter(cluster) for shards, cluster in clusters.items()}

    def one_round():
        elapsed = {}
        for shards, cluster in clusters.items():
            router = routers[shards]
            start = cluster.sim.now
            for client_id in cluster.client_ids:
                for i in range(4):
                    # fixed key set: state size (and so per-round cost)
                    # reaches steady state after the first round
                    router.submit(client_id, put(f"k-{i}", "v" * 64))
            cluster.run()
            elapsed[shards] = cluster.sim.now - start
        return elapsed

    elapsed = benchmark.pedantic(one_round, rounds=10, iterations=1)
    # two groups drain the same offered load in less virtual time
    assert elapsed[2] < elapsed[1]


def _handoff_pair(keys=100):
    """Two live single-group deployments in one attestation group, with a
    populated keyspace and the arc list that moves the lower half of the
    ring."""
    from repro.crypto.attestation import EpidGroup
    from repro.crypto.hashing import RING_SPAN
    from repro.tee import TeePlatform

    group = EpidGroup()
    host_a, _, (alice, *_) = build_deployment(
        epid_group=group, platform=TeePlatform(group, seed=71)
    )
    host_b, _, _ = build_deployment(
        epid_group=group, platform=TeePlatform(group, seed=72)
    )
    for i in range(keys):
        alice.invoke(put(f"user{i:012d}", "v" * 64))
    return host_a, host_b, group.verifier(), [[0, RING_SPAN // 2]]


def test_micro_key_handoff_round_trip(benchmark):
    """One elastic-resharding handoff there and back: mutual attestation,
    arc filtering inside both enclaves, sealed bundle transfer, chained
    import/export and a state seal on each side.  Bouncing the same arcs
    A→B→A keeps the states stationary across rounds."""
    from repro.core.migration import migrate_keys

    host_a, host_b, verifier, arcs = _handoff_pair()

    def bounce():
        moved_out = migrate_keys(host_a, host_b, verifier, arcs)
        moved_back = migrate_keys(host_b, host_a, verifier, arcs)
        return moved_out, moved_back

    moved_out, moved_back = benchmark.pedantic(
        bounce, rounds=15, iterations=1, warmup_rounds=2
    )
    assert moved_out == moved_back > 0


def test_micro_cross_shard_txn(benchmark):
    """One two-participant atomic commit through the router's 2PC
    coordinator: two prepares and two decisions — four sequenced LCM
    operations over two groups — per round, clusters reused across
    rounds so the cost is the steady-state transaction path."""
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=2, clients=4, seed=41)
    router = ShardRouter(cluster)
    keys, index = [], 0
    while len(keys) < 2:
        key = f"txnkey-{index}"
        index += 1
        if not keys or cluster.ring.owner(key) != cluster.ring.owner(keys[0]):
            keys.append(key)
    for key in keys:
        router.submit(1, put(key, "v" * 64))
    cluster.run()

    def one_txn():
        done = {}
        router.submit_txn(
            1,
            [put(keys[0], "v" * 64), put(keys[1], "v" * 64)],
            lambda result: done.setdefault("r", result),
        )
        cluster.run()
        return done["r"]

    result = benchmark.pedantic(one_txn, rounds=15, iterations=1, warmup_rounds=3)
    assert result.committed
    assert router.transactions_aborted == 0


def test_micro_elastic_reshard(benchmark):
    """A full control-plane split + merge on a quiet populated cluster:
    group provisioning, quiescence barrier, per-arc handoffs and the two
    ring swaps.  Each round adds one shard and removes it again, so the
    cluster returns to its starting shape."""
    from repro.sharding import ShardRouter, ShardedCluster

    cluster = ShardedCluster(shards=2, clients=4, seed=31)
    router = ShardRouter(cluster)
    for client_id in cluster.client_ids:
        for i in range(25):
            router.submit(client_id, put(f"user{client_id}-{i:04d}", "v" * 64))
    cluster.run()

    def split_and_merge():
        new_id = cluster.add_shard()
        cluster.remove_shard(new_id)
        return new_id

    benchmark.pedantic(split_and_merge, rounds=10, iterations=1, warmup_rounds=1)
    assert cluster.shard_count == 2
    assert cluster.stats.keys_migrated > 0
