"""Sec. 6.2: enclave memory overhead and the EPC paging latency knee.

Paper results: the std::map-backed KVS has ~134% heap overhead (93 MB for
300k objects of 40+100 bytes), and operation latency rises by up to 240%
once the working set exceeds ~300k objects and the SGX driver starts
swapping EPC pages.
"""

import pytest

from repro.harness.experiments import run_sec62_enclave_memory
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_sec62_enclave_memory(benchmark):
    result = benchmark.pedantic(run_sec62_enclave_memory, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="objects") + "\n" + summarize_bands(result)
    )
    assert result.ratios["map_overhead_fraction"] == pytest.approx(1.34, abs=0.3)
    assert result.ratios["heap_mb_at_300k"] == pytest.approx(93.0, rel=0.15)
    assert result.ratios["knee_after_300k"]
    assert result.ratios["max_latency_increase"] == pytest.approx(2.4, abs=0.6)

    # shape: no penalty up to 300k, monotone growth beyond
    objects = result.series["objects"]
    multipliers = result.series["latency_multiplier"]
    knee = objects.index(300_000)
    assert all(m == 1.0 for m in multipliers[: knee + 1])
    assert all(a <= b for a, b in zip(multipliers[knee:], multipliers[knee + 1:]))


def test_sec62_memory_grows_linearly(benchmark):
    result = benchmark.pedantic(
        run_sec62_enclave_memory,
        kwargs={"object_counts": [100_000, 200_000, 400_000]},
        rounds=1,
        iterations=1,
    )
    heap = result.series["heap_mb"]
    assert heap[1] == pytest.approx(2 * heap[0], rel=0.01)
    assert heap[2] == pytest.approx(4 * heap[0], rel=0.01)
