"""Sec. 6.3: LCM protocol message metadata overhead.

Paper result: LCM adds 45 bytes to every operation invocation and
46 bytes to every result, *constant* for varying operation and result
sizes.  Our self-describing serde framing is larger in absolute bytes but
reproduces the constancy — the property Fig. 4's overhead-decay argument
rests on.
"""

from repro import serde
from repro.crypto.aead import AeadKey
from repro.core.messages import invoke_metadata_overhead, reply_metadata_overhead
from repro.harness.experiments import run_sec63_message_overhead
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_sec63_message_overhead(benchmark):
    result = benchmark.pedantic(run_sec63_message_overhead, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="object_size") + "\n" + summarize_bands(result)
    )
    assert result.ratios["invoke_constant"]
    assert result.ratios["reply_constant"]
    assert 0 < result.ratios["invoke_overhead_bytes"] < 300
    assert 0 < result.ratios["reply_overhead_bytes"] < 300


def test_sec63_invoke_seal_throughput(benchmark):
    """Microbenchmark: sealing one INVOKE (the client's per-op crypto)."""
    from repro.core.messages import InvokePayload
    from repro.crypto.hashing import GENESIS_HASH

    key = AeadKey(b"\x01" * 16)
    operation = serde.encode(["PUT", "k" * 40, "v" * 100])
    payload = InvokePayload(
        client_id=1, last_sequence=5, last_chain=GENESIS_HASH, operation=operation
    )
    box = benchmark(payload.seal, key)
    assert len(box) > len(operation)


def test_sec63_reply_unseal_throughput(benchmark):
    """Microbenchmark: verifying and opening one REPLY (client side)."""
    from repro.core.messages import ReplyPayload
    from repro.crypto.hashing import GENESIS_HASH

    key = AeadKey(b"\x01" * 16)
    reply = ReplyPayload(
        sequence=6,
        chain=GENESIS_HASH,
        result=serde.encode("v" * 100),
        stable_sequence=3,
        previous_chain=GENESIS_HASH,
    )
    box = reply.seal(key)
    out = benchmark(ReplyPayload.unseal, box, key)
    assert out.sequence == 6
