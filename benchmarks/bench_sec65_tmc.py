"""Sec. 6.5: the performance impact of trusted monotonic counters.

Paper results: the emulated TMC (60 ms per increment) pins throughput at
~12 ops/s regardless of client count, while LCM with batching is 96x to
2063x faster — the trade the paper makes explicit: TMCs detect rollback
immediately, LCM at the next client interaction, at three orders of
magnitude difference in throughput.
"""

import pytest

from repro.harness.experiments import run_sec65_tmc_comparison
from repro.harness.report import render_series_table, summarize_bands

from benchmarks.conftest import register_table


def test_sec65_tmc_comparison(benchmark):
    result = benchmark.pedantic(run_sec65_tmc_comparison, rounds=1, iterations=1)
    register_table(
        render_series_table(result, x_key="clients") + "\n" + summarize_bands(result)
    )
    assert result.ratios["tmc_flat"]
    assert 8 <= result.ratios["tmc_mean_ops"] <= 20        # paper: ~12
    low, high = result.ratios["speedup_band"]
    assert 50 <= low <= 300                                 # paper: 96x
    assert 1000 <= high <= 3000                             # paper: 2063x


def test_sec65_tmc_increment_dominates(benchmark):
    """Microbenchmark the functional TMC: virtual increment cost accounting."""
    from repro.baselines.tmc import TrustedMonotonicCounter

    counter = TrustedMonotonicCounter()

    def increment_batch():
        for _ in range(100):
            counter.increment()
        return counter.time_spent

    spent = benchmark.pedantic(increment_batch, rounds=1, iterations=1)
    assert spent == pytest.approx(100 * counter.increment_latency)
