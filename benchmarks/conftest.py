"""Benchmark-suite plumbing.

Each ``bench_*`` module runs one of the paper's experiments under
pytest-benchmark and registers the reproduced table here; the
``pytest_terminal_summary`` hook prints every table after the benchmark
stats, so ``pytest benchmarks/ --benchmark-only`` output contains the
full paper-vs-measured reproduction record.
"""

from __future__ import annotations

_REPRODUCED_TABLES: list[str] = []


def register_table(rendered: str) -> None:
    """Called by benchmark tests to queue a table for the final summary."""
    _REPRODUCED_TABLES.append(rendered)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPRODUCED_TABLES:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for rendered in _REPRODUCED_TABLES:
        terminalreporter.write_line(rendered)
        terminalreporter.write_line("")
