#!/usr/bin/env python
"""Run the protocol microbenchmarks and write ``BENCH_micro.json``.

Gives every PR a comparable perf trajectory: run from the repo root as

    PYTHONPATH=src python benchmarks/run_micro.py [--output BENCH_micro.json]

Preferred path: pytest-benchmark, whose full stats JSON is written
verbatim (plus a compact ``summary`` section).  If pytest-benchmark is
not installed, a minimal best-of-N timer fallback measures the same
scenarios directly so the file is always produced.

``--quick`` is the CI smoke mode: it always uses the timer fallback with
a handful of iterations per scenario, finishing in seconds — enough to
prove every scenario still runs and to eyeball order-of-magnitude
regressions, not to commit as the perf record.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = "benchmarks/bench_protocol_micro.py"

#: The family the CI regression gate watches: the microsecond-scale
#: invoke path plus the txn group-commit scoreboard (the other cluster
#: scenarios are orders of magnitude larger and too schedule-dependent
#: for a tight multiplicative gate; group commit is gated because the
#: whole point of the txn batch codec is that its cost tracks the
#: invoke path, and the family normalization absorbs the ms scale).
INVOKE_PATH_GATE = (
    "test_micro_aead_encrypt_100b",
    "test_micro_aead_round_trip_2500b",
    "test_micro_hash_chain_extend",
    "test_micro_serde_encode_state",
    "test_micro_full_invoke_round_trip",
    "test_micro_batched_invoke_sizes[1]",
    "test_micro_batched_invoke_sizes[8]",
    "test_micro_batched_invoke_sizes[32]",
    "test_micro_txn_group_commit[2]",
    "test_micro_txn_group_commit[4]",
)


def _summarize(benchmarks: list[dict]) -> dict:
    return {
        bench["name"]: {
            "median_us": round(bench["stats"]["median"] * 1e6, 2),
            "mean_us": round(bench["stats"]["mean"] * 1e6, 2),
            "min_us": round(bench["stats"]["min"] * 1e6, 2),
            "rounds": bench["stats"]["rounds"],
        }
        for bench in benchmarks
    }


def merge_best_of(documents: list[dict]) -> dict:
    """Per-bench best (lowest-median) stats across several full runs.

    On a shared/noisy box a single run's medians mix the machine's quiet
    and busy windows unevenly across benches, which skews the *relative*
    shape of the record — exactly what the gate's family normalization
    can't cancel.  Taking each bench's least-contaminated run gives every
    entry the same "quiet box" baseline.  The merged document keeps the
    first run's metadata and records how many runs fed the merge.
    """
    merged = dict(documents[0])
    by_name: dict[str, dict] = {}
    for document in documents:
        for bench in document.get("benchmarks", []):
            current = by_name.get(bench["name"])
            if (
                current is None
                or bench["stats"]["median"] < current["stats"]["median"]
            ):
                by_name[bench["name"]] = bench
    merged["benchmarks"] = [by_name[name] for name in sorted(by_name)]
    merged["summary"] = _summarize(merged["benchmarks"])
    merged["best_of_runs"] = len(documents)
    return merged


def run_with_pytest_benchmark() -> dict | None:
    """Run under pytest-benchmark; returns its JSON document or None."""
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            "-q",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    try:
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit("microbenchmark run failed")
        with open(json_path) as handle:
            document = json.load(handle)
    finally:
        pathlib.Path(json_path).unlink(missing_ok=True)
    document["summary"] = _summarize(document["benchmarks"])
    document["runner"] = "pytest-benchmark"
    # drop the raw per-round timing arrays: tens of thousands of floats
    # that would bloat the committed perf record; the stats keep the story
    for bench in document["benchmarks"]:
        bench["stats"].pop("data", None)
    return document


def run_with_timer_fallback(*, quick: bool = False) -> dict:
    """Best-of-N timeit over the same scenarios, no plugins required."""
    import timeit

    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))
    from tests.conftest import build_deployment
    from repro import serde
    from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
    from repro.crypto.hashing import GENESIS_HASH, chain_extend
    from repro.kvstore import get, put
    from repro.sharding import ShardRouter, ShardedCluster

    key = AeadKey(b"\x01" * 16)
    payload_2500 = b"x" * 2500
    _, _, (alice, *_) = build_deployment()
    alice.invoke(put("k", "v" * 100))
    state = {f"user{i:012d}": "v" * 100 for i in range(100)}
    operation = serde.encode(["PUT", "k" * 40, "v" * 100])

    # sharded-path round: the same uniform load routed over 1 and 2 groups
    # (provisioning excluded; clusters persist across iterations, and the
    # fixed key set keeps state size — so per-round cost — stationary)
    shard_clusters = {
        shards: ShardedCluster(shards=shards, clients=4, seed=shards)
        for shards in (1, 2)
    }
    shard_routers = {
        shards: ShardRouter(cluster) for shards, cluster in shard_clusters.items()
    }

    def shard_scaling():
        for shards, cluster in shard_clusters.items():
            router = shard_routers[shards]
            for client_id in cluster.client_ids:
                for i in range(4):
                    router.submit(client_id, put(f"k-{i}", "v" * 64))
            cluster.run()

    # pipelined execution: the same kind of closed-loop round with every
    # batch's state-seal flush deferred onto the worker pool (the
    # wall-only parity mode) — tracks the deferral machinery's cost
    pipelined_round = None
    try:
        from repro.server.execution import PipelinedBackend  # noqa: F401

        pipelined_cluster = ShardedCluster(
            shards=2, clients=4, seed=17, execution="pipelined"
        )
        pipelined_router = ShardRouter(pipelined_cluster)

        def pipelined_round():
            for client_id in pipelined_cluster.client_ids:
                for i in range(4):
                    pipelined_router.submit(client_id, put(f"k-{i}", "v" * 64))
            pipelined_cluster.run()
    except ImportError:
        pass  # stash-interleaved A/B against a revision without the backend

    # elastic resharding: a control-plane split + merge on a quiet
    # populated cluster (provision, quiescence barrier, per-arc handoffs,
    # two ring swaps); the cluster returns to 2 shards every iteration
    elastic_cluster = ShardedCluster(shards=2, clients=4, seed=31)
    elastic_router = ShardRouter(elastic_cluster)
    for client_id in elastic_cluster.client_ids:
        for i in range(25):
            elastic_router.submit(client_id, put(f"user{client_id}-{i:04d}", "v" * 64))
    elastic_cluster.run()

    def elastic_reshard():
        new_id = elastic_cluster.add_shard()
        elastic_cluster.remove_shard(new_id)

    # cross-shard transaction: one 2PC round (two prepares + two
    # decisions over two live groups) through the router coordinator
    txn_cluster = ShardedCluster(shards=2, clients=4, seed=41)
    txn_router = ShardRouter(txn_cluster)
    txn_keys, txn_index = [], 0
    while len(txn_keys) < 2:
        candidate = f"txnkey-{txn_index}"
        txn_index += 1
        if not txn_keys or txn_cluster.ring.owner(candidate) != txn_cluster.ring.owner(
            txn_keys[0]
        ):
            txn_keys.append(candidate)
    for txn_key in txn_keys:
        txn_router.submit(1, put(txn_key, "v" * 64))
    txn_cluster.run()

    def cross_shard_txn():
        txn_router.submit_txn(
            1, [put(txn_keys[0], "v" * 64), put(txn_keys[1], "v" * 64)]
        )
        txn_cluster.run()

    # group commit: a pipelined transaction burst per call (4 clients x 4
    # in flight) so the coordinator merges prepares/decisions into one
    # sealed *_MANY operation per participant per boundary
    from benchmarks.bench_protocol_micro import (
        _group_commit_cluster,
        _group_commit_round,
    )

    gc_setups = {shards: _group_commit_cluster(shards) for shards in (2, 4)}

    def group_commit(shards):
        cluster, router, pairs = gc_setups[shards]
        return lambda: _group_commit_round(cluster, router, pairs)

    # batched-invoke family: one ecall per batch at sizes 1/8/32 (the
    # Sec. 5.2/5.3 amortisation curve the batch crypto pipeline targets)
    from benchmarks.bench_protocol_micro import _batched_invoke_round

    batch_deployments = {
        size: build_deployment(clients=size) for size in (1, 8, 32)
    }

    def batched(size):
        host, deployment, clients = batch_deployments[size]
        return lambda: _batched_invoke_round(host, deployment, clients)

    scenarios = {
        "test_micro_aead_encrypt_100b": lambda: auth_encrypt(b"x" * 100, key),
        "test_micro_aead_round_trip_2500b": lambda: auth_decrypt(
            auth_encrypt(payload_2500, key), key
        ),
        "test_micro_hash_chain_extend": lambda: chain_extend(
            GENESIS_HASH, operation, 1, 1
        ),
        "test_micro_serde_encode_state": lambda: serde.encode(state),
        "test_micro_full_invoke_round_trip": lambda: alice.invoke(get("k")),
        "test_micro_batched_invoke_sizes[1]": batched(1),
        "test_micro_batched_invoke_sizes[8]": batched(8),
        "test_micro_batched_invoke_sizes[32]": batched(32),
        "test_micro_shard_scaling": shard_scaling,
        "test_micro_cross_shard_txn": cross_shard_txn,
        "test_micro_txn_group_commit[2]": group_commit(2),
        "test_micro_txn_group_commit[4]": group_commit(4),
        "test_micro_elastic_reshard": elastic_reshard,
    }
    if pipelined_round is not None:
        scenarios["test_micro_pipelined_invoke"] = pipelined_round
    else:
        print(
            "  test_micro_pipelined_invoke: skipped — revision predates "
            "the pipelined execution backend"
        )
    slow_scenarios = {
        "test_micro_elastic_reshard",  # tens of ms per call
        "test_micro_txn_group_commit[2]",
        "test_micro_txn_group_commit[4]",
    }
    number = 5 if quick else 200
    repeat = 2 if quick else 5
    summary = {}
    for name, fn in scenarios.items():
        fn()  # warm caches the way the pytest fixtures would
        if name in slow_scenarios:
            iterations = min(number, 5)
        elif quick and name in INVOKE_PATH_GATE:
            # the gated microsecond-scale family gets extra iterations
            # even in quick mode: 5-shot timings swing far beyond the
            # 1.3x gate, and 50 iterations still cost only milliseconds
            iterations = 50
        else:
            iterations = number
        best = min(timeit.repeat(fn, number=iterations, repeat=repeat)) / iterations
        summary[name] = {"best_us": round(best * 1e6, 2), "iterations": iterations}
    runner = "timer-fallback-quick" if quick else "timer-fallback"
    return {"runner": runner, "summary": summary}


def _bench_value(stats: dict) -> float | None:
    """One representative µs value from a summary entry, whichever runner
    produced it (pytest-benchmark medians, timer-fallback bests)."""
    for field in ("median_us", "best_us", "mean_us"):
        if field in stats:
            return stats[field]
    return None


def compare_against_record(document: dict, record_path: str) -> dict[str, float]:
    """Print per-bench ratios of this run vs a committed record.

    Ratio > 1 means this run is faster (record/new); the committed
    record's runner metadata is echoed so cross-runner comparisons
    (median vs best-of) are visible at a glance.  Returns the
    ``{bench: ratio}`` map (the ``--gate`` check consumes it).  This is
    the one-command regression check future PRs run (CI gates the full
    pytest-benchmark run — same warm-median statistic as the record;
    ``--quick`` comparisons are informational, the 2 µs-scale scenarios
    are too noisy under the fallback timer for a 1.3x bound):

        PYTHONPATH=src python benchmarks/run_micro.py \
            --compare BENCH_micro.json --gate 1.3
    """
    with open(record_path) as handle:
        record = json.load(handle)
    record_summary = record.get("summary", {})
    print(
        f"\ncomparison vs {record_path} "
        f"(record runner: {record.get('runner', '?')}, "
        f"this run: {document.get('runner', '?')}; ratio >1 = faster now)"
    )
    ratios: dict[str, float] = {}
    summary = document.get("summary", {})
    for name in sorted(set(summary) | set(record_summary)):
        new_stats = summary.get(name)
        old_stats = record_summary.get(name)
        if old_stats is None:
            # a bench added after the record was committed (e.g. a new
            # parallel scenario): nothing to compare against yet, so skip
            # with a notice instead of failing — the next record refresh
            # picks it up
            print(f"  {name}: skipped — not in the committed record "
                  "(newly added bench; refresh the record to track it)")
            continue
        if new_stats is None:
            print(f"  {name}: skipped — only in the record "
                  "(not measured by this run)")
            continue
        new_value = _bench_value(new_stats)
        old_value = _bench_value(old_stats)
        if not new_value or not old_value:
            continue
        ratio = old_value / new_value
        ratios[name] = ratio
        print(
            f"  {name}: {old_value:.2f}us -> {new_value:.2f}us "
            f"({ratio:.2f}x)"
        )
    return ratios


def apply_gate(ratios: dict[str, float], gate: float) -> bool:
    """The CI regression gate: fail when any invoke-path bench ran more
    than ``gate`` times slower than the committed record, *after*
    normalizing out the family-wide speed shift.

    The committed record is measured on a different machine (and
    possibly a different statistic — pytest-benchmark medians vs the
    fallback's best-of) than the CI runner, so absolute ratios carry a
    uniform machine factor.  Dividing each bench's ratio by the gated
    family's median ratio cancels that factor: a runner that is 1.5x
    slower across the board stays green, while a change that slows
    *one* path (a new branch in the invoke loop, a crypto fast-path
    falling back) still shows up as that bench regressing against its
    siblings.  Only the microsecond-scale invoke-path family plus the
    txn group-commit scoreboard is gated — the remaining multi-ms
    cluster scenarios swing too much with scheduling noise for a tight
    multiplicative bound.
    """
    gated = {
        name: ratio
        for name, ratio in ratios.items()
        if name in INVOKE_PATH_GATE
    }
    if not gated:
        print("gate skipped: no invoke-path benches in common with the record")
        return True
    ordered = sorted(gated.values())
    family = ordered[len(ordered) // 2]  # median machine-shift estimate
    regressed = {
        name: ratio / family
        for name, ratio in gated.items()
        if ratio / family < 1.0 / gate
    }
    if not regressed:
        print(
            f"gate ok: no invoke-path bench regressed beyond {gate:.2f}x "
            f"(family speed shift {family:.2f}x normalized out)"
        )
        return True
    print(f"GATE FAILED: invoke-path regressions beyond {gate:.2f}x:")
    for name, normalized in sorted(regressed.items()):
        print(
            f"  {name}: {1 / normalized:.2f}x slower than the record "
            f"after normalizing the family speed shift ({family:.2f}x)"
        )
    return False


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the results (default: BENCH_micro.json in "
        "the repo root; BENCH_micro_quick.json with --quick, so smoke "
        "numbers never clobber the committed perf record)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: timer fallback with a few iterations per "
        "scenario (seconds, not minutes); not for the committed record",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        metavar="N",
        default=1,
        help="run the full pytest-benchmark suite N times and keep each "
        "bench's lowest-median run (use for the committed record on a "
        "noisy box; ignored with --quick)",
    )
    parser.add_argument(
        "--compare",
        metavar="RECORD_JSON",
        default=None,
        help="after running, print per-bench ratios vs a committed "
        "record (e.g. BENCH_micro.json) so perf regressions show up in "
        "one command",
    )
    parser.add_argument(
        "--gate",
        type=float,
        metavar="RATIO",
        default=None,
        help="with --compare: exit non-zero when any invoke-path "
        "microbench ran more than RATIO x slower than the record "
        "(the CI regression gate; e.g. --gate 1.3)",
    )
    args = parser.parse_args()
    if args.gate is not None and args.compare is None:
        parser.error("--gate requires --compare")
    if args.output is None:
        name = "BENCH_micro_quick.json" if args.quick else "BENCH_micro.json"
        args.output = str(REPO_ROOT / name)
    if args.quick:
        document = run_with_timer_fallback(quick=True)
    else:
        documents = []
        for _ in range(max(1, args.best_of)):
            document = run_with_pytest_benchmark()
            if document is None:
                document = run_with_timer_fallback()
                documents = [document]
                break
            documents.append(document)
        document = (
            merge_best_of(documents) if len(documents) > 1 else documents[0]
        )
    document.setdefault("machine_info", {}).setdefault(
        "python", platform.python_version()
    )
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for name, stats in sorted(document["summary"].items()):
        print(f"  {name}: {stats}")
    if args.compare:
        ratios = compare_against_record(document, args.compare)
        if args.gate is not None and not apply_gate(ratios, args.gate):
            raise SystemExit(1)


if __name__ == "__main__":
    main()
