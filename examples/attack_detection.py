#!/usr/bin/env python3
"""Attack demo: rollback and forking against SGX-only vs. LCM.

Re-enacts the paper's motivation (Sec. 2.3) as a banking story:

- against a plain SGX-sealed KVS, a malicious operator restores
  yesterday's sealed state and *nobody notices* the balance reset;
- against LCM, the very next client interaction trips the hash-chain /
  sequence-number verification and the trusted context halts;
- a forking attack splits the clients into parallel realities; LCM lets
  the fork be detected the moment the server tries to rejoin them, and
  the isolated client's operations visibly cease to become stable.

Run:  python examples/attack_detection.py
"""

from repro.baselines.sgx_kvs import SgxKvsClient, bootstrap_sgx_kvs, make_sgx_kvs_factory
from repro.crypto.attestation import EpidGroup
from repro.core import Admin, make_lcm_program_factory
from repro.errors import SecurityViolation
from repro.kvstore import KvsFunctionality, get, put
from repro.server import MaliciousServer
from repro.tee import TeePlatform


def demo_sgx_baseline() -> None:
    print("=" * 72)
    print("1. Rollback against the plain SGX key-value store (no LCM)")
    print("=" * 72)
    platform = TeePlatform(EpidGroup())
    server = MaliciousServer(platform, make_sgx_kvs_factory(KvsFunctionality))
    server.start()
    key = bootstrap_sgx_kvs(server)
    client = SgxKvsClient(1, key, server)

    client.invoke(put("balance", "100"))
    print("  deposit:   balance = 100")
    client.invoke(put("balance", "10"))
    print("  purchase:  balance = 10")

    server.rollback(server.storage.version_count() - 2)
    print("  [attack] operator restores yesterday's sealed blob and restarts")

    balance = client.invoke(get("balance"))
    print(f"  client reads balance = {balance}  <- STALE, silently accepted!")
    print("  plain SGX cannot tell an old sealed blob from the newest one.\n")


def demo_lcm_rollback() -> None:
    print("=" * 72)
    print("2. The same rollback against LCM")
    print("=" * 72)
    group = EpidGroup()
    platform = TeePlatform(group)
    factory = make_lcm_program_factory(KvsFunctionality)
    server = MaliciousServer(platform, factory)
    admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(server, client_ids=[1, 2])
    alice, bob = deployment.make_all_clients(server)

    alice.invoke(put("balance", "100"))
    print("  deposit:   balance = 100")
    alice.invoke(put("balance", "10"))
    print("  purchase:  balance = 10")

    server.rollback(server.storage.version_count() - 2)
    print("  [attack] operator restores the older sealed blob and restarts")

    try:
        alice.invoke(get("balance"))
    except SecurityViolation as violation:
        print(f"  DETECTED: {type(violation).__name__}: {violation}")
    try:
        bob.invoke(get("balance"))
    except SecurityViolation:
        print("  the trusted context has halted; the service refuses to lie.\n")


def demo_lcm_forking() -> None:
    print("=" * 72)
    print("3. Forking attack against LCM")
    print("=" * 72)
    group = EpidGroup()
    platform = TeePlatform(group)
    factory = make_lcm_program_factory(KvsFunctionality)
    server = MaliciousServer(platform, factory)
    admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(server, client_ids=[1, 2, 3])
    alice, bob, carol = deployment.make_all_clients(server)

    alice.invoke(put("doc", "v1"))
    bob.invoke(get("doc"))
    carol.invoke(get("doc"))
    print("  all three clients share one history (doc = v1)")

    fork_index = server.fork()
    server.route_client(1, fork_index)
    print("  [attack] server spawns a second enclave instance; alice is")
    print("           silently routed to the copy")

    alice.invoke(put("doc", "alice-edit"))
    bob.invoke(put("doc", "bob-edit"))
    print("  alice sees doc = 'alice-edit'; bob sees doc = 'bob-edit'")

    own = alice.invoke(put("note", "am I alone?")).sequence
    stable = alice.wait_until_stable(own, max_polls=4)
    print(f"  alice polls stability for her op {own}: stable={stable}")
    print("  -> her operations cease to become majority-stable: a fork alarm")

    server.route_client(1, 0)
    print("  [attack] server tries to merge alice back into the main instance")
    try:
        alice.invoke(get("doc"))
    except SecurityViolation as violation:
        print(f"  DETECTED on join: {type(violation).__name__}")
    print()


def main() -> None:
    demo_sgx_baseline()
    demo_lcm_rollback()
    demo_lcm_forking()
    print("summary: SGX alone -> silent rollback; LCM -> detection at the")
    print("next interaction, and forks can never be silently rejoined.")


if __name__ == "__main__":
    main()
