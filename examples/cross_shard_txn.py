#!/usr/bin/env python3
"""Cross-shard atomic commit walkthrough: 2PC over LCM operations.

The sharded runtime used to promise only per-shard linearizability —
multi-key requests were fan-outs a reader could observe half-applied.
``ShardRouter.submit_txn`` closes that gap with a two-phase commit whose
participant verbs are ordinary sequenced, hash-chained LCM operations:

1. **prepare** — each owning shard executes the reads, buffers the
   writes and locks the touched keys as one sealed operation; while a
   key is locked, single-key traffic on it is deterministically
   rejected (the router retries), so nobody can read half a
   transaction;
2. **decide** — all participants voted PREPARED: the coordinator logs
   COMMIT and sends it to every participant (a conflict vote aborts
   instead, with no cleanup needed on the conflicted shard);
3. **verify** — the merged verdict replays every prepare and decision
   through the per-shard checkers *and* cross-checks atomicity across
   the shard histories: divergent applied decisions, decisions that
   contradict the coordinator's log, and a forked instance withholding
   a completed decision from its clients are all flagged.

Run:  python examples/cross_shard_txn.py
"""

from repro.kvstore import get, put
from repro.sharding import ShardRouter, ShardedCluster

CLIENTS = 4
KEYS = [f"user{i:04d}" for i in range(40)]


def main() -> None:
    cluster = ShardedCluster(shards=3, clients=CLIENTS, seed=11)
    router = ShardRouter(cluster, failover=True)

    for index, key in enumerate(KEYS):
        router.submit(1 + index % CLIENTS, put(key, f"v{index}"))
    cluster.run()

    by_shard: dict[int, list[str]] = {}
    for key in KEYS:
        by_shard.setdefault(cluster.ring.owner(key), []).append(key)
    shard_a, shard_b = sorted(by_shard)[:2]
    key_a, key_b = by_shard[shard_a][0], by_shard[shard_b][0]
    print(f"{len(KEYS)} keys across {cluster.shard_count} groups; "
          f"transferring between {key_a} (shard {shard_a}) "
          f"and {key_b} (shard {shard_b})")

    # ------------------------------------------- an atomic two-shard write
    outcome = {}
    router.submit_txn(
        1,
        [get(key_a), put(key_a, "debited"), put(key_b, "credited")],
        lambda result: outcome.setdefault("txn", result),
    )
    cluster.run()
    result = outcome["txn"]
    print(f"{result.txn_id}: committed={result.committed}, "
          f"read={result.results[0]!r}")
    assert result.committed

    # ----------------------------------------- conflicts abort, not smear
    race = {}
    router.submit_txn(
        2, [put(key_a, "A"), put(key_b, "A")],
        lambda r: race.setdefault("first", r),
    )
    router.submit_txn(
        3, [put(key_b, "B"), put(key_a, "B")],
        lambda r: race.setdefault("second", r),
    )
    cluster.run()
    winners = [r for r in race.values() if r.committed]
    losers = [r for r in race.values() if not r.committed]
    print(f"racing transactions: {len(winners)} committed, "
          f"{len(losers)} aborted on conflict"
          + (f" (e.g. lost to {losers[0].conflict_with})" if losers else ""))

    reads = {}
    router.submit(4, get(key_a), lambda r: reads.setdefault("a", r.result))
    router.submit(4, get(key_b), lambda r: reads.setdefault("b", r.result))
    cluster.run()
    if winners:
        # exactly one transaction won both locks: both keys carry its value
        assert {reads["a"], reads["b"]} in ({"A"}, {"B"})
        print(f"both keys read back {reads['a']!r}: all-or-nothing held")
    else:
        # each prepare grabbed one shard first: both aborted, neither
        # write leaked anywhere — the pre-race values survive intact
        assert (reads["a"], reads["b"]) == ("debited", "credited")
        print("mutual conflict: both aborted, neither write leaked — "
              "all-or-nothing held")

    # ----------------------------------------------------------- verdict
    verdict = router.verdict()
    assert verdict.ok
    print(f"verdict: {len(verdict.shards)} shards fork-linearizable, "
          f"{router.transactions_committed} transactions atomic across "
          f"their audit logs ({router.transactions_aborted} aborted "
          "cleanly)")


if __name__ == "__main__":
    main()
