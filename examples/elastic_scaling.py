#!/usr/bin/env python3
"""Elastic control-plane walkthrough: grow, shrink and heal a live ring.

PR 2's sharded runtime fixed the shard count at construction and left a
halted shard dead.  The control plane makes the ring elastic at runtime:

1. **split** — ``add_shard`` provisions a brand-new LCM group and hands
   it *only the keys on the ring arcs it gains*, through a mutually
   attested channel between the two live enclaves, as sequenced
   hash-chained operations (rollback/fork detection holds across the
   move);
2. **merge** — ``remove_shard`` hands a departing group's arcs to the
   survivors and retires its audit evidence into the cluster record;
3. **crash + recover** — a shard's hardware dies mid-workload; the
   router parks everything aimed at it, ``recover_shard`` re-bootstraps
   the group as a fresh generation (fresh keys + attestation, clients
   re-enrolled), and the parked operations replay;
4. the merged verdict checks *every* generation of every shard id —
   including the removed shard and the crashed shard's first life.

Run:  python examples/elastic_scaling.py
"""

from repro.kvstore import get, put
from repro.sharding import ShardRouter, ShardedCluster

CLIENTS = 6
KEYS = [f"user{i:04d}" for i in range(120)]


def main() -> None:
    cluster = ShardedCluster(shards=2, clients=CLIENTS, seed=7)
    router = ShardRouter(cluster, failover=True)

    for index, key in enumerate(KEYS):
        router.submit(1 + index % CLIENTS, put(key, f"v{index}"))
    cluster.run()
    print(f"{len(KEYS)} keys written across {cluster.shard_count} groups")

    # ----------------------------------------------------------- the split
    before = {key: cluster.ring.owner(key) for key in KEYS}
    new_id = cluster.add_shard()
    gained = [key for key in KEYS if cluster.ring.owner(key) != before[key]]
    report = cluster.control.reports[-1]
    print(
        f"split: shard {new_id} joined the ring, "
        f"{report.keys_moved} keys handed off from "
        f"{sorted(report.moved)} — only the arcs it gained "
        f"({len(gained)} of the {len(KEYS)} demo keys moved, all to it)"
    )
    assert all(cluster.ring.owner(key) == new_id for key in gained)

    # every value still readable, now through the grown ring
    survived = []
    for index, key in enumerate(KEYS):
        router.submit(
            1 + index % CLIENTS,
            get(key),
            lambda r, index=index: survived.append(r.result == f"v{index}"),
        )
    cluster.run()
    print(f"after the split every read hits: {all(survived)}")

    # ----------------------------------------------------------- the merge
    report = cluster.remove_shard(1)
    print(
        f"merge: shard 1 left the ring, {report.keys_moved} keys handed "
        f"to surviving shards {sorted(report.moved)}; its audit evidence "
        "is retired into the cluster record"
    )

    # --------------------------------------------------- crash and recover
    victim = 0
    target_key = next(key for key in KEYS if cluster.ring.owner(key) == victim)
    cluster.crash_shard(victim)
    parked_results: list = []
    router.submit(1, get(target_key), parked_results.append)
    print(
        f"crash: shard {victim} hardware died; "
        f"{router.parked_operations(victim)} operation parked at the router"
    )
    cluster.recover_shard(victim)
    cluster.run()
    print(
        f"recover: shard {victim} re-bootstrapped as generation "
        f"{cluster.shard_generation(victim)} (fresh keys, clients "
        f"re-enrolled); parked operation replayed -> "
        f"{parked_results[0].result!r} (fresh state)"
    )

    # ------------------------------------------------------- merged verdict
    verdict = router.check_fork_linearizable()
    checked = sum(len(v.generations) for v in verdict.shards.values())
    print(
        f"verdict: {checked} generations across shard ids "
        f"{sorted(verdict.shards)} verified fork-linearizable "
        "(split, merge and recovery included)"
    )


if __name__ == "__main__":
    main()
