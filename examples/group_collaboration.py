#!/usr/bin/env python3
"""Group collaboration: membership churn + stability-gated commits.

Models the scenario the paper's introduction motivates: a group of
mutually-trusting clients collaborating on shared state at an untrusted
cloud provider.  Demonstrates:

- dynamic membership (Sec. 4.6.3): a contractor joins, works, and is
  removed; key rotation locks them out while everyone else continues;
- stability-gated workflow: a client treats a critical write as committed
  only once it is *stable among a majority* (Definition 2), so a later
  fork can never silently erase it from the collective memory.

Run:  python examples/group_collaboration.py
"""

from repro.crypto.attestation import EpidGroup
from repro.core import Admin, make_lcm_program_factory
from repro.core.membership import add_client, remove_client
from repro.errors import SecurityViolation
from repro.kvstore import KvsFunctionality, get, put
from repro.server import ServerHost
from repro.tee import TeePlatform


def main() -> None:
    epid_group = EpidGroup()
    platform = TeePlatform(epid_group)
    factory = make_lcm_program_factory(KvsFunctionality)
    host = ServerHost(platform, factory)
    admin = Admin(epid_group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(host, client_ids=[1, 2, 3])
    alice, bob, carol = deployment.make_all_clients(host)
    print("group bootstrapped: alice(1), bob(2), carol(3)")

    # --- collaborative editing -------------------------------------------
    alice.invoke(put("design-doc", "draft-1"))
    bob.invoke(put("design-doc", "draft-2"))
    print("alice and bob take turns editing the design doc")

    # --- a contractor joins (Sec. 4.6.3) ----------------------------------
    dave = add_client(deployment, host, 4, host)
    dave.invoke(put("appendix", "contractor notes"))
    print("dave(4) joined and contributed; group is now", deployment.client_ids)

    # --- stability-gated commit -------------------------------------------
    release = carol.invoke(put("release-tag", "v1.0"))
    print(f"carol tags the release at sequence {release.sequence}; waiting for "
          "a majority to observe it before announcing...")
    # everyone keeps working / polling; acknowledgements flow back to T
    for _ in range(2):
        for client in (alice, bob, carol, dave):
            client.poll_stability()
    assert carol.is_stable(release.sequence), "majority has not observed the tag"
    print(f"release tag is stable among a majority "
          f"(stable sequence = {carol.stable_sequence}) -> safe to announce")

    # --- the contract ends --------------------------------------------------
    remove_client(deployment, host, 4)
    print("dave removed; communication key rotated for the remaining group")
    try:
        dave.invoke(get("design-doc"))
    except SecurityViolation as exc:
        print(f"dave locked out: {type(exc).__name__}")

    final = alice.invoke(get("release-tag"))
    print(f"alice confirms release-tag = {final.result!r}; group continues "
          f"at sequence {final.sequence}")


if __name__ == "__main__":
    main()
