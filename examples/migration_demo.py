#!/usr/bin/env python3
"""Migration demo: move a running LCM service to a different physical TEE.

Sec. 4.6.2: the origin trusted context takes over the admin role,
remote-attests the target context, and ships (kP, kC, state, V) over a
DH channel bound to the target's quote.  No trusted third party is
involved, clients keep their contexts, and — unlike TMC-based designs —
the rollback/forking guarantees survive the move.

Run:  python examples/migration_demo.py
"""

from repro.crypto.attestation import EpidGroup
from repro.core import Admin, make_lcm_program_factory, migrate
from repro.errors import AttestationFailure, SecurityViolation
from repro.kvstore import KvsFunctionality, get, put
from repro.server import ServerHost
from repro.tee import TeePlatform


def main() -> None:
    epid_group = EpidGroup()
    origin_platform = TeePlatform(epid_group)
    target_platform = TeePlatform(epid_group)   # a different physical machine
    factory = make_lcm_program_factory(KvsFunctionality)

    origin = ServerHost(origin_platform, factory)
    target = ServerHost(target_platform, factory)

    admin = Admin(epid_group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(origin, client_ids=[1, 2])
    alice, bob = deployment.make_all_clients(origin)

    alice.invoke(put("project", "phase-1"))
    bob.invoke(put("owner", "alice"))
    print(f"service running on platform {origin_platform.platform_id}; "
          f"{alice.last_sequence + bob.last_sequence} operations so far... wait,")
    print(f"global sequence is {bob.last_sequence} (alice at {alice.last_sequence})")

    # ------------------------------------------------------------- migrate
    print(f"\nmigrating to platform {target_platform.platform_id} ...")
    migrate(origin, target, epid_group.verifier())
    print("migration handshake complete: state resealed under the target's key")

    # clients are transparently repointed (in production: DNS / LB change)
    alice._transport = target
    bob._transport = target

    result = alice.invoke(get("project"))
    print(f"alice reads project = {result.result!r} on the new platform, "
          f"sequence continues at {result.sequence}")

    # ----------------------------------------------- origin is dead weight
    try:
        bob_on_origin_result = origin.send_invoke(2, b"\x00" * 64)
    except SecurityViolation as exc:
        print(f"origin refuses further work: {type(exc).__name__}")

    # ----------------------------------- guarantees survive the migration
    alice.invoke(put("project", "phase-2"))
    target.storage.rollback_to(0)
    target.reboot()
    print("\n[attack] new operator rolls the migrated service back...")
    try:
        alice.invoke(get("project"))
    except SecurityViolation as violation:
        print(f"DETECTED: {type(violation).__name__} — rollback protection "
              "survived the migration")

    # -------------------------------------- migration gates on attestation
    rogue_platform = TeePlatform(EpidGroup())   # not in our trust group
    rogue = ServerHost(rogue_platform, factory)
    fresh_origin = ServerHost(TeePlatform(epid_group), factory)
    fresh_deployment = admin.bootstrap(fresh_origin, client_ids=[7])
    print("\nattempting migration to a non-genuine TEE ...")
    try:
        migrate(fresh_origin, rogue, epid_group.verifier())
    except AttestationFailure as exc:
        print(f"refused: {exc}")


if __name__ == "__main__":
    main()
