#!/usr/bin/env python3
"""Offline audit: dump a live execution, verify it out-of-band.

The collective-memory idea extends naturally to auditing: operators dump
the operation history and the enclave's audit log as a JSON-lines trace;
an auditor (who never touches the live system) replays the trace, checks
the hash chain, cross-references every operation and runs the
fork-linearizability checker.  A tampered trace — even one flipped hex
digit — fails verification.

Run:  python examples/offline_audit.py
"""

import io

from repro.consistency import check_fork_linearizable, views_from_audit_logs
from repro.consistency.history import History
from repro.core.hashchain import ChainPoint
from repro.errors import SecurityViolation
from repro.harness.trace import dump_audit_log, dump_history, verify_trace_file
from repro.kvstore import KvsFunctionality, get, put

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from conftest import build_deployment  # reuse the test harness wiring


def main() -> None:
    # --- a live deployment doing work ------------------------------------
    host, deployment, (alice, bob, carol) = build_deployment(audit=True)
    history = History()

    def tracked(client, operation):
        token = history.invoke(client.client_id, operation)
        result = client.invoke(operation)
        history.respond(token, result.result, sequence=result.sequence)

    tracked(alice, put("ledger/1", "alice pays bob 10"))
    tracked(bob, put("ledger/2", "bob pays carol 4"))
    tracked(carol, get("ledger/1"))
    tracked(alice, get("ledger/2"))
    print(f"live system executed {len(history.records())} operations")

    # --- operator dumps the trace ----------------------------------------
    trace = io.StringIO()
    operations = dump_history(history, trace)
    audit_records = dump_audit_log(host.enclave.ecall("export_audit_log", None), trace)
    print(f"trace dumped: {operations} operations + {audit_records} audit records")

    # --- auditor verifies it (no access to the live system) ---------------
    trace.seek(0)
    summary = verify_trace_file(trace)
    print(f"auditor: chain valid, {summary['matched']} operations matched "
          "against the audit log")

    # --- auditor also checks fork-linearizability -------------------------
    points = {
        client.client_id: ChainPoint(client.last_sequence, client.last_chain)
        for client in (alice, bob, carol)
    }
    lookup = {
        (record.client_id, record.sequence): record
        for record in history.records()
    }
    log = host.enclave.ecall("export_audit_log", None)
    views = views_from_audit_logs([log], points, lookup)
    check_fork_linearizable(views, KvsFunctionality())
    print("auditor: execution is fork-linearizable")

    # --- a tampered trace fails -------------------------------------------
    text = io.StringIO()
    dump_history(history, text)
    dump_audit_log(log, text)
    tampered = text.getvalue().replace("alice pays bob 10", "alice pays bob 99", 1)
    try:
        verify_trace_file(io.StringIO(tampered))
        print("tampered trace accepted — this would be a bug")
    except (SecurityViolation, ValueError) as exc:
        print(f"auditor rejects tampered trace: {type(exc).__name__}")


if __name__ == "__main__":
    main()
