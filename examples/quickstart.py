#!/usr/bin/env python3
"""Quickstart: bootstrap an LCM-protected key-value store and use it.

Walks the full paper pipeline on one machine:

1. create a TEE platform and an untrusted server host;
2. admin bootstrap — remote attestation, key provisioning (Sec. 4.3);
3. clients invoke operations and receive (result, sequence, stable);
4. the server reboots; the trusted context recovers from sealed state;
5. stability advances as clients keep interacting (Sec. 4.5).

Run:  python examples/quickstart.py
"""

from repro.crypto.attestation import EpidGroup
from repro.core import Admin, make_lcm_program_factory
from repro.kvstore import KvsFunctionality, delete, get, put
from repro.server import ServerHost
from repro.tee import TeePlatform


def main() -> None:
    # --- infrastructure: one TEE-capable server -------------------------
    epid_group = EpidGroup()             # the attestation trust root
    platform = TeePlatform(epid_group)   # one SGX-capable machine
    program_factory = make_lcm_program_factory(KvsFunctionality)
    host = ServerHost(platform, program_factory)

    # --- phase 1-3: bootstrap (Sec. 4.3) --------------------------------
    admin = Admin(
        quote_verifier=epid_group.verifier(),
        expected_measurement=TeePlatform.expected_measurement(program_factory),
    )
    deployment = admin.bootstrap(host, client_ids=[1, 2, 3])
    print("bootstrapped LCM service for clients", deployment.client_ids)

    alice, bob, carol = deployment.make_all_clients(host)

    # --- ordinary operation ---------------------------------------------
    result = alice.invoke(put("greeting", "hello world"))
    print(f"alice PUT  -> sequence={result.sequence} stable={result.stable_sequence}")

    result = bob.invoke(get("greeting"))
    print(f"bob   GET  -> {result.result!r} (sequence={result.sequence})")

    result = carol.invoke(put("greeting", "hello DSN"))
    print(f"carol PUT  -> previous value {result.result!r}")

    # --- crash and recovery (Sec. 4.4) ----------------------------------
    host.reboot()
    print("server rebooted; trusted context recovered from sealed state")
    result = alice.invoke(get("greeting"))
    print(f"alice GET  -> {result.result!r} (sequence continues at {result.sequence})")

    # --- stability (Sec. 4.5) --------------------------------------------
    target = alice.invoke(put("durable", "fact")).sequence
    print(f"alice wrote sequence {target}; waiting for majority stability...")
    # Two polling rounds let every client acknowledge what it has seen;
    # one final poll carries the advanced stable sequence back to alice.
    for _ in range(2):
        for client in (alice, bob, carol):
            client.poll_stability()
    alice.poll_stability()
    print(
        f"operation {target} stable among a majority: {alice.is_stable(target)} "
        f"(stable sequence = {alice.stable_sequence})"
    )

    # --- cleanup ----------------------------------------------------------
    alice.invoke(delete("durable"))
    host.shutdown()
    print("done")


if __name__ == "__main__":
    main()
