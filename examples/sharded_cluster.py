#!/usr/bin/env python3
"""Sharded group runtime walkthrough: many LCM groups, one keyspace.

The paper's Figs. 5/6 saturate at one group — a single trusted context
serialises every request.  This demo partitions the keyspace with a
consistent-hash ring across four independent LCM groups, drives a YCSB
mix through the shard router, rebalances one shard onto fresh hardware
mid-workload with the Sec. 4.6.2 migration machinery, and shows that

1. aggregate throughput scales with the shard count,
2. the rollback/forking guarantees hold *through* the resharding event,
3. a forked shard is still detected even when all other shards are honest.

Run:  python examples/sharded_cluster.py
"""

from repro.errors import SecurityViolation
from repro.kvstore import get, put
from repro.sharding import ShardRouter, ShardedCluster
from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

SHARDS = 4
CLIENTS = 8
REQUESTS_PER_CLIENT = 15


def drive(cluster: ShardedCluster, router: ShardRouter, *, seed: int) -> None:
    """Closed-loop uniform YCSB-A clients over the shard router."""
    workload = WORKLOAD_A.with_params(distribution="uniform", value_size=64)
    generator = WorkloadGenerator(workload, seed=seed)
    streams = {
        client_id: [generator.next_operations() for _ in range(REQUESTS_PER_CLIENT)]
        for client_id in cluster.client_ids
    }

    def start(client_id: int) -> None:
        def pump(_result=None) -> None:
            stream = streams[client_id]
            if not stream:
                return
            request = stream.pop(0)
            if len(request) == 1:
                router.submit(client_id, request[0], pump)
            else:
                router.submit_many(client_id, request, pump)

        pump()

    for client_id in cluster.client_ids:
        start(client_id)


def main() -> None:
    # ------------------------------------------- scale-out + mid-run rebalance
    cluster = ShardedCluster(shards=SHARDS, clients=CLIENTS, seed=11)
    router = ShardRouter(cluster)
    share = cluster.ring.arc_fractions()
    print(f"{SHARDS} LCM groups provisioned; keyspace share per shard: "
          + ", ".join(f"s{s}={f:.0%}" for s, f in sorted(share.items())))

    drive(cluster, router, seed=11)
    cluster.schedule_rebalance(2e-3, shard_id=1)  # migrate shard 1 mid-run
    cluster.run()

    rate = cluster.stats.operations_completed / cluster.sim.now
    print(f"{cluster.stats.operations_completed} operations in "
          f"{cluster.sim.now * 1e3:.1f} simulated ms ({rate:,.0f} ops/s); "
          f"{cluster.stats.rebalances} rebalance completed mid-workload")
    print("emergent mean batch size per shard: "
          + ", ".join(f"s{s}={cluster.stats.mean_batch_size(s):.1f}"
                      for s in range(SHARDS)))

    verdict = router.check_fork_linearizable()
    print(f"all {len(verdict.shards)} shards verified fork-linearizable "
          "(evidence spans the migration)")

    # a cross-shard scan fans out concurrently and merges in order
    keys = [f"user{rank:012d}" for rank in range(6)]
    scan_results: list = []
    fanout = router.scan(1, keys, scan_results.extend)
    cluster.run()
    print(f"scan over {len(scan_results)} keys answered by "
          f"{len(fanout)} shards")

    # --------------------------------------------- one shard turns malicious
    print("\n[attack] shard 1 forks its context and partitions its clients...")
    attacked = ShardedCluster(shards=SHARDS, clients=3, seed=12,
                              malicious_shards=(1,))
    attacked_router = ShardRouter(attacked)
    victim_keys = [f"key-{i}" for i in range(400)
                   if attacked.ring.owner(f"key-{i}") == 1][:3]
    for client_id in attacked.client_ids:
        attacked_router.submit(client_id, put(victim_keys[0], f"base-{client_id}"))
    attacked.run()

    fork = attacked.fork_shard(1)
    attacked.route_client(1, 3, fork)          # client 3 lands on the fork
    attacked_router.submit(1, put(victim_keys[1], "main-side"))
    attacked_router.submit(3, put(victim_keys[2], "fork-side"))
    attacked.run()
    attacked.route_client(1, 3, 0)             # server tries to join the forks
    attacked_router.submit(3, get(victim_keys[0]))
    attacked.run()

    try:
        attacked_router.check_fork_linearizable()
        print("fork went undetected — this would be a bug")
    except SecurityViolation as violation:
        print(f"DETECTED {type(violation).__name__}: {violation}")
    honest = [s for s, v in attacked_router.verdict().shards.items() if v.ok]
    print(f"honest shards still verify: {honest}")


if __name__ == "__main__":
    main()
