#!/usr/bin/env python3
"""Mini-evaluation: regenerate the paper's throughput figures from the CLI.

Runs the closed-loop performance model behind Figs. 4-6 with reduced
simulation windows and prints the paper-style tables plus the
paper-vs-measured band summary.  For the full-length runs use
``pytest benchmarks/ --benchmark-only``.

Run:  python examples/ycsb_evaluation.py [--full]
"""

import argparse
import time

from repro.harness.experiments import (
    run_fig4_object_size,
    run_fig5_clients_async,
    run_fig6_clients_sync,
    run_sec62_enclave_memory,
    run_sec63_message_overhead,
    run_sec65_tmc_comparison,
)
from repro.harness.report import render_series_table, summarize_bands


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="use full-length measurement windows (slower, steadier numbers)",
    )
    args = parser.parse_args()
    duration = None if args.full else 0.4
    sync_duration = None if args.full else 2.0

    started = time.time()
    experiments = [
        (run_fig4_object_size, "object_size", {"duration": duration}),
        (run_fig5_clients_async, "clients", {"duration": duration}),
        (run_fig6_clients_sync, "clients", {"duration": sync_duration}),
        (run_sec62_enclave_memory, "objects", {}),
        (run_sec63_message_overhead, "object_size", {}),
        (run_sec65_tmc_comparison, "clients", {"duration": duration}),
    ]
    for runner, x_key, kwargs in experiments:
        result = runner(**kwargs)
        print(render_series_table(result, x_key=x_key))
        print(summarize_bands(result))
        print()
    print(f"total wall time: {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
