"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of LCM: Rollback and Forking Detection for Trusted "
        "Execution Environments using Lightweight Collective Memory (DSN 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
