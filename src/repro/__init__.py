"""Reproduction of "Rollback and Forking Detection for Trusted Execution
Environments using Lightweight Collective Memory" (Brandenburger, Cachin,
Lorenz, Kapitza — DSN 2017).

Quick start::

    from repro.crypto.attestation import EpidGroup
    from repro.core import Admin, make_lcm_program_factory
    from repro.kvstore import KvsFunctionality, get, put
    from repro.server import ServerHost
    from repro.tee import TeePlatform

    group = EpidGroup()
    platform = TeePlatform(group)
    factory = make_lcm_program_factory(KvsFunctionality)
    host = ServerHost(platform, factory)
    admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(host, client_ids=[1, 2, 3])
    alice = deployment.make_client(1, host)
    alice.invoke(put("greeting", "hello"))
    print(alice.invoke(get("greeting")).result)  # -> "hello"

Package layout: see DESIGN.md for the full inventory and the mapping from
the paper's sections/figures to modules and benchmarks.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "crypto",
    "tee",
    "server",
    "net",
    "kvstore",
    "baselines",
    "consistency",
    "workload",
    "perf",
    "harness",
]
