"""Compiled C backend for the canonical serde codec.

The pure-Python encoder in :mod:`repro.serde` walks every container
element at interpreter speed; on the protocol hot path (the trusted
context re-seals its full service state on every operation, and the
streaming verifier canonicalises keys per record) that walk dominates
the sealed-operation cost.  This module compiles a small CPython
extension at first import — same build-and-cache scheme as the crypto
fastpath — that produces byte-identical encodings by walking the object
graph in C.

Contract with :mod:`repro.serde`:

- ``encode(obj)`` returns the canonical bytes.  Values the C walker
  declines (int outside 64-bit, subclasses, unsupported types,
  excessive nesting) go through the registered pure-Python fallback —
  ``set_fallback(encode_cb, decode_cb)`` — which produces the bytes or
  the precise error.  Before a fallback is registered, a declined value
  returns ``None`` (probe mode, used by the unit tests).
- ``decode(blob)`` returns the decoded value, routing malformed input,
  big ints and non-bytes buffers through the decode fallback.  In probe
  mode it instead returns a 1-tuple ``(value,)`` or ``None``, so a
  successfully decoded ``None`` stays distinguishable from fallback.

With the fallbacks registered, :mod:`repro.serde` rebinds its public
``encode``/``decode`` *directly* to the compiled functions — the hot
path pays no Python wrapper frame at all.

The compiled module never raises protocol errors itself: every edge
case defers to the pure implementation so error messages, exception
types and golden bytes stay exactly as before.  Set ``REPRO_SERDE=python``
to skip the native backend, ``REPRO_SERDE=c`` to fail loudly when it
cannot be built.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import shutil
import subprocess
import sysconfig

_BUILD_DIR = pathlib.Path(__file__).resolve().with_name("_serde_build")
_ENV_VAR = "REPRO_SERDE"

_C_SOURCE = r"""
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ buffer */

typedef struct {
    unsigned char *p;
    size_t len;
    size_t cap;
} buf_t;

static int buf_reserve(buf_t *b, size_t extra) {
    if (b->len + extra <= b->cap)
        return 0;
    size_t cap = b->cap ? b->cap : 256;
    while (cap < b->len + extra)
        cap *= 2;
    unsigned char *p = (unsigned char *)realloc(b->p, cap);
    if (!p)
        return -1;
    b->p = p;
    b->cap = cap;
    return 0;
}

static int buf_put(buf_t *b, const void *src, size_t n) {
    if (buf_reserve(b, n))
        return -1;
    memcpy(b->p + b->len, src, n);
    b->len += n;
    return 0;
}

static void put_len8(unsigned char *dst, unsigned long long n) {
    int i;
    for (i = 0; i < 8; i++)
        dst[i] = (unsigned char)(n >> (8 * (7 - i)));
}

/* ------------------------------------------------------------------ encode */

#define ENC_OK 0
#define ENC_FALLBACK 1 /* pure Python must handle this value */
#define ENC_ERR 2      /* hard failure (out of memory) */

#define MAX_DEPTH 64

static int enc_value(PyObject *obj, buf_t *b, int depth);

static int enc_long(PyObject *obj, buf_t *b) {
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(obj, &overflow);
    unsigned char tmp[17];
    unsigned long long uv;
    int i;
    if (overflow || (v == -1 && PyErr_Occurred())) {
        PyErr_Clear();
        return ENC_FALLBACK; /* beyond 64 bits: rare, pure path encodes */
    }
    tmp[0] = 'I';
    memset(tmp + 1, v < 0 ? 0xff : 0x00, 8);
    uv = (unsigned long long)v;
    for (i = 0; i < 8; i++)
        tmp[9 + i] = (unsigned char)(uv >> (8 * (7 - i)));
    return buf_put(b, tmp, 17) ? ENC_ERR : ENC_OK;
}

typedef struct {
    const unsigned char *key; /* resolved after the key buffer stops moving */
    size_t key_off;
    size_t key_len;
    PyObject *value;          /* borrowed */
} dict_item_t;

static int dict_item_cmp(const void *a, const void *b) {
    const dict_item_t *x = (const dict_item_t *)a;
    const dict_item_t *y = (const dict_item_t *)b;
    size_t n = x->key_len < y->key_len ? x->key_len : y->key_len;
    int c = memcmp(x->key, y->key, n);
    if (c)
        return c;
    if (x->key_len == y->key_len)
        return 0;
    return x->key_len < y->key_len ? -1 : 1;
}

static int enc_dict(PyObject *obj, buf_t *b, int depth) {
    Py_ssize_t count = PyDict_GET_SIZE(obj);
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    buf_t kb = {NULL, 0, 0};
    dict_item_t *items = NULL;
    size_t i = 0, n = (size_t)count;
    int rc = ENC_OK;
    unsigned char header[9];

    header[0] = 'D';
    put_len8(header + 1, (unsigned long long)count);
    if (buf_put(b, header, 9))
        return ENC_ERR;
    if (count == 0)
        return ENC_OK;
    items = (dict_item_t *)malloc(n * sizeof(dict_item_t));
    if (!items)
        return ENC_ERR;
    while (PyDict_Next(obj, &pos, &key, &value)) {
        size_t start = kb.len;
        rc = enc_value(key, &kb, depth + 1);
        if (rc)
            goto done;
        items[i].key_off = start;
        items[i].key_len = kb.len - start;
        items[i].value = value;
        i++;
    }
    for (i = 0; i < n; i++)
        items[i].key = kb.p + items[i].key_off;
    qsort(items, n, sizeof(dict_item_t), dict_item_cmp);
    for (i = 0; i < n; i++) {
        if (buf_put(b, items[i].key, items[i].key_len)) {
            rc = ENC_ERR;
            goto done;
        }
        rc = enc_value(items[i].value, b, depth + 1);
        if (rc)
            goto done;
    }
done:
    free(items);
    free(kb.p);
    return rc;
}

static int enc_value(PyObject *obj, buf_t *b, int depth) {
    PyTypeObject *tp;
    unsigned char header[9];

    if (depth > MAX_DEPTH)
        return ENC_FALLBACK;
    if (obj == Py_None) {
        header[0] = 'N';
        return buf_put(b, header, 1) ? ENC_ERR : ENC_OK;
    }
    if (obj == Py_True) {
        header[0] = 'T';
        return buf_put(b, header, 1) ? ENC_ERR : ENC_OK;
    }
    if (obj == Py_False) {
        header[0] = 'F';
        return buf_put(b, header, 1) ? ENC_ERR : ENC_OK;
    }
    tp = Py_TYPE(obj);
    if (tp == &PyLong_Type)
        return enc_long(obj, b);
    if (tp == &PyBytes_Type) {
        Py_ssize_t size = PyBytes_GET_SIZE(obj);
        header[0] = 'B';
        put_len8(header + 1, (unsigned long long)size);
        if (buf_put(b, header, 9) ||
            buf_put(b, PyBytes_AS_STRING(obj), (size_t)size))
            return ENC_ERR;
        return ENC_OK;
    }
    if (tp == &PyByteArray_Type) {
        Py_ssize_t size = PyByteArray_GET_SIZE(obj);
        header[0] = 'B';
        put_len8(header + 1, (unsigned long long)size);
        if (buf_put(b, header, 9) ||
            buf_put(b, PyByteArray_AS_STRING(obj), (size_t)size))
            return ENC_ERR;
        return ENC_OK;
    }
    if (tp == &PyUnicode_Type) {
        Py_ssize_t size;
        const char *utf8 = PyUnicode_AsUTF8AndSize(obj, &size);
        if (!utf8) {
            PyErr_Clear(); /* lone surrogates: pure path raises */
            return ENC_FALLBACK;
        }
        header[0] = 'S';
        put_len8(header + 1, (unsigned long long)size);
        if (buf_put(b, header, 9) || buf_put(b, utf8, (size_t)size))
            return ENC_ERR;
        return ENC_OK;
    }
    if (tp == &PyList_Type || tp == &PyTuple_Type) {
        Py_ssize_t size = tp == &PyList_Type ? PyList_GET_SIZE(obj)
                                             : PyTuple_GET_SIZE(obj);
        Py_ssize_t i;
        header[0] = 'L';
        put_len8(header + 1, (unsigned long long)size);
        if (buf_put(b, header, 9))
            return ENC_ERR;
        for (i = 0; i < size; i++) {
            PyObject *item = tp == &PyList_Type ? PyList_GET_ITEM(obj, i)
                                                : PyTuple_GET_ITEM(obj, i);
            int rc = enc_value(item, b, depth + 1);
            if (rc)
                return rc;
        }
        return ENC_OK;
    }
    if (tp == &PyDict_Type)
        return enc_dict(obj, b, depth);
    return ENC_FALLBACK; /* subclasses, floats, exotic types */
}

/* Pure-Python fallbacks; NULL until set_fallback() registers them. */
static PyObject *enc_fallback_cb = NULL;
static PyObject *dec_fallback_cb = NULL;

static PyObject *serde_encode(PyObject *self, PyObject *obj) {
    buf_t b = {NULL, 0, 0};
    int rc = enc_value(obj, &b, 0);
    PyObject *out;
    (void)self;
    if (rc == ENC_FALLBACK) {
        free(b.p);
        if (enc_fallback_cb)
            return PyObject_CallOneArg(enc_fallback_cb, obj);
        Py_RETURN_NONE;
    }
    if (rc == ENC_ERR) {
        free(b.p);
        return PyErr_NoMemory();
    }
    out = PyBytes_FromStringAndSize((const char *)b.p, (Py_ssize_t)b.len);
    free(b.p);
    return out;
}

/* ------------------------------------------------------------------ decode */

/* Returns a new reference, or NULL with no exception set to request the
   pure-Python fallback (which re-raises the precise protocol error). */
static PyObject *dec_value(const unsigned char *p, Py_ssize_t size,
                           Py_ssize_t *off, int depth) {
    unsigned char tag;
    Py_ssize_t at = *off;

    if (depth > MAX_DEPTH || at >= size)
        return NULL;
    tag = p[at++];
    if (tag == 'I') {
        int fits, i;
        unsigned long long uv = 0;
        if (at + 16 > size)
            return NULL;
        /* only 64-bit-representable ints decode natively; wider ones
           (valid up to 128 bits) take the pure path */
        if (p[at] == 0x00) {
            fits = 1;
            for (i = 1; i < 8; i++)
                if (p[at + i] != 0x00)
                    fits = 0;
            if (p[at + 8] & 0x80)
                fits = 0;
        } else if (p[at] == 0xff) {
            fits = 1;
            for (i = 1; i < 8; i++)
                if (p[at + i] != 0xff)
                    fits = 0;
            if (!(p[at + 8] & 0x80))
                fits = 0;
        } else {
            fits = 0;
        }
        if (!fits)
            return NULL;
        for (i = 0; i < 8; i++)
            uv = (uv << 8) | p[at + 8 + i];
        *off = at + 16;
        return PyLong_FromLongLong((long long)uv);
    }
    if (tag == 'B' || tag == 'S') {
        unsigned long long n = 0;
        int i;
        Py_ssize_t start;
        if (at + 8 > size)
            return NULL;
        for (i = 0; i < 8; i++)
            n = (n << 8) | p[at + i];
        at += 8;
        if (n > (unsigned long long)(size - at))
            return NULL;
        start = at;
        *off = at + (Py_ssize_t)n;
        if (tag == 'B')
            return PyBytes_FromStringAndSize((const char *)p + start,
                                             (Py_ssize_t)n);
        {
            PyObject *s = PyUnicode_DecodeUTF8((const char *)p + start,
                                               (Py_ssize_t)n, NULL);
            if (!s)
                PyErr_Clear(); /* malformed utf-8: pure path raises */
            return s;
        }
    }
    if (tag == 'L') {
        unsigned long long n = 0;
        unsigned long long i;
        int j;
        PyObject *list;
        if (at + 8 > size)
            return NULL;
        for (j = 0; j < 8; j++)
            n = (n << 8) | p[at + j];
        at += 8;
        if (n > (unsigned long long)(size - at))
            return NULL; /* each item takes >= 1 byte */
        list = PyList_New((Py_ssize_t)n);
        if (!list)
            return NULL;
        *off = at;
        for (i = 0; i < n; i++) {
            PyObject *item = dec_value(p, size, off, depth + 1);
            if (!item) {
                Py_DECREF(list);
                return NULL;
            }
            PyList_SET_ITEM(list, (Py_ssize_t)i, item);
        }
        return list;
    }
    if (tag == 'D') {
        unsigned long long n = 0;
        unsigned long long i;
        int j;
        PyObject *dict;
        if (at + 8 > size)
            return NULL;
        for (j = 0; j < 8; j++)
            n = (n << 8) | p[at + j];
        at += 8;
        if (n > (unsigned long long)(size - at) / 2)
            return NULL; /* each pair takes >= 2 bytes */
        dict = PyDict_New();
        if (!dict)
            return NULL;
        *off = at;
        for (i = 0; i < n; i++) {
            PyObject *key = dec_value(p, size, off, depth + 1);
            PyObject *value;
            if (!key) {
                Py_DECREF(dict);
                return NULL;
            }
            value = dec_value(p, size, off, depth + 1);
            if (!value) {
                Py_DECREF(key);
                Py_DECREF(dict);
                return NULL;
            }
            if (PyDict_SetItem(dict, key, value)) {
                PyErr_Clear(); /* unhashable key: pure path raises */
                Py_DECREF(key);
                Py_DECREF(value);
                Py_DECREF(dict);
                return NULL;
            }
            Py_DECREF(key);
            Py_DECREF(value);
        }
        return dict;
    }
    if (tag == 'N') {
        *off = at;
        Py_RETURN_NONE;
    }
    if (tag == 'T') {
        *off = at;
        Py_RETURN_TRUE;
    }
    if (tag == 'F') {
        *off = at;
        Py_RETURN_FALSE;
    }
    return NULL; /* unknown tag */
}

static PyObject *serde_decode(PyObject *self, PyObject *arg) {
    Py_buffer view;
    Py_ssize_t off = 0;
    PyObject *value, *out;
    (void)self;
    if (PyObject_GetBuffer(arg, &view, PyBUF_SIMPLE)) {
        PyErr_Clear();
        if (dec_fallback_cb) /* not bytes-like: pure path raises */
            return PyObject_CallOneArg(dec_fallback_cb, arg);
        Py_RETURN_NONE;
    }
    value = dec_value((const unsigned char *)view.buf, view.len, &off, 0);
    if (!value || off != view.len) {
        PyBuffer_Release(&view);
        Py_XDECREF(value);
        if (PyErr_Occurred())
            return NULL; /* genuine failure (memory) */
        if (dec_fallback_cb) /* malformed/trailing/big int: pure raises */
            return PyObject_CallOneArg(dec_fallback_cb, arg);
        Py_RETURN_NONE;
    }
    PyBuffer_Release(&view);
    if (dec_fallback_cb)
        return value; /* direct mode: the value itself */
    out = PyTuple_Pack(1, value); /* probe mode keeps None unambiguous */
    Py_DECREF(value);
    return out;
}

static PyObject *serde_set_fallback(PyObject *self, PyObject *args) {
    PyObject *enc, *dec;
    (void)self;
    if (!PyArg_ParseTuple(args, "OO", &enc, &dec))
        return NULL;
    Py_INCREF(enc);
    Py_INCREF(dec);
    Py_XSETREF(enc_fallback_cb, enc);
    Py_XSETREF(dec_fallback_cb, dec);
    Py_RETURN_NONE;
}

static PyMethodDef serde_methods[] = {
    {"encode", serde_encode, METH_O,
     "Canonical bytes of the value (declined values go to the fallback; "
     "None when no fallback is registered)."},
    {"decode", serde_decode, METH_O,
     "Value decoded from canonical bytes, routed via the fallback when "
     "declined ((value,)/None probe form without one)."},
    {"set_fallback", serde_set_fallback, METH_VARARGS,
     "Register (encode_cb, decode_cb) pure-Python fallbacks."},
    {NULL, NULL, 0, NULL}};

static struct PyModuleDef serde_module = {
    PyModuleDef_HEAD_INIT, "_lcm_serde", NULL, -1, serde_methods,
    NULL, NULL, NULL, NULL};

PyMODINIT_FUNC PyInit__lcm_serde(void) {
    return PyModule_Create(&serde_module);
}
"""


def _load_compiled(so_path: pathlib.Path):
    import importlib.util

    spec = importlib.util.spec_from_file_location("_lcm_serde", so_path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _build() -> pathlib.Path | None:
    """Compile the extension (or find the cached build); returns the .so."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:12]
    so_path = _BUILD_DIR / f"_lcm_serde_{digest}.so"
    if so_path.exists():
        return so_path
    include = sysconfig.get_paths()["include"]
    compiler = os.environ.get("CC", "cc")
    _BUILD_DIR.mkdir(exist_ok=True)
    scratch = _BUILD_DIR / f"tmp-{os.getpid()}"
    scratch.mkdir(exist_ok=True)
    source = scratch / "serde.c"
    source.write_text(_C_SOURCE)
    built = scratch / "out.so"
    try:
        subprocess.run(
            [
                compiler,
                "-O3",
                "-shared",
                "-fPIC",
                f"-I{include}",
                str(source),
                "-o",
                str(built),
            ],
            check=True,
            capture_output=True,
        )
        # atomic publish so concurrent test processes never see half a file
        os.replace(built, so_path)
    except (OSError, subprocess.CalledProcessError):
        return None
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    for stale in _BUILD_DIR.glob("_lcm_serde_*.so"):
        if stale.name != so_path.name:
            stale.unlink(missing_ok=True)
    return so_path


def load():
    """The compiled codec module, or None (pure-Python serde still works).

    ``REPRO_SERDE=python`` disables the native backend; ``REPRO_SERDE=c``
    turns a failed build into a loud error instead of silent fallback.
    """
    requested = os.environ.get(_ENV_VAR, "").strip().lower()
    if requested == "python":
        return None
    try:
        so_path = _build()
        module = _load_compiled(so_path) if so_path else None
    except Exception:
        module = None
    if module is None and requested == "c":
        raise RuntimeError(
            "REPRO_SERDE=c but the native serde backend could not be built "
            "(compiler or Python headers missing)"
        )
    return module
