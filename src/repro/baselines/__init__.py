"""The evaluation's comparison systems (Sec. 6).

- :mod:`repro.baselines.native` — the KVS without any TEE ("Native"), with
  Stunnel-style transport encryption handled off the critical path;
- :mod:`repro.baselines.sgx_kvs` — the KVS inside an enclave with sealing
  but *no* rollback/forking protection ("SGX") — the paper's baseline and
  the system whose silent rollback vulnerability motivates LCM;
- :mod:`repro.baselines.tmc` — trusted monotonic counter: immediate
  rollback detection at a ~60 ms/increment cost ("SGX + TMC", Sec. 6.5);
- :mod:`repro.baselines.redis_like` — a Redis-with-TLS stand-in: in-memory
  KVS with an append-only persistence log ("Redis TLS").
"""

from repro.baselines.native import NativeKvsServer
from repro.baselines.redis_like import RedisLikeServer
from repro.baselines.sgx_kvs import SgxKvsClient, SgxKvsProgram, make_sgx_kvs_factory
from repro.baselines.tmc import TmcKvsProgram, TrustedMonotonicCounter, make_tmc_kvs_factory

__all__ = [
    "NativeKvsServer",
    "RedisLikeServer",
    "SgxKvsProgram",
    "SgxKvsClient",
    "make_sgx_kvs_factory",
    "TrustedMonotonicCounter",
    "TmcKvsProgram",
    "make_tmc_kvs_factory",
]
