"""The "Native" baseline: the KVS with no trusted execution at all.

Operations execute directly on the host; persistence is a plain state dump
to stable storage with no cryptographic protection whatsoever.  Transport
security in the paper comes from Stunnel, which runs as separate processes
— in the functional model we simply accept plaintext operations (its cost
appears only in :mod:`repro.perf.costs`).

This baseline is the throughput yardstick of Fig. 5/6 and the zero-defence
reference in the attack tests: the server can rewrite anything and nobody
notices.
"""

from __future__ import annotations

from typing import Any

from repro import serde
from repro.kvstore.functionality import Functionality
from repro.kvstore.kvs import KvsFunctionality
from repro.server.storage import StableStorage


class NativeKvsServer:
    """Unprotected single-threaded KVS with snapshot persistence."""

    def __init__(
        self,
        functionality: Functionality | None = None,
        storage: StableStorage | None = None,
    ) -> None:
        self._functionality = functionality or KvsFunctionality()
        self.storage = storage or StableStorage("native")
        self._state: Any = self._functionality.initial_state()
        self.requests_handled = 0

    def execute(self, operation: Any) -> Any:
        """Apply one operation and persist the new state."""
        result, self._state = self._functionality.apply(self._state, operation)
        self.storage.store(serde.encode(self._state))
        self.requests_handled += 1
        return result

    def restart(self) -> None:
        """Reload state from storage — trusts whatever the disk says."""
        blob = self.storage.load()
        if blob is None:
            self._state = self._functionality.initial_state()
        else:
            self._state = serde.decode(blob)

    # -------------------------------------------------- attack surface

    def rollback(self, version_index: int) -> None:
        """A malicious operator restores an old snapshot.  Nothing in the
        system can detect this (no integrity protection at all)."""
        self.storage.rollback_to(version_index)
        self.restart()

    def tamper_state(self, key: str, value: Any) -> None:
        """Directly overwrite service state (host has full control)."""
        state = dict(self._state)
        state[key] = value
        self._state = state
