"""The "Redis TLS" stand-in: append-only-log persistence, no TEE.

The paper benchmarks Redis configured with an append-log strategy
(Sec. 6.4) behind Stunnel.  What matters for the evaluation's shape:

- the event loop is single-threaded, but TLS runs in separate Stunnel
  processes, so transport crypto does not consume server-thread time;
- persistence appends each write to an AOF; with ``fsync`` enabled Redis
  group-commits — many queued commands share one flush — which is why the
  Redis curve keeps scaling in Fig. 6 while the snapshot-per-request
  systems flatten.

The functional model implements the AOF (append, replay-on-restart,
truncation = rollback) so attack tests can show that log truncation is
undetectable here too.
"""

from __future__ import annotations

from typing import Any

from repro import serde
from repro.kvstore.functionality import Functionality
from repro.kvstore.kvs import GET, KvsFunctionality


class RedisLikeServer:
    """Single-threaded KVS with append-only-file persistence."""

    def __init__(self, functionality: Functionality | None = None) -> None:
        self._functionality = functionality or KvsFunctionality()
        self._state: Any = self._functionality.initial_state()
        self.append_log: list[bytes] = []
        self.requests_handled = 0
        self.flushes = 0
        self._unflushed = 0

    def execute(self, operation: Any) -> Any:
        """Apply one operation; writes append to the AOF."""
        result, self._state = self._functionality.apply(self._state, operation)
        self.requests_handled += 1
        if not self._is_read(operation):
            self.append_log.append(serde.encode(
                list(operation) if isinstance(operation, tuple) else operation
            ))
            self._unflushed += 1
        return result

    @staticmethod
    def _is_read(operation: Any) -> bool:
        return isinstance(operation, (tuple, list)) and operation and operation[0] == GET

    def group_commit(self) -> int:
        """Flush all unflushed log entries with one fsync (group commit).

        Returns how many entries the single flush covered — the
        amortisation factor that keeps Redis scaling under fsync.
        """
        covered, self._unflushed = self._unflushed, 0
        self.flushes += 1
        return covered

    def restart(self) -> None:
        """Rebuild state by replaying the append log."""
        self._state = self._functionality.initial_state()
        for entry in self.append_log:
            operation = serde.decode(entry)
            _, self._state = self._functionality.apply(self._state, operation)

    # -------------------------------------------------- attack surface

    def truncate_log(self, keep: int) -> None:
        """A malicious operator drops the log tail and restarts: a rollback
        no Redis client can detect."""
        self.append_log = self.append_log[:keep]
        self.restart()
