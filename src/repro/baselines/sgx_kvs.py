"""The "SGX" baseline: an enclave-protected KVS *without* LCM.

This is the paper's main comparison point: the service state lives in an
enclave, messages and the sealed state blob are encrypted and
authenticated, so the host cannot read or forge anything — but there is no
hash chain, no ``V`` map and no client-side context.  Consequently a
malicious host can restart the enclave from any *older* sealed blob and the
system continues silently: rollback and forking are undetectable.  The
attack tests demonstrate exactly that, and the performance model charges
this system the same enclave-crypto costs as LCM minus the protocol
overhead.

The program implements the same ecall surface subset as
:class:`~repro.core.context.LcmContext` (attest / provision / invoke /
invoke_batch / status), so it runs on the identical server and TEE
substrate.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.crypto.dh import DhKeyPair, public_from_bytes
from repro.errors import AuthenticationFailure, ConfigurationError
from repro.kvstore.functionality import Functionality
from repro.tee.enclave import EnclaveEnv

_KEY_BLOB_AD = b"sgx-kvs/state-key"
_STATE_BLOB_AD = b"sgx-kvs/state"
_REQUEST_AD = b"sgx-kvs/request"
_REPLY_AD = b"sgx-kvs/reply"
_PROVISION_AD = b"sgx-kvs/provision"


class SgxKvsProgram:
    """Enclave program: encrypted KVS with sealing, no rollback defence."""

    PROGRAM_CODE = b"sgx-kvs-v1"
    DEVELOPER = "lcm-reproduction"

    def __init__(self, functionality: Functionality) -> None:
        self._functionality = functionality
        self._env: EnclaveEnv | None = None
        self._sealing_key: AeadKey | None = None
        self._state_key: AeadKey | None = None
        self._communication_key: AeadKey | None = None
        self._state: Any = None
        self._provisioned = False
        self._dh: DhKeyPair | None = None

    # ------------------------------------------------------------- lifecycle

    def on_start(self, env: EnclaveEnv) -> None:
        self._env = env
        self._sealing_key = env.get_key(b"sgx-kvs-sealing")
        blob = env.ocall_load()
        if blob is None:
            return
        # Accept whatever authenticates — this is the vulnerability: an old
        # blob authenticates just as well as the newest one.
        try:
            blob_key, blob_state = serde.decode(blob)
        except Exception as exc:
            raise AuthenticationFailure(f"stored blob malformed: {exc}") from exc
        key_material = auth_decrypt(
            blob_key, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._state_key = AeadKey(key_material, label="kP")
        plain = auth_decrypt(blob_state, self._state_key, associated_data=_STATE_BLOB_AD)
        self._state, kc_material = serde.decode(plain)
        self._communication_key = AeadKey(kc_material, label="kC")
        self._provisioned = True

    def _seal_and_store(self) -> None:
        plain = serde.encode([self._state, self._communication_key.material])
        blob_state = auth_encrypt(plain, self._state_key, associated_data=_STATE_BLOB_AD)
        blob_key = auth_encrypt(
            self._state_key.material, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._env.ocall_store(serde.encode([blob_key, blob_state]))

    # ----------------------------------------------------------------- ecalls

    def ecall(self, name: str, payload: Any) -> Any:
        if name == "attest":
            self._dh = DhKeyPair.generate(self._env.secure_random(32))
            return self._env.create_report(payload + self._dh.public_bytes())
        if name == "provision":
            return self._provision(payload)
        if name == "invoke":
            reply = self._process(payload)
            self._seal_and_store()
            return reply
        if name == "invoke_batch":
            replies = [self._process(message) for message in payload]
            self._seal_and_store()
            return replies
        if name == "status":
            return {"provisioned": self._provisioned}
        raise ConfigurationError(f"unknown ecall {name!r}")

    def _provision(self, payload: dict) -> bool:
        if self._provisioned:
            raise ConfigurationError("already provisioned")
        if self._dh is None:
            raise ConfigurationError("provision before attestation")
        channel = self._dh.shared_key(public_from_bytes(payload["admin_public"]))
        plain = auth_decrypt(payload["bundle"], channel, associated_data=_PROVISION_AD)
        kp_material, kc_material = serde.decode(plain)
        self._state_key = AeadKey(kp_material, label="kP")
        self._communication_key = AeadKey(kc_material, label="kC")
        self._state = self._functionality.initial_state()
        self._provisioned = True
        self._seal_and_store()
        return True

    def _process(self, message: bytes) -> bytes:
        if not self._provisioned:
            raise ConfigurationError("not provisioned")
        plain = auth_decrypt(
            message, self._communication_key, associated_data=_REQUEST_AD
        )
        operation = serde.decode(plain)
        result, self._state = self._functionality.apply(self._state, operation)
        return auth_encrypt(
            serde.encode(result), self._communication_key, associated_data=_REPLY_AD
        )


def make_sgx_kvs_factory(
    functionality_factory: Callable[[], Functionality],
) -> Callable[[], SgxKvsProgram]:
    def factory() -> SgxKvsProgram:
        return SgxKvsProgram(functionality_factory())

    return factory


class SgxKvsClient:
    """Client for the SGX baseline: encrypts requests, has *no* context.

    Note what is missing relative to :class:`~repro.core.client.LcmClient`:
    no ``tc``, no ``hc``, no stability — and therefore no way to notice
    that the service state jumped backwards.
    """

    def __init__(self, client_id: int, communication_key: AeadKey, transport) -> None:
        self.client_id = client_id
        self._key = communication_key
        self._transport = transport

    def invoke(self, operation: Any) -> Any:
        request = auth_encrypt(
            serde.encode(list(operation) if isinstance(operation, tuple) else operation),
            self._key,
            associated_data=_REQUEST_AD,
        )
        reply = self._transport.send_invoke(self.client_id, request)
        plain = auth_decrypt(reply, self._key, associated_data=_REPLY_AD)
        return serde.decode(plain)


def bootstrap_sgx_kvs(host, rng=None) -> AeadKey:
    """Minimal admin flow for the baseline: attest + provision kP/kC.

    Returns the communication key to hand to :class:`SgxKvsClient` objects.
    """
    import os

    rng = rng or os.urandom
    if not host.enclave.running:
        host.start()
    nonce = rng(16)
    report = host.enclave.ecall("attest", nonce)
    # The baseline admin skips quote verification in tests that don't care;
    # the full path is exercised by the LCM bootstrap tests.
    enclave_public = public_from_bytes(report.user_data[16 : 16 + 256])
    dh = DhKeyPair.generate(rng(32))
    channel = dh.shared_key(enclave_public)
    state_key_material = rng(16)
    communication_key = AeadKey(rng(16), label="kC")
    bundle = serde.encode([state_key_material, communication_key.material])
    host.enclave.ecall(
        "provision",
        {
            "admin_public": dh.public_bytes(),
            "bundle": auth_encrypt(bundle, channel, associated_data=_PROVISION_AD),
        },
    )
    return communication_key
