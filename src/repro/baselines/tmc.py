"""The "SGX + TMC" baseline: trusted monotonic counters (Sec. 3.1, 6.5).

A trusted monotonic counter lives in non-volatile memory inside the TEE
(Intel ME in the Windows SDK).  The enclave increments it on every store
and embeds the counter value in the sealed blob; on restart it compares the
blob's counter with the hardware counter — a mismatch means the host served
a stale blob, so rollback is detected *immediately* (unlike LCM, which
detects it at the next client interaction).

The cost: the paper measured ~60 ms per increment (others report up to
95 ms), so throughput collapses to ~12 ops/s.  The counter also binds the
state to one physical TEE, which is why TMC systems cannot migrate without
a trusted party (Sec. 3.1) — modelled here by deriving the counter identity
from the hosting platform.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.errors import RollbackDetected
from repro.kvstore.functionality import Functionality
from repro.baselines.sgx_kvs import SgxKvsProgram

_KEY_BLOB_AD = b"sgx-kvs/state-key"
_STATE_BLOB_AD = b"tmc-kvs/state"

#: Latency of one counter increment, seconds (paper's own measurement).
TMC_INCREMENT_LATENCY = 60e-3


class TrustedMonotonicCounter:
    """Non-volatile monotonic counter with modelled increment latency.

    ``increment()`` returns the new value and accumulates the virtual time
    cost in :attr:`time_spent` (the DES-based performance model charges the
    same constant from :mod:`repro.perf.costs`).  The counter value survives
    enclave restarts — it models dedicated NV hardware — but is bound to
    one platform.
    """

    def __init__(self, increment_latency: float = TMC_INCREMENT_LATENCY) -> None:
        self.value = 0
        self.increment_latency = increment_latency
        self.time_spent = 0.0
        self.increments = 0

    def increment(self) -> int:
        self.value += 1
        self.increments += 1
        self.time_spent += self.increment_latency
        return self.value

    def read(self) -> int:
        return self.value


class TmcKvsProgram(SgxKvsProgram):
    """SGX KVS extended with a TMC check on every store/load.

    Inherits the encrypted-KVS machinery from the baseline and overrides
    sealing to bind the blob to the counter.
    """

    PROGRAM_CODE = b"tmc-kvs-v1"

    def __init__(self, functionality: Functionality, counter: TrustedMonotonicCounter) -> None:
        super().__init__(functionality)
        self._counter = counter

    def _seal_and_store(self) -> None:
        counter_value = self._counter.increment()
        plain = serde.encode(
            [self._state, self._communication_key.material, counter_value]
        )
        blob_state = auth_encrypt(plain, self._state_key, associated_data=_STATE_BLOB_AD)
        blob_key = auth_encrypt(
            self._state_key.material, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._env.ocall_store(serde.encode([blob_key, blob_state]))

    def on_start(self, env) -> None:
        self._env = env
        self._sealing_key = env.get_key(b"sgx-kvs-sealing")
        blob = env.ocall_load()
        if blob is None:
            return
        try:
            blob_key, blob_state = serde.decode(blob)
        except Exception as exc:
            from repro.errors import AuthenticationFailure

            raise AuthenticationFailure(f"stored blob malformed: {exc}") from exc
        key_material = auth_decrypt(
            blob_key, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._state_key = AeadKey(key_material, label="kP")
        plain = auth_decrypt(blob_state, self._state_key, associated_data=_STATE_BLOB_AD)
        self._state, kc_material, counter_value = serde.decode(plain)
        # The rollback check the plain SGX baseline lacks:
        if counter_value != self._counter.read():
            raise RollbackDetected(
                f"sealed blob carries counter {counter_value} but the trusted "
                f"monotonic counter reads {self._counter.read()}: stale state"
            )
        self._communication_key = AeadKey(kc_material, label="kC")
        self._provisioned = True


def make_tmc_kvs_factory(
    functionality_factory: Callable[[], Functionality],
    counter: TrustedMonotonicCounter,
) -> Callable[[], TmcKvsProgram]:
    """Program factory sharing one NV counter across epochs (it is
    hardware, so it survives enclave restarts)."""

    def factory() -> TmcKvsProgram:
        return TmcKvsProgram(functionality_factory(), counter)

    return factory
