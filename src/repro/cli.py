"""Command-line interface for the LCM reproduction.

Subcommands::

    python -m repro.cli figures [--only fig4|fig5|fig6|sec62|sec63|sec65]
        Regenerate the paper's tables/figures and print paper-vs-measured.

    python -m repro.cli demo
        Run the quickstart flow (bootstrap, operate, reboot, stability).

    python -m repro.cli attack [--kind rollback|fork|replay]
        Mount an attack against LCM and show the detection.

    python -m repro.cli cluster [--clients N] [--ops N]
        Run the real protocol over the simulated network and verify
        fork-linearizability of the resulting execution.

    python -m repro.cli shard [--shards N] [--clients N] [--ops N]
                              [--distribution uniform|zipfian]
        Run a YCSB mix across N sharded LCM groups (with a mid-run
        migration-driven rebalance unless --no-rebalance) and verify
        every shard's execution; zipfian mixes also report per-shard
        load skew.

    python -m repro.cli elastic [--clients N] [--ops N]
        Drive a YCSB-A trace through a live cluster while the control
        plane splits the ring, merges it back, crashes a shard and
        recovers it — then verify the merged evidence across every
        generation.

    python -m repro.cli parallel [--shards N] [--clients N] [--ops N]
                                 [--backends NAME ...]
        Run one trace once per execution backend (default serial vs
        threaded) and report *wall-clock* seconds per backend, the
        speedup, and whether the audit evidence came out byte-identical
        (it must).  On a single-core host the speedup comparison is
        skipped with an explicit notice.

    python -m repro.cli frontier [--shards N ...] [--duration S]
                                 [--seeds N] [--output FILE] [--quick]
        Map the open-loop latency–throughput frontier: Poisson arrivals
        at a ladder of offered rates, serial vs the pipelined backend's
        virtual-split cost model, per-cell p50/p95/p99, queue and skew
        gauges, saturation detection, and the per-arm saturation
        throughput ratio.  --quick runs a tiny sweep and asserts
        monotone achieved throughput plus zero violations below
        saturation (the CI smoke).

    python -m repro.cli txn [--shards N] [--clients N] [--ops N]
                            [--txn-fraction F] [--no-faults]
        Run a transactional YCSB mix where multi-key requests commit
        atomically across shards through the router's 2PC coordinator,
        inject the crash-at-prepare and crash-after-decision fault
        windows, and verify per-shard fork-linearizability plus
        cross-shard transaction atomicity.

    python -m repro.cli metrics [--shards N] [--clients N] [--ops N]
                                [--tracing] [--output FILE]
        Run a short sharded workload with the observability plane on
        (streaming verifier included) and dump the cluster's metrics
        snapshot — counters, gauges, histogram summaries, events and,
        with --tracing, finished spans — as JSON.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.harness import experiments as exp
    from repro.harness.report import render_series_table, summarize_bands

    registry = {
        "fig4": (exp.run_fig4_object_size, "object_size"),
        "fig5": (exp.run_fig5_clients_async, "clients"),
        "fig6": (exp.run_fig6_clients_sync, "clients"),
        "sec62": (exp.run_sec62_enclave_memory, "objects"),
        "sec63": (exp.run_sec63_message_overhead, "object_size"),
        "sec65": (exp.run_sec65_tmc_comparison, "clients"),
    }
    selected = [args.only] if args.only else list(registry)
    for name in selected:
        runner, x_key = registry[name]
        kwargs = {}
        if name in ("fig4", "fig5", "fig6", "sec65") and args.duration:
            kwargs["duration"] = args.duration
        result = runner(**kwargs)
        print(render_series_table(result, x_key=x_key))
        print(summarize_bands(result))
        print()
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.crypto.attestation import EpidGroup
    from repro.core import Admin, make_lcm_program_factory
    from repro.kvstore import KvsFunctionality, get, put
    from repro.server import ServerHost
    from repro.tee import TeePlatform

    group = EpidGroup()
    platform = TeePlatform(group)
    factory = make_lcm_program_factory(KvsFunctionality)
    host = ServerHost(platform, factory)
    admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(host, client_ids=[1, 2, 3])
    alice, bob, carol = deployment.make_all_clients(host)
    print("bootstrapped; clients:", deployment.client_ids)
    target = alice.invoke(put("greeting", "hello")).sequence
    print("alice PUT greeting=hello ->", target)
    print("bob GET greeting ->", bob.invoke(get("greeting")).result)
    host.reboot()
    print("server rebooted; carol GET greeting ->",
          carol.invoke(get("greeting")).result)
    for _ in range(2):
        for client in (alice, bob, carol):
            client.poll_stability()
    alice.poll_stability()
    print("alice's PUT is majority-stable:", alice.is_stable(target))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.crypto.attestation import EpidGroup
    from repro.core import Admin, make_lcm_program_factory
    from repro.errors import SecurityViolation
    from repro.kvstore import KvsFunctionality, get, put
    from repro.server import MaliciousServer
    from repro.tee import TeePlatform

    group = EpidGroup()
    platform = TeePlatform(group)
    factory = make_lcm_program_factory(KvsFunctionality)
    server = MaliciousServer(platform, factory)
    admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
    deployment = admin.bootstrap(server, client_ids=[1, 2])
    alice, bob = deployment.make_all_clients(server)
    alice.invoke(put("k", "v1"))
    alice.invoke(put("k", "v2"))

    try:
        if args.kind == "rollback":
            server.rollback(server.storage.version_count() - 2)
            alice.invoke(get("k"))
        elif args.kind == "fork":
            fork = server.fork()
            server.route_client(2, fork)
            bob.invoke(put("k", "fork-side"))
            server.route_client(2, 0)
            bob.invoke(get("k"))
        else:  # replay
            server.replay_last_invoke(1)
    except SecurityViolation as violation:
        print(f"DETECTED {type(violation).__name__}: {violation}")
        return 0
    print("attack went undetected — this would be a bug")
    return 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.harness.simulated_cluster import SimulatedCluster
    from repro.kvstore import get, put

    cluster = SimulatedCluster(clients=args.clients, seed=args.seed)
    for client_id in range(1, args.clients + 1):
        for round_number in range(args.ops):
            if round_number % 2 == 0:
                cluster.submit(client_id, put(f"key-{round_number}", str(client_id)))
            else:
                cluster.submit(client_id, get(f"key-{round_number - 1}"))
    cluster.run()
    cluster.check_fork_linearizable()
    print(
        f"{cluster.stats.operations_completed} operations across "
        f"{args.clients} clients in {cluster.stats.batches} batches "
        f"(mean batch size {cluster.stats.mean_batch_size:.1f}); "
        "execution verified fork-linearizable"
    )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_shard_scaling

    if args.shards < 1 or args.clients < 1 or args.ops < 1:
        print("shard: --shards, --clients and --ops must all be >= 1")
        return 2
    result = run_shard_scaling(
        shard_counts=[1, args.shards] if args.shards > 1 else [1],
        clients=args.clients,
        requests_per_client=args.ops,
        rebalance=args.rebalance,
        distribution=args.distribution,
        seed=args.seed,
    )
    for shards, rate, moved, violations, skew in zip(
        result.series["shards"],
        result.series["ops_per_second"],
        result.series["rebalances"],
        result.series["violations"],
        result.series["load_skew"],
    ):
        note = f" ({moved} rebalance)" if moved else ""
        if shards > 1:
            note += f" [load skew {skew:.2f}x]"
        if violations:
            note += f" [{violations} VIOLATION(S)]"
        print(f"{shards} shard(s): {rate:,.0f} ops/s simulated{note}")
    speedup = result.ratios["speedup_at_max"]
    if not result.ratios["zero_violations"]:
        print(
            f"aggregate speedup at {result.series['shards'][-1]} shards: "
            f"{speedup:.2f}x; CONSISTENCY VIOLATIONS DETECTED (see above)"
        )
        return 1
    print(
        f"aggregate speedup at {result.series['shards'][-1]} shards: "
        f"{speedup:.2f}x; all shards verified fork-linearizable"
    )
    return 0


def _cmd_elastic(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_elastic_scaling

    if args.clients < 1 or args.ops < 1:
        print("elastic: --clients and --ops must be >= 1")
        return 2
    result = run_elastic_scaling(
        clients=args.clients,
        requests_per_client=args.ops,
        seed=args.seed,
    )
    labels = {"add": "split", "remove": "merge", "recover": "recover"}
    for kind, shard_id, ok, at, moved in zip(
        result.series["event"],
        result.series["event_shard"],
        result.series["event_ok"],
        result.series["event_completed_at"],
        result.series["event_keys_moved"],
    ):
        note = f", {moved} keys handed off" if moved else ""
        status = f"completed at {at * 1e3:.2f} ms" if ok else "ABORTED"
        print(f"{labels.get(kind, kind)} shard {shard_id}: {status}{note}")
    ratios = result.ratios
    print(
        f"{ratios['requests_completed']} requests completed "
        f"({ratios['ops_per_second']:,.0f} ops/s simulated); "
        f"{ratios['operations_parked']} parked during outages, "
        f"{ratios['operations_replayed']} replayed"
    )
    if not ratios["zero_violations"] or not ratios["all_requests_completed"]:
        print("ELASTIC RUN FAILED: violations or lost requests (see above)")
        return 1
    print(
        "all generations verified fork-linearizable "
        "(evidence spans the split, the merge and the recovery)"
    )
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    import os

    from repro.harness.experiments import run_parallel_wallclock

    if args.shards < 1 or args.clients < 1 or args.ops < 1:
        print("parallel: --shards, --clients and --ops must all be >= 1")
        return 2
    cores = os.cpu_count() or 1
    result = run_parallel_wallclock(
        shards=args.shards,
        clients=args.clients,
        requests_per_client=args.ops,
        backends=tuple(args.backends),
        seed=args.seed,
    )
    for backend, wall, ops, violations in zip(
        result.series["backend"],
        result.series["wall_seconds"],
        result.series["operations_completed"],
        result.series["violations"],
    ):
        note = f" [{violations} VIOLATION(S)]" if violations else ""
        print(
            f"{backend:>8}: {ops} operations in {wall:.3f}s wall "
            f"({ops / wall:,.0f} ops/s real){note}"
        )
    ratios = result.ratios
    if not ratios["identical_digests"]:
        print("PARALLEL RUN FAILED: audit evidence differs across backends")
        return 1
    if not ratios["zero_violations"]:
        print("PARALLEL RUN FAILED: consistency violations (see above)")
        return 1
    if cores < 2:
        # same convention as run_micro's missing-bench notices: an
        # explicit skipped line, never a silent pass
        print(
            "  threaded_speedup: skipped — single-core host "
            f"(os.cpu_count()={cores}); no wall-clock overlap possible, "
            "determinism contract still verified"
        )
    else:
        print(
            f"threaded speedup: {ratios['threaded_speedup']:.2f}x "
            f"wall-clock on {cores} core(s); audit evidence "
            "byte-identical across backends"
        )
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.harness.frontier import (
        SATURATION_SHORTFALL,
        run_frontier,
        shard_capacity,
    )

    if args.quick:
        shard_counts: tuple[int, ...] = (2,)
        rates = [shard_capacity(2) * f for f in (0.5, 0.9, 1.3)]
        duration = 0.04
        seeds: tuple[int, ...] = (args.seed,)
    else:
        shard_counts = tuple(args.shards)
        rates = None  # per-shard-count default ladder
        duration = args.duration
        seeds = tuple(range(args.seed, args.seed + args.seeds))
    result = run_frontier(
        backends=tuple(args.backends),
        shard_counts=shard_counts,
        rates=rates,
        seeds=seeds,
        duration=duration,
    )
    print(
        f"{'backend':>10} {'shards':>6} {'offered/s':>10} {'achieved/s':>10} "
        f"{'p50us':>8} {'p95us':>8} {'p99us':>9} {'qpeak':>5} "
        f"{'skew':>5} {'sat':>4}"
    )
    for cell in result.cells:
        print(
            f"{cell.backend:>10} {cell.shards:>6} "
            f"{cell.offered_rate:>10,.0f} {cell.achieved_tps:>10,.0f} "
            f"{cell.p50 * 1e6:>8.1f} {cell.p95 * 1e6:>8.1f} "
            f"{cell.p99 * 1e6:>9.1f} {cell.queue_depth_peak:>5} "
            f"{cell.load_skew:>5.2f} {'yes' if cell.saturated else 'no':>4}"
        )
    failures = []
    below = [c for c in result.cells if not c.saturated]
    violated = [c for c in below if c.violations]
    if violated:
        failures.append(
            f"{len(violated)} below-saturation cell(s) recorded violations"
        )
    for backend, arms in sorted(result.saturation.items()):
        for shards, tps in sorted(arms.items()):
            print(
                f"saturation: {backend} @ {shards} shard(s) = {tps:,.0f} "
                f"ops/s (nominal serial capacity {shard_capacity(shards):,.0f})"
            )
    serial_arms = result.saturation.get("serial", {})
    pipelined_arms = result.saturation.get("pipelined", {})
    for shards in sorted(set(serial_arms) & set(pipelined_arms)):
        if serial_arms[shards]:
            ratio = pipelined_arms[shards] / serial_arms[shards]
            print(
                f"pipelined/serial saturation throughput @ {shards} "
                f"shard(s): {ratio:.2f}x"
            )
    if args.quick:
        # CI smoke: below the knee, offering more must achieve more
        by_arm: dict = {}
        for cell in result.cells:
            by_arm.setdefault((cell.backend, cell.shards), []).append(cell)
        for (backend, shards), cells in sorted(by_arm.items()):
            cells.sort(key=lambda c: c.offered_rate)
            achieved = [
                c.achieved_tps for c in cells
                if not c.saturated
                and c.achieved_tps >= SATURATION_SHORTFALL * c.offered_rate
            ]
            if any(b < a for a, b in zip(achieved, achieved[1:])):
                failures.append(
                    f"achieved throughput not monotone below saturation "
                    f"for {backend} @ {shards} shard(s): {achieved}"
                )
    if args.output:
        result.dump(args.output)
        print(f"frontier matrix written to {args.output} "
              f"({len(result.cells)} cells)")
    if failures:
        for failure in failures:
            print(f"FRONTIER FAILED: {failure}")
        return 1
    return 0


def _cmd_txn(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_cross_shard

    if args.shards < 2 or args.clients < 1 or args.ops < 1:
        print("txn: --shards must be >= 2, --clients and --ops >= 1")
        return 2
    result = run_cross_shard(
        shards=args.shards,
        clients=args.clients,
        requests_per_client=args.ops,
        txn_fraction=args.txn_fraction,
        faults=args.faults,
        group_commit=args.group_commit,
        seed=args.seed,
    )
    ratios = result.ratios
    for kind, shard_id in zip(result.series["fault"], result.series["fault_shard"]):
        print(f"injected {kind} on shard {shard_id} (recovered)")
    print(
        f"{ratios['requests_completed']} requests completed "
        f"({ratios['ops_per_second']:,.0f} ops/s simulated); "
        f"{ratios['transactions_committed']} transactions committed across "
        f"up to {ratios['max_participants']} shards, "
        f"{ratios['conflict_retries']} conflict-aborts retried, "
        f"{ratios['lock_retries']} locked single-key reads retried"
    )
    if (
        not ratios["zero_violations"]
        or not ratios["all_requests_completed"]
        or not ratios["spans_multiple_shards"]
    ):
        print("CROSS-SHARD RUN FAILED: violations, lost requests or no "
              "multi-shard transaction (see above)")
        return 1
    print(
        "all shards fork-linearizable and every decided transaction "
        "atomic across shard histories "
        f"({ratios['cross_shard_txns']} cross-shard transactions checked)"
    )
    return 0


def _cmd_group_commit(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_group_commit

    if min(args.shards) < 2 or args.clients < 1 or args.txns < 1:
        print("groupcommit: --shards must all be >= 2, --clients and "
              "--txns >= 1")
        return 2
    result = run_group_commit(
        shard_counts=tuple(args.shards),
        clients=args.clients,
        txns_per_client=args.txns,
        pipeline_depth=args.depth,
        seed=args.seed,
    )
    series = result.series
    for index, count in enumerate(series["shards"]):
        print(
            f"{count} shards: {series['txns_per_second'][index]:,.0f} txn/s "
            f"simulated ({series['committed'][index]} committed, "
            f"{series['aborted'][index]} wound-wait aborts, "
            f"{series['group_flushes'][index]} merged flushes carrying "
            f"{series['group_entries'][index]} lifecycle entries)"
        )
    ratios = result.ratios
    if not (
        ratios["zero_violations"]
        and ratios["throughput_scales_with_shards"]
        and ratios["group_flushes_everywhere"]
    ):
        print("GROUP-COMMIT RUN FAILED: violations, flat scaling or no "
              "merged flushes (see above)")
        return 1
    print(
        f"throughput scaled {ratios['scaling_factor']:.2f}x from "
        f"{series['shards'][0]} to {series['shards'][-1]} shards; "
        "all verdicts clean, streaming parity holds"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import random

    from repro.kvstore import get, put
    from repro.obs.export import CallbackSink, JsonlSink, reconcile_stream
    from repro.sharding import ShardRouter, ShardedCluster

    if args.shards < 1 or args.clients < 1 or args.ops < 1:
        print("metrics: --shards, --clients and --ops must all be >= 1")
        return 2
    export = None
    if args.follow:
        # push-based telemetry: batch-boundary flushes go to a JSONL file
        # (reconciled against the final snapshot below) or straight to
        # stdout as one JSON record per line
        if args.output:
            export = JsonlSink(args.output)
        else:
            export = CallbackSink(
                lambda record: print(json.dumps(record, default=str))
            )
    cluster = ShardedCluster(
        shards=args.shards, clients=args.clients, seed=args.seed,
        tracing=args.tracing, export=export,
    )
    router = ShardRouter(cluster)
    rng = random.Random(args.seed)
    keyspace = [f"key-{i}" for i in range(max(8, args.clients * 2))]

    def start(client_id: int, remaining: int) -> None:
        def pump(_result=None) -> None:
            nonlocal remaining
            if remaining <= 0:
                return
            remaining -= 1
            key = rng.choice(keyspace)
            operation = (
                put(key, f"v{client_id}-{remaining}")
                if rng.random() < 0.5
                else get(key)
            )
            router.submit(client_id, operation, pump)

        pump()

    for client_id in cluster.client_ids:
        start(client_id, args.ops)
    cluster.run()
    verdict = router.streaming_verdict()
    snapshot = cluster.metrics()
    if args.tracing:
        snapshot["spans"] = [span.as_dict() for span in cluster.tracer.finished()]
    if cluster.exporter is not None:
        # terminal snapshot + close accounting ride the stream itself
        cluster.exporter.close(snapshot)
    if args.follow and args.output:
        with open(args.output, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        problems = reconcile_stream(records, snapshot)
        if problems:
            for problem in problems:
                print(f"RECONCILE: {problem}", file=sys.stderr)
            return 1
        print(
            f"{len(records)} telemetry records streamed to {args.output}; "
            "stream reconciles exactly with the final snapshot"
        )
    elif not args.follow:
        rendered = json.dumps(snapshot, indent=2, default=str)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            print(f"metrics snapshot written to {args.output}")
        else:
            print(rendered)
    if not verdict.ok:
        print("STREAMING VERIFIER FLAGGED VIOLATIONS (see verifier.* events)",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LCM (DSN 2017) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--only", choices=["fig4", "fig5", "fig6", "sec62", "sec63", "sec65"])
    figures.add_argument("--duration", type=float, default=None,
                         help="simulation window override (seconds)")
    figures.set_defaults(handler=_cmd_figures)

    demo = sub.add_parser("demo", help="run the quickstart flow")
    demo.set_defaults(handler=_cmd_demo)

    attack = sub.add_parser("attack", help="mount an attack and show detection")
    attack.add_argument("--kind", choices=["rollback", "fork", "replay"],
                        default="rollback")
    attack.set_defaults(handler=_cmd_attack)

    cluster = sub.add_parser("cluster", help="virtual-time protocol run + checker")
    cluster.add_argument("--clients", type=int, default=4)
    cluster.add_argument("--ops", type=int, default=6)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.set_defaults(handler=_cmd_cluster)

    shard = sub.add_parser(
        "shard", help="sharded-group scaling run + per-shard checker"
    )
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--clients", type=int, default=24)
    shard.add_argument("--ops", type=int, default=16,
                       help="logical YCSB requests per client")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--no-rebalance", dest="rebalance",
                       action="store_false",
                       help="skip the mid-run shard migration")
    shard.add_argument("--distribution", choices=["uniform", "zipfian"],
                       default="uniform",
                       help="request-key distribution (zipfian skews "
                       "per-shard load)")
    shard.set_defaults(handler=_cmd_shard)

    elastic = sub.add_parser(
        "elastic",
        help="split/merge/crash+recover a live cluster + merged checker",
    )
    elastic.add_argument("--clients", type=int, default=16)
    elastic.add_argument("--ops", type=int, default=40,
                         help="logical YCSB requests per client")
    elastic.add_argument("--seed", type=int, default=0)
    elastic.set_defaults(handler=_cmd_elastic)

    parallel = sub.add_parser(
        "parallel",
        help="wall-clock cross-backend comparison + determinism check",
    )
    parallel.add_argument("--shards", type=int, default=4)
    parallel.add_argument("--clients", type=int, default=8)
    parallel.add_argument("--ops", type=int, default=60,
                          help="logical YCSB requests per client")
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument(
        "--backends", nargs="+", default=["serial", "threaded"],
        choices=["serial", "threaded", "pipelined", "process"],
        help="execution backends to compare (evidence must stay "
        "byte-identical across all of them)",
    )
    parallel.set_defaults(handler=_cmd_parallel)

    frontier = sub.add_parser(
        "frontier",
        help="open-loop latency-throughput frontier sweep",
    )
    frontier.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    frontier.add_argument(
        "--backends", nargs="+", default=["serial", "pipelined"],
        choices=["serial", "threaded", "pipelined", "process"],
    )
    frontier.add_argument("--duration", type=float, default=0.25,
                          help="virtual seconds of Poisson arrivals per cell")
    frontier.add_argument("--seeds", type=int, default=1,
                          help="seeds per (backend, shards, rate) cell")
    frontier.add_argument("--seed", type=int, default=0,
                          help="first seed of the per-cell seed range")
    frontier.add_argument("--output", type=str, default=None,
                          help="write the full cell matrix as JSON")
    frontier.add_argument(
        "--quick", action="store_true",
        help="tiny CI smoke: 2-shard rate ladder, asserts monotone "
        "achieved throughput below saturation and zero violations",
    )
    frontier.set_defaults(handler=_cmd_frontier)

    txn = sub.add_parser(
        "txn",
        help="cross-shard atomic-commit run + merged transaction checker",
    )
    txn.add_argument("--shards", type=int, default=3)
    txn.add_argument("--clients", type=int, default=12)
    txn.add_argument("--ops", type=int, default=30,
                     help="logical requests per client")
    txn.add_argument("--txn-fraction", type=float, default=0.35,
                     help="fraction of requests run as multi-key transactions")
    txn.add_argument("--no-faults", dest="faults", action="store_false",
                     help="skip the crash-at-prepare / crash-after-decision "
                     "fault injection")
    txn.add_argument("--no-group-commit", dest="group_commit",
                     action="store_false",
                     help="send every lifecycle operation as its own "
                     "sealed ecall instead of merging per boundary")
    txn.add_argument("--seed", type=int, default=0)
    txn.set_defaults(handler=_cmd_txn)

    groupcommit = sub.add_parser(
        "groupcommit",
        help="transaction throughput vs. shard count under group commit",
    )
    groupcommit.add_argument("--shards", type=int, nargs="+", default=[2, 4])
    groupcommit.add_argument("--clients", type=int, default=8)
    groupcommit.add_argument("--txns", type=int, default=30,
                             help="transactions per client")
    groupcommit.add_argument("--depth", type=int, default=4,
                             help="transactions each client keeps in flight")
    groupcommit.add_argument("--seed", type=int, default=7)
    groupcommit.set_defaults(handler=_cmd_group_commit)

    metrics = sub.add_parser(
        "metrics",
        help="run a sharded workload and export the metrics snapshot as JSON",
    )
    metrics.add_argument("--shards", type=int, default=2)
    metrics.add_argument("--clients", type=int, default=8)
    metrics.add_argument("--ops", type=int, default=20,
                         help="operations per client")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--tracing", action="store_true",
                         help="also record per-request spans and include "
                         "them in the snapshot")
    metrics.add_argument("--output", default=None,
                         help="write the JSON snapshot to a file instead "
                         "of stdout (with --follow: the JSONL stream "
                         "destination)")
    metrics.add_argument("--follow", action="store_true",
                         help="stream telemetry records (events + counter "
                         "deltas) at every batch boundary instead of only "
                         "printing the final snapshot; with --output FILE "
                         "the JSONL stream is re-read and reconciled "
                         "against the final snapshot")
    metrics.set_defaults(handler=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
