"""Consistency machinery: histories, linearizability, fork-linearizability.

LCM's headline guarantee is fork-linearizability (Sec. 3.2.1): every client
observes a linearizable history, and once the server has shown two clients
diverging histories it can never join them again without detection.  This
package provides the offline machinery the tests use to *verify* that
guarantee on executions produced by the protocol (including executions under
attack):

- :mod:`repro.consistency.history` — invocation/response events, real-time
  precedence, per-client views;
- :mod:`repro.consistency.linearizability` — a Wing & Gong style
  exhaustive checker for small histories against a sequential
  functionality;
- :mod:`repro.consistency.fork_linearizability` — checks a set of client
  views (derived from enclave audit logs + client observations) for
  fork-linearizability: per-view correctness, own-operation inclusion,
  real-time order, and the no-join property across forks;
- :mod:`repro.consistency.transactions` — cross-shard transaction
  atomicity over the per-shard audit logs: all-or-nothing decisions,
  coordinator consistency, and detection of a forked shard withholding
  a completed decision from some clients;
- :mod:`repro.consistency.streaming` — the *online* counterpart of the
  fork-linearizability checker: consumes audit evidence incrementally at
  batch boundaries, emits violations the moment they are detectable, and
  garbage-collects evidence below the majority-stable frontier so its
  memory tracks the unstable suffix rather than the whole history, while
  producing a verdict provably equal to the post-mortem one.
"""

from repro.consistency.fork_linearizability import (
    ForkTree,
    check_cluster_execution,
    check_fork_linearizable,
    views_from_audit_logs,
)
from repro.consistency.history import ClientView, History, OperationRecord
from repro.consistency.linearizability import is_linearizable
from repro.consistency.stable_subsequence import (
    check_stable_subsequence_linearizable,
    stable_bound_frontier,
    stable_subsequence,
)
from repro.consistency.streaming import (
    StreamingChecker,
    StreamingGenerationVerdict,
)
from repro.consistency.transactions import (
    CoordinatorDecision,
    TxnEvidence,
    TxnTrace,
    check_transaction_atomicity,
    check_txn_traces,
    trace_txn_operation,
    withheld_decision,
)

__all__ = [
    "CoordinatorDecision",
    "TxnEvidence",
    "TxnTrace",
    "check_transaction_atomicity",
    "check_txn_traces",
    "trace_txn_operation",
    "withheld_decision",
    "StreamingChecker",
    "StreamingGenerationVerdict",
    "stable_bound_frontier",
    "History",
    "OperationRecord",
    "ClientView",
    "is_linearizable",
    "check_cluster_execution",
    "check_fork_linearizable",
    "views_from_audit_logs",
    "ForkTree",
    "stable_subsequence",
    "check_stable_subsequence_linearizable",
]
