"""Consistency machinery: histories, linearizability, fork-linearizability.

LCM's headline guarantee is fork-linearizability (Sec. 3.2.1): every client
observes a linearizable history, and once the server has shown two clients
diverging histories it can never join them again without detection.  This
package provides the offline machinery the tests use to *verify* that
guarantee on executions produced by the protocol (including executions under
attack):

- :mod:`repro.consistency.history` — invocation/response events, real-time
  precedence, per-client views;
- :mod:`repro.consistency.linearizability` — a Wing & Gong style
  exhaustive checker for small histories against a sequential
  functionality;
- :mod:`repro.consistency.fork_linearizability` — checks a set of client
  views (derived from enclave audit logs + client observations) for
  fork-linearizability: per-view correctness, own-operation inclusion,
  real-time order, and the no-join property across forks;
- :mod:`repro.consistency.transactions` — cross-shard transaction
  atomicity over the per-shard audit logs: all-or-nothing decisions,
  coordinator consistency, and detection of a forked shard withholding
  a completed decision from some clients.
"""

from repro.consistency.fork_linearizability import (
    ForkTree,
    check_cluster_execution,
    check_fork_linearizable,
    views_from_audit_logs,
)
from repro.consistency.history import ClientView, History, OperationRecord
from repro.consistency.linearizability import is_linearizable
from repro.consistency.stable_subsequence import (
    check_stable_subsequence_linearizable,
    stable_subsequence,
)
from repro.consistency.transactions import (
    CoordinatorDecision,
    TxnEvidence,
    check_transaction_atomicity,
)

__all__ = [
    "CoordinatorDecision",
    "TxnEvidence",
    "check_transaction_atomicity",
    "History",
    "OperationRecord",
    "ClientView",
    "is_linearizable",
    "check_cluster_execution",
    "check_fork_linearizable",
    "views_from_audit_logs",
    "ForkTree",
    "stable_subsequence",
    "check_stable_subsequence_linearizable",
]
