"""Fork-linearizability checking (Sec. 3.2.1).

Fork-linearizability relaxes linearizability by permitting the execution to
split into multiple "forks": every client still observes a linearizable
history, and whenever an operation is observed by multiple clients, the
history of events before it is identical in their views.  Crucially, forked
clients "can never be joined again" — once two views diverge, no later
operation may appear in both.

This module verifies the property on executions produced by the protocol:

1. ``views_from_audit_logs`` derives each client's view from the audit logs
   of *all* enclave instances (one per fork the malicious server created)
   and the client's final observed ``(t, h)`` point;
2. ``check_fork_linearizable`` validates:

   - **view correctness** — each view replays through ``F`` from the
     initial state reproducing the recorded results (so each view is a
     correct sequential history, hence linearizable on its own);
   - **completeness** — a client's view contains all of its operations;
   - **real-time order** — the view order never contradicts global
     real-time precedence *among the operations in that view*;
   - **no-join** — for any two views, operations past their longest common
     prefix are disjoint (the fork-tree property).

Violations raise :class:`~repro.errors.SecurityViolation` subclasses with a
description of the offending pair, so attack tests can assert precisely
*what* was detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import serde
from repro.consistency.history import ClientView, OperationRecord
from repro.core.context import AuditRecord
from repro.core.hashchain import ChainPoint, prefix_for, verify_audit_chain
from repro.errors import ForkDetected, SecurityViolation
from repro.kvstore.functionality import Functionality


@dataclass
class ForkTree:
    """The fork structure extracted from a set of views.

    Each node is identified by a (depth, key) pair where ``key`` is the
    serialized operation record at that position; views are paths from the
    root.  Mostly useful for diagnostics and example scripts.
    """

    branches: dict[tuple[int, bytes], list[int]] = field(default_factory=dict)

    def record_view(self, client_id: int, view: ClientView) -> None:
        for depth, record in enumerate(view.records):
            key = (depth, _record_key(record))
            self.branches.setdefault(key, []).append(client_id)

    def fork_points(self) -> list[int]:
        """Depths at which more than one distinct operation appears."""
        by_depth: dict[int, set[bytes]] = {}
        for (depth, key), _clients in self.branches.items():
            by_depth.setdefault(depth, set()).add(key)
        return sorted(depth for depth, keys in by_depth.items() if len(keys) > 1)


def _record_key(record: OperationRecord) -> bytes:
    return serde.encode(
        [
            record.client_id,
            record.operation
            if not isinstance(record.operation, tuple)
            else list(record.operation),
            record.sequence,
        ]
    )


#: Response timestamp of a synthesised record (one missing from the
#: recorded history — e.g. a sequenced key-range handoff, which no client
#: invoked).  Paired with ``invoked_at=0`` it makes the record concurrent
#: with *every* other operation: no timing metadata exists for it, so the
#: real-time check must not invent precedence constraints from it.  (A
#: zero/zero pair would instead place it before every real operation and
#: reject any view where it appears later — a false violation.)
_UNTIMED_RESPONSE = 1 << 62


def views_from_audit_logs(
    logs: list[list[AuditRecord]],
    client_points: dict[int, ChainPoint],
    history_records: dict[tuple[int, int], OperationRecord],
) -> dict[int, ClientView]:
    """Reconstruct each client's view from enclave audit logs.

    Parameters
    ----------
    logs:
        Audit logs exported from every enclave instance the (possibly
        malicious) server ran.  Each is verified for internal chain
        consistency first.
    client_points:
        Each client's final observed ``(t, h)`` — from
        ``client.last_sequence`` / ``client.last_chain``.
    history_records:
        Lookup from ``(client_id, sequence)`` to the globally recorded
        :class:`OperationRecord` (for real-time metadata).  Entries missing
        from the lookup are synthesised as concurrent-with-everything.

    Raises :class:`SecurityViolation` if a client's point lies on *no*
    log — meaning the server invented a history even the TEE never
    executed, which the protocol rules out.
    """
    for log in logs:
        verify_audit_chain(log)
    views: dict[int, ClientView] = {}
    for client_id, point in client_points.items():
        prefix: list[AuditRecord] | None = None
        for log in logs:
            try:
                prefix = prefix_for(log, point)
                break
            except SecurityViolation:
                continue
        if prefix is None:
            raise SecurityViolation(
                f"client {client_id} observed a chain value on no enclave log"
            )
        records = []
        for audit in prefix:
            key = (audit.client_id, audit.sequence)
            record = history_records.get(key)
            if record is None:
                record = OperationRecord(
                    op_id=-audit.sequence,
                    client_id=audit.client_id,
                    operation=serde.decode(audit.operation),
                    result=serde.decode(audit.result),
                    invoked_at=0,
                    responded_at=_UNTIMED_RESPONSE,
                    sequence=audit.sequence,
                )
            records.append(record)
        views[client_id] = ClientView(client_id=client_id, records=records)
    return views


def check_fork_linearizable(
    views: dict[int, ClientView],
    functionality: Functionality,
    *,
    own_operations: dict[int, list[OperationRecord]] | None = None,
    skip_nop: bool = True,
) -> ForkTree:
    """Verify fork-linearizability of a set of client views.

    Returns the extracted :class:`ForkTree` on success; raises a
    :class:`SecurityViolation` subclass describing the first violation
    found otherwise.
    """
    from repro.core.context import NOP_OPERATION

    def is_nop(record: OperationRecord) -> bool:
        op = record.operation
        return (
            skip_nop
            and isinstance(op, (list, tuple))
            and len(op) == 1
            and op[0] == NOP_OPERATION[0]
        )

    # 1. per-view sequential correctness against F
    for client_id, view in views.items():
        state: Any = functionality.initial_state()
        for record in view.records:
            if is_nop(record):
                continue
            result, state = functionality.apply(state, record.operation)
            if result != record.result:
                raise SecurityViolation(
                    f"view of client {client_id} is not a correct execution: "
                    f"operation {record.operation!r} returned {record.result!r}, "
                    f"expected {result!r}"
                )

    # 2. completeness: all own operations present
    if own_operations is not None:
        for client_id, own in own_operations.items():
            view = views.get(client_id)
            if view is None:
                raise SecurityViolation(f"no view for client {client_id}")
            sequences_in_view = {
                record.sequence
                for record in view.records
                if record.client_id == client_id
            }
            for record in own:
                if record.sequence not in sequences_in_view:
                    raise SecurityViolation(
                        f"view of client {client_id} misses its own operation "
                        f"seq={record.sequence}"
                    )

    # 3. real-time order within each view
    for client_id, view in views.items():
        if not view.respects_real_time():
            raise SecurityViolation(
                f"view of client {client_id} contradicts real-time order"
            )

    # 4. no-join across views
    client_ids = sorted(views)
    for idx, a_id in enumerate(client_ids):
        for b_id in client_ids[idx + 1 :]:
            _check_no_join(views[a_id], views[b_id])

    tree = ForkTree()
    for client_id, view in views.items():
        tree.record_view(client_id, view)
    return tree


def _check_no_join(view_a: ClientView, view_b: ClientView) -> None:
    """After the longest common prefix, the views must share no operation."""
    records_a = view_a.records
    records_b = view_b.records
    common = 0
    for ra, rb in zip(records_a, records_b):
        if _record_key(ra) == _record_key(rb):
            common += 1
        else:
            break
    suffix_a = {_record_key(record) for record in records_a[common:]}
    suffix_b = {_record_key(record) for record in records_b[common:]}
    joined = suffix_a & suffix_b
    if joined:
        raise ForkDetected(
            f"views of clients {view_a.client_id} and {view_b.client_id} "
            f"diverge at position {common} but later share {len(joined)} "
            "operation(s): forks were joined"
        )


def check_cluster_execution(
    logs: list[list[AuditRecord]],
    clients: dict[int, Any],
    history: Any,
    functionality: Functionality,
) -> ForkTree:
    """Assemble the Sec. 3.2.1 checker inputs from live cluster objects.

    The one place the evidence construction lives, shared by every cluster
    runtime (the single-group ``SimulatedCluster``, the per-shard
    ``ShardRouter`` checks): ``clients`` maps client id to any object
    exposing ``last_sequence``/``last_chain``; ``history`` is the
    :class:`~repro.consistency.history.History` recorded while the
    execution ran.  Returns the :class:`ForkTree` or raises the first
    :class:`~repro.errors.SecurityViolation` found.
    """
    points = {
        client_id: ChainPoint(client.last_sequence, client.last_chain)
        for client_id, client in clients.items()
    }
    lookup = {
        (record.client_id, record.sequence): record
        for record in history.records()
        if record.sequence is not None
    }
    own = {client_id: history.by_client(client_id) for client_id in clients}
    views = views_from_audit_logs(logs, points, lookup)
    return check_fork_linearizable(views, functionality, own_operations=own)
