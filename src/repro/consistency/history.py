"""Executions, histories and views (Sec. 2.1, 3.2).

We use the standard distributed-computing formalism the paper references:
an operation execution is an invocation event followed by a response event;
two operations are concurrent when neither response precedes the other's
invocation; a *history* is the full record of one execution; a client's
*view* is a serialized history of operations that includes all operations
of that client (Sec. 3.2.1).

The test harness stamps events with a global logical time (a monotonically
increasing counter) to define the real-time partial order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class OperationRecord:
    """One complete operation: invocation + response, with metadata.

    ``invoked_at`` / ``responded_at`` are global logical timestamps;
    ``sequence`` is the LCM-assigned sequence number (``None`` for
    non-LCM baselines); ``op_id`` is unique per record.
    """

    op_id: int
    client_id: int
    operation: Any
    result: Any
    invoked_at: int
    responded_at: int
    sequence: int | None = None

    def precedes(self, other: "OperationRecord") -> bool:
        """Real-time order: this operation completed before ``other`` began."""
        return self.responded_at < other.invoked_at

    def concurrent_with(self, other: "OperationRecord") -> bool:
        return not self.precedes(other) and not other.precedes(self)


class History:
    """A recorder for complete operations across all clients.

    >>> history = History()
    >>> token = history.invoke(1, ("PUT", "k", "v"))
    >>> record = history.respond(token, result=None)
    >>> history.records()[0].client_id
    1
    """

    def __init__(self) -> None:
        self._clock = itertools.count(1)
        self._op_ids = itertools.count(1)
        self._pending: dict[int, tuple[int, Any, int]] = {}
        self._records: list[OperationRecord] = []

    def invoke(self, client_id: int, operation: Any) -> int:
        """Record an invocation event; returns a token for :meth:`respond`."""
        op_id = next(self._op_ids)
        self._pending[op_id] = (client_id, operation, next(self._clock))
        return op_id

    def respond(
        self, token: int, result: Any, sequence: int | None = None
    ) -> OperationRecord:
        """Record the matching response event and complete the operation."""
        client_id, operation, invoked_at = self._pending.pop(token)
        record = OperationRecord(
            op_id=token,
            client_id=client_id,
            operation=operation,
            result=result,
            invoked_at=invoked_at,
            responded_at=next(self._clock),
            sequence=sequence,
        )
        self._records.append(record)
        return record

    def record_complete(
        self, client_id: int, operation: Any, result: Any, sequence: int | None = None
    ) -> OperationRecord:
        """Convenience: record an operation with adjacent inv/resp events."""
        token = self.invoke(client_id, operation)
        return self.respond(token, result, sequence)

    def records(self) -> list[OperationRecord]:
        return list(self._records)

    def by_client(self, client_id: int) -> list[OperationRecord]:
        return [r for r in self._records if r.client_id == client_id]

    def records_since(self, offset: int) -> list[OperationRecord]:
        """Completed records from ``offset`` onwards (incremental reads).

        Records are append-only, so a consumer that remembers how many it
        has seen can harvest only the new suffix — the streaming verifier
        does this at every batch boundary.
        """
        return self._records[offset:]

    def completed_count(self) -> int:
        return len(self._records)

    def incomplete_count(self) -> int:
        return len(self._pending)

    def pending_clients(self) -> set[int]:
        """Clients with at least one invocation awaiting its response."""
        return {client_id for client_id, _, _ in self._pending.values()}

    def real_time_pairs(self) -> Iterable[tuple[OperationRecord, OperationRecord]]:
        """All (a, b) pairs with a preceding b in real time."""
        for a in self._records:
            for b in self._records:
                if a is not b and a.precedes(b):
                    yield a, b


@dataclass
class ClientView:
    """A serialized history attributed to one client (Sec. 3.2.1).

    ``records`` lists the operations the client's history comprises, in
    serialization order — for LCM this is the enclave audit-log prefix up
    to the client's last observed sequence number.
    """

    client_id: int
    records: list[OperationRecord] = field(default_factory=list)

    def contains_all_own_operations(self, own: list[OperationRecord]) -> bool:
        """A view must include all operations of its client."""
        ids_in_view = {record.op_id for record in self.records}
        return all(record.op_id in ids_in_view for record in own)

    def respects_real_time(self) -> bool:
        """Serialization order must respect real-time precedence."""
        position = {record.op_id: idx for idx, record in enumerate(self.records)}
        for a in self.records:
            for b in self.records:
                if a.precedes(b) and position[a.op_id] > position[b.op_id]:
                    return False
        return True
