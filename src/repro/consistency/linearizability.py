"""Exhaustive linearizability checking for small histories.

Implements the classic Wing & Gong search (with memoisation on
(linearized-set, state) pairs): a history is linearizable w.r.t. a
sequential functionality ``F`` if there is a total order of its operations
that (a) respects real-time precedence and (b) replays through ``F`` from
the initial state producing exactly the recorded results.

Intended for test-sized histories (tens of operations, modest concurrency);
the search is exponential in the worst case but the memoisation keeps
typical protocol tests fast.
"""

from __future__ import annotations

from typing import Any

from repro import serde
from repro.consistency.history import OperationRecord
from repro.kvstore.functionality import Functionality


def _state_fingerprint(state: Any) -> bytes:
    return serde.encode(state)


def is_linearizable(
    records: list[OperationRecord],
    functionality: Functionality,
    *,
    max_nodes: int = 2_000_000,
) -> bool:
    """Decide linearizability of a set of complete operations.

    ``max_nodes`` bounds the search; exceeding it raises ``RuntimeError``
    rather than returning a wrong answer.
    """
    n = len(records)
    if n == 0:
        return True
    if n > 64:
        raise RuntimeError("history too large for the exhaustive checker")

    # preds[i] = bitmask of operations that must precede i (real-time order)
    preds = [0] * n
    for i, a in enumerate(records):
        for j, b in enumerate(records):
            if i != j and b.precedes(a):
                preds[i] |= 1 << j

    full_mask = (1 << n) - 1
    seen: set[tuple[int, bytes]] = set()
    nodes = 0

    def search(done_mask: int, state: Any) -> bool:
        nonlocal nodes
        if done_mask == full_mask:
            return True
        key = (done_mask, _state_fingerprint(state))
        if key in seen:
            return False
        seen.add(key)
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search exceeded node budget")
        for i in range(n):
            bit = 1 << i
            if done_mask & bit:
                continue
            if preds[i] & ~done_mask:
                continue  # some predecessor not yet linearized
            record = records[i]
            result, next_state = functionality.apply(state, record.operation)
            if result == record.result:
                if search(done_mask | bit, next_state):
                    return True
        return False

    return search(0, functionality.initial_state())


def linearization_order(
    records: list[OperationRecord], functionality: Functionality
) -> list[OperationRecord] | None:
    """Return one witness linearization, or ``None`` if none exists."""
    n = len(records)
    if n == 0:
        return []
    preds = [0] * n
    for i, a in enumerate(records):
        for j, b in enumerate(records):
            if i != j and b.precedes(a):
                preds[i] |= 1 << j
    full_mask = (1 << n) - 1
    seen: set[tuple[int, bytes]] = set()

    def search(done_mask: int, state: Any, order: list[int]) -> list[int] | None:
        if done_mask == full_mask:
            return order
        key = (done_mask, _state_fingerprint(state))
        if key in seen:
            return None
        seen.add(key)
        for i in range(n):
            bit = 1 << i
            if done_mask & bit or (preds[i] & ~done_mask):
                continue
            record = records[i]
            result, next_state = functionality.apply(state, record.operation)
            if result == record.result:
                found = search(done_mask | bit, next_state, order + [i])
                if found is not None:
                    return found
        return None

    witness = search(0, functionality.initial_state(), [])
    if witness is None:
        return None
    return [records[i] for i in witness]
