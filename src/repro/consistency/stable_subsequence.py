"""The stability theorem (Sec. 3.2.2): stable subsequences are linearizable.

"Note that any subsequence of a history that contains only operations that
are stable among a majority is linearizable."  Formally the claim is that
all majority-stable operations lie on **one** common sequential history:
any two of them were observed by overlapping majorities, so no two stable
operations can come from diverged forks, and their results are those of a
single legal execution.

This module operationalises the claim for protocol executions:

1. collect the operations whose owners know them to be majority-stable
   (:func:`stable_subsequence`);
2. verify no two stable operations claim the same sequence number
   (forked duplicates among stable operations would break the theorem);
3. reconstruct the *certified branch*: for every sequence number up to the
   highest stable one, pick the recorded operation lying on the branch the
   stable operations certify;
4. replay that branch through the functionality and check every stable
   operation's result.

Step 3 is what distinguishes this from naive standalone replay: a stable
PUT may return the value written by an earlier, not-yet-stable operation —
the theorem places the stable operations inside a common history, it does
not excise them from it.
"""

from __future__ import annotations

from typing import Any

from repro.consistency.history import OperationRecord
from repro.errors import ForkDetected, SecurityViolation
from repro.kvstore.functionality import Functionality


def _is_nop(record: OperationRecord) -> bool:
    from repro.core.context import NOP_OPERATION

    operation = record.operation
    return (
        isinstance(operation, (list, tuple))
        and len(operation) == 1
        and operation[0] == NOP_OPERATION[0]
    )


def stable_subsequence(
    records: list[OperationRecord],
    stable_bounds: dict[int, int],
) -> list[OperationRecord]:
    """Operations whose owners know them to be majority-stable.

    ``stable_bounds`` maps client id -> the highest majority-stable
    sequence number that client has observed (``client.stable_sequence``).
    An operation qualifies when its own sequence number lies at or below
    its owner's bound.
    """
    chosen = []
    for record in records:
        if record.sequence is None:
            continue
        bound = stable_bounds.get(record.client_id, 0)
        if record.sequence <= bound:
            chosen.append(record)
    return sorted(chosen, key=lambda record: record.sequence)


def certified_branch(
    records: list[OperationRecord],
    stable: list[OperationRecord],
) -> list[OperationRecord]:
    """The single history prefix the stable operations certify.

    For every sequence number up to the highest stable one, select the
    recorded operation at that position: the stable one when present,
    otherwise the unique candidate; ambiguity (forked duplicates, neither
    stable) below a stable operation is a violation of the theorem's
    premises and raises :class:`~repro.errors.SecurityViolation`.
    """
    if not stable:
        return []
    stable_by_sequence: dict[int, OperationRecord] = {}
    for record in stable:
        existing = stable_by_sequence.get(record.sequence)
        if existing is not None and (
            existing.client_id != record.client_id
            or existing.operation != record.operation
        ):
            raise ForkDetected(
                f"two majority-stable operations share sequence number "
                f"{record.sequence}: stability certified diverged forks"
            )
        stable_by_sequence[record.sequence] = record
    highest = max(stable_by_sequence)
    by_sequence: dict[int, list[OperationRecord]] = {}
    for record in records:
        if record.sequence is not None and record.sequence <= highest:
            by_sequence.setdefault(record.sequence, []).append(record)
    branch = []
    for sequence in range(1, highest + 1):
        candidates = by_sequence.get(sequence, [])
        chosen = stable_by_sequence.get(sequence)
        if chosen is None:
            distinct = {
                (record.client_id, _key(record.operation)) for record in candidates
            }
            if not candidates:
                raise SecurityViolation(
                    f"history has no record for sequence {sequence} below a "
                    "stable operation"
                )
            if len(distinct) > 1:
                raise SecurityViolation(
                    f"ambiguous (forked) records at sequence {sequence} below "
                    "a stable operation"
                )
            chosen = candidates[0]
        branch.append(chosen)
    return branch


def _key(operation: Any) -> Any:
    return tuple(operation) if isinstance(operation, list) else operation


def stable_bound_frontier(stable_bounds: dict[int, int], quorum: int) -> int:
    """The group-wide majority-stable frontier over per-client bounds.

    ``stable_bounds`` maps client id -> that client's highest known
    majority-stable sequence (``client.stable_sequence``); the frontier
    is the highest sequence at least ``quorum`` clients place at or below
    their bound — i.e. Def. 2's ``majority-stable(V)`` computed from the
    owners' own accounting rather than the server's V table.  This is the
    same arithmetic the streaming verifier runs per batch boundary
    (:meth:`repro.consistency.streaming.StreamingChecker.advance`), via
    the shared :func:`repro.core.stability.stable_frontier` kernel."""
    from repro.core.stability import stable_frontier

    return stable_frontier(list(stable_bounds.values()), quorum)


def check_stable_subsequence_linearizable(
    records: list[OperationRecord],
    stable_bounds: dict[int, int],
    functionality: Functionality,
) -> list[OperationRecord]:
    """Verify the Sec. 3.2.2 theorem on one execution.

    Returns the stable subsequence that was certified.  Raises a
    :class:`~repro.errors.SecurityViolation` subclass (or AssertionError
    for result mismatches) when the theorem fails — which would falsify
    either the protocol's stability accounting or the claim itself.
    """
    stable = stable_subsequence(records, stable_bounds)
    branch = certified_branch(records, stable)
    stable_ids = {(record.client_id, record.sequence) for record in stable}
    state = functionality.initial_state()
    for record in branch:
        if _is_nop(record):
            continue
        result, state = functionality.apply(state, record.operation)
        if (record.client_id, record.sequence) in stable_ids:
            if result != record.result:
                raise AssertionError(
                    f"majority-stable operation seq={record.sequence} returned "
                    f"{record.result!r} but the certified branch yields {result!r}"
                )
    return stable
