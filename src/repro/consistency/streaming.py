"""Streaming (incremental) fork-linearizability verification.

The post-mortem checker (:mod:`repro.consistency.fork_linearizability`)
consumes whole audit logs after the run.  :class:`StreamingChecker` is
the same Sec. 3.2.1 verification restructured as an online fold: audit
records are fed per batch boundary as the run produces them, client
``(t, h)`` points and completed operations stream in alongside, and the
checker maintains just enough state to

- verify the hash chain incrementally (gap / chain-mismatch, with the
  exact post-mortem messages);
- replay each log through ``F`` as it grows, recording result
  mismatches (view-correctness, check 1 of the post-mortem);
- track real-time precedence violations per log (check 3) using only
  the retained suffix plus an O(1) summary of the discarded prefix;
- compare logs positionally for divergence and later agreement — the
  no-join property (check 4).  Because an operation's key embeds its
  sequence number and every verified log numbers records 1..n, a shared
  operation between two logs always sits at the *same* position, so the
  post-mortem's suffix-set intersection reduces to per-position
  equality;
- fold transaction lifecycle traces for the cross-shard checker.

**Stable-frontier garbage collection.**  After :meth:`advance`, records
at or below the *floor* are discarded and summarized: per log a
``(base, base_chain, base_state)`` checkpoint (the chain value and the
replayed ``F`` state after the discarded prefix) plus the discarded
prefix's maximum invocation timestamp for the real-time check.  The
floor is the largest sequence number that can no longer influence any
future check::

    floor = min(stable_frontier(acks, n),        # every client observed it
                matched(a, b) for live log pairs)  # no divergence below it

``stable_frontier(acks, n)`` is the quorum-``n`` (all-clients) variant
of ``majority-stable(V)`` from :mod:`repro.core.stability`: the slowest
client's observed point.  Anything at or below it has been endorsed by
*every* client's chain, so no point, completion or divergence can land
there any more; the majority quorum frontier (Definition 2) is exported
as a metric but is *not* a safe GC bound — a minority client's view may
still extend below it.  Retained evidence is therefore O(unstable
suffix), not O(history).

:meth:`result` evaluates the checks in exactly the post-mortem order
(chain errors per log, unlocated points, replay, own-operation
completeness, real time, pairwise no-join) and reproduces its exception
types and messages, so a run verified online and the same run verified
post-mortem yield the same verdict — ``parity_report`` in
:mod:`repro.sharding.observer` asserts this in the test suite.

Known parity corners (adversarial evidence *below* the GC floor): a
fork whose prefix diverges below every client's observed point cannot
be positionally compared against the discarded region (its chain
checkpoint mismatch is still reported as a divergence at the
checkpoint), and a history record substituting different operation
bytes for an already-discarded audit record is no longer replayed.
Both require the server to rewrite history below a point every client
has endorsed, which the chain checks catch through the clients'
machines first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro import serde
from repro.consistency.fork_linearizability import _UNTIMED_RESPONSE
from repro.consistency.history import OperationRecord
from repro.consistency.transactions import TxnTrace, trace_txn_operation
from repro.core.context import AuditRecord, NOP_OPERATION
from repro.core.stability import majority_quorum, stable_frontier
from repro.crypto.hashing import GENESIS_HASH, chain_extend
from repro.errors import ForkDetected, LCMError, SecurityViolation


def _canonical_key(client_id: int, operation: Any, sequence: int | None) -> bytes:
    """The post-mortem ``_record_key`` over raw fields (serde encodes
    tuples and lists identically, so view/audit operation shapes agree)."""
    if isinstance(operation, tuple):
        operation = list(operation)
    return serde.encode([client_id, operation, sequence])


def _is_nop_operation(operation: Any) -> bool:
    return (
        isinstance(operation, (list, tuple))
        and len(operation) == 1
        and operation[0] == NOP_OPERATION[0]
    )


def _copy_traces(traces: dict[str, TxnTrace]) -> dict[str, TxnTrace]:
    return {
        txn_id: TxnTrace(
            prepared=trace.prepared,
            decisions=set(trace.decisions),
            applied=set(trace.applied),
        )
        for txn_id, trace in traces.items()
    }


class _Rec:
    """One retained audit record with its view substitutions."""

    __slots__ = (
        "sequence", "client_id", "chain", "operation", "operation_view",
        "result_audit", "result_shown", "expected", "key", "is_nop",
        "completed", "invoked_at", "responded_at",
    )

    def __init__(self, sequence: int, client_id: int, chain: bytes,
                 operation: Any, result: Any) -> None:
        self.sequence = sequence
        self.client_id = client_id
        self.chain = chain
        #: decoded audit operation (state evolution until substitution)
        self.operation = operation
        #: what the view shows: history operation once completed
        self.operation_view = operation
        #: decoded audit result — the transaction-trace fold always uses
        #: the audited bytes, like the post-mortem extractor
        self.result_audit = result
        self.result_shown = result
        self.expected: Any = None
        self.key = _canonical_key(client_id, operation, sequence)
        self.is_nop = _is_nop_operation(operation)
        self.completed = False
        # untimed until a history completion supplies real timestamps —
        # concurrent with everything, exactly like a synthesized record
        self.invoked_at = 0
        self.responded_at = _UNTIMED_RESPONSE


class _RtIndex:
    """Positional index over completed records' timestamps (check 3).

    A flat segment tree keyed by log position: each set position carries
    ``(invoked_at, responded_at)``, internal nodes aggregate the max
    invocation and min response of their range.  The two real-time
    queries the incremental check needs — "latest invocation strictly
    before position p" and "leftmost position after p that responded
    before a threshold" — drop from O(retained records) scans per
    completion to O(log n).  Positions garbage-collected from the log
    keep their stale leaves: they sit at or below the GC checkpoint,
    whose ``gc_max_inv`` summary already dominates their invocations,
    and every query that looks *rightward* starts above the checkpoint.
    """

    __slots__ = ("_cap", "_inv", "_resp")

    _NO_RESP = float("inf")

    def __init__(self) -> None:
        self._cap = 64
        self._inv = [0.0] * (2 * self._cap)
        self._resp = [self._NO_RESP] * (2 * self._cap)

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        old_inv, old_resp, old_cap = self._inv, self._resp, self._cap
        self._cap = cap
        self._inv = [0.0] * (2 * cap)
        self._resp = [self._NO_RESP] * (2 * cap)
        self._inv[cap:cap + old_cap] = old_inv[old_cap:2 * old_cap]
        self._resp[cap:cap + old_cap] = old_resp[old_cap:2 * old_cap]
        for node in range(cap - 1, 0, -1):
            self._inv[node] = max(self._inv[2 * node], self._inv[2 * node + 1])
            self._resp[node] = min(
                self._resp[2 * node], self._resp[2 * node + 1]
            )

    def set(self, position: int, invoked_at: float, responded_at: float) -> None:
        if position > self._cap:
            self._grow(position)
        node = self._cap + position - 1
        self._inv[node] = invoked_at
        self._resp[node] = responded_at
        node //= 2
        while node:
            self._inv[node] = max(self._inv[2 * node], self._inv[2 * node + 1])
            self._resp[node] = min(
                self._resp[2 * node], self._resp[2 * node + 1]
            )
            node //= 2

    def max_invoked_before(self, position: int) -> float:
        """Max ``invoked_at`` over positions ``[1, position - 1]``."""
        hi = min(position - 1, self._cap)
        if hi <= 0:
            return 0.0
        lo_node = self._cap
        hi_node = self._cap + hi - 1
        best = 0.0
        while lo_node <= hi_node:
            if lo_node & 1:
                best = max(best, self._inv[lo_node])
                lo_node += 1
            if not hi_node & 1:
                best = max(best, self._inv[hi_node])
                hi_node -= 1
            lo_node //= 2
            hi_node //= 2
        return best

    def first_responded_before(
        self, position: int, threshold: float
    ) -> int | None:
        """Leftmost position ``> position`` whose ``responded_at`` is
        strictly below ``threshold``, or ``None``."""
        lo = position + 1
        if lo > self._cap:
            return None
        lo_node = self._cap + lo - 1
        hi_node = 2 * self._cap - 1
        left: list[int] = []
        right: list[int] = []
        while lo_node <= hi_node:
            if lo_node & 1:
                left.append(lo_node)
                lo_node += 1
            if not hi_node & 1:
                right.append(hi_node)
                hi_node -= 1
            lo_node //= 2
            hi_node //= 2
        for node in left + right[::-1]:
            if self._resp[node] < threshold:
                while node < self._cap:
                    node *= 2
                    if not self._resp[node] < threshold:
                        node += 1
                return node - self._cap + 1
        return None


class _LogState:
    """Incremental view of one enclave instance's audit log."""

    __slots__ = (
        "log_id", "length", "chain_head", "chain_error", "dead",
        "base", "base_chain", "base_state", "base_traces", "gc_max_inv",
        "records", "state", "mismatches", "rt_first", "traces",
        "rt_index", "open_txns",
    )

    def __init__(self, log_id: int, initial_state: Any) -> None:
        self.log_id = log_id
        self.length = 0
        self.chain_head = GENESIS_HASH
        self.chain_error: str | None = None
        self.dead = False          # stop consuming past a chain error
        self.base = 0              # records 1..base discarded
        self.base_chain = GENESIS_HASH
        self.base_state = initial_state
        self.base_traces: dict[str, TxnTrace] = {}
        self.gc_max_inv = 0        # max invoked_at over the discarded prefix
        self.records: dict[int, _Rec] = {}
        self.state = initial_state  # F state after records 1..length
        #: seq -> (operation_view, shown, expected); survives GC so the
        #: exact post-mortem message can still be produced
        self.mismatches: dict[int, tuple[Any, Any, Any]] = {}
        self.rt_first: int | None = None  # first position whose prefix violates
        self.traces: dict[str, TxnTrace] = {}
        self.rt_index = _RtIndex()
        #: txn ids currently prepared-but-undecided *in this log* — the
        #: only candidates the withheld-decision scan must revisit
        self.open_txns: set[str] = set()


class _Pair:
    """Positional comparison state for one pair of logs."""

    __slots__ = ("a", "b", "matched", "agreed", "first_divergence",
                 "join_emitted", "frontier_fork_emitted")

    def __init__(self, a: int, b: int, matched: int = 0) -> None:
        self.a = a
        self.b = b
        #: longest common prefix (by record key) of the two full logs
        self.matched = matched
        #: positions > matched where both logs carry the same key (joins)
        self.agreed: set[int] = set()
        self.first_divergence: int | None = None
        self.join_emitted = False
        self.frontier_fork_emitted = False


@dataclass
class StreamingGenerationVerdict:
    """Online counterpart of the router's ``GenerationVerdict``."""

    generation: int
    violation: LCMError | None = None
    fork_points: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


class StreamingChecker:
    """Incrementally verify one LCM group (one shard generation).

    Feed order per harvest: :meth:`feed_records` (per log), then
    :meth:`observe_completion`, then :meth:`observe_point`, then
    :meth:`advance`.  :meth:`result` may be called at any time and is
    pure — it evaluates the retained state without consuming it.
    """

    def __init__(
        self,
        *,
        functionality: Any,
        client_ids: list[int],
        generation: int = 0,
        on_event: Callable[[str, dict], None] | None = None,
    ) -> None:
        self._functionality = functionality
        self._client_ids = list(client_ids)
        self.generation = generation
        self._on_event = on_event
        self._logs: list[_LogState] = []
        self._pairs: dict[tuple[int, int], _Pair] = {}
        #: latest observed (sequence, chain) per client
        self._points: dict[int, tuple[int, bytes]] = {
            client_id: (0, GENESIS_HASH) for client_id in self._client_ids
        }
        #: (client_id, sequence) -> OperationRecord, pruned below the floor
        self._completions: dict[tuple[int, int], OperationRecord] = {}
        #: first completion per client that carried no sequence number —
        #: such a record can never appear in any view (check 2)
        self._none_seq: dict[int, OperationRecord] = {}
        self._floor = 0
        self.frontier = 0

    # ------------------------------------------------------------- events

    def _emit(self, name: str, **fields: Any) -> None:
        if self._on_event is not None:
            self._on_event(name, fields)

    # ------------------------------------------------------ log registration

    def register_log(self) -> int:
        log = _LogState(len(self._logs), self._functionality.initial_state())
        self._logs.append(log)
        for other in self._logs[:-1]:
            key = (other.log_id, log.log_id)
            self._pairs[key] = _Pair(*key)
        return log.log_id

    def register_fork(self, source_log_id: int, prefix_records: list[AuditRecord]) -> int:
        """Register a forked instance seeded with the primary's exported
        prefix.  When the prefix reaches the source's GC checkpoint with
        the same chain value, the discarded region is chain-certified
        identical: the fork inherits the source's checkpoint (replayed
        state, prefix traces, real-time summary) and only the retained
        suffix is re-fed.  A prefix contradicting the checkpoint is a
        divergence below the floor — recorded at the checkpoint position."""
        source = self._logs[source_log_id]
        log_id = self.register_log()
        log = self._logs[log_id]
        start = 0
        if source.base > 0 and len(prefix_records) >= source.base:
            checkpoint = prefix_records[source.base - 1]
            if (
                checkpoint.sequence == source.base
                and checkpoint.chain == source.base_chain
            ):
                log.base = source.base
                log.base_chain = source.base_chain
                log.base_state = source.base_state
                log.state = source.base_state
                log.base_traces = _copy_traces(source.base_traces)
                log.traces = _copy_traces(source.base_traces)
                log.open_txns = {
                    txn_id
                    for txn_id, trace in log.traces.items()
                    if trace.prepared and not trace.decisions
                }
                log.gc_max_inv = source.gc_max_inv
                log.length = source.base
                log.chain_head = source.base_chain
                log.mismatches = {
                    seq: info
                    for seq, info in source.mismatches.items()
                    if seq <= source.base
                }
                if source.rt_first is not None and source.rt_first <= source.base:
                    log.rt_first = source.rt_first
                start = source.base
                pair = self._pair(source_log_id, log_id)
                pair.matched = source.base
            else:
                pair = self._pair(source_log_id, log_id)
                pair.first_divergence = source.base
                self._emit(
                    "fork-divergence",
                    log_a=source_log_id, log_b=log_id, position=source.base,
                )
        # pairs against *other* logs inherit the transitive bound
        for other in self._logs:
            if other.log_id in (source_log_id, log_id):
                continue
            src_pair = self._pair(source_log_id, other.log_id)
            new_pair = self._pair(other.log_id, log_id)
            new_pair.matched = min(src_pair.matched, log.base)
        self.feed_records(log_id, prefix_records[start:])
        return log_id

    def _pair(self, a: int, b: int) -> _Pair:
        return self._pairs[(min(a, b), max(a, b))]

    # ------------------------------------------------------------- feeding

    def feed_records(self, log_id: int, records: list[AuditRecord]) -> None:
        log = self._logs[log_id]
        for record in records:
            if log.dead:
                return
            self._append(log, record)

    def _append(self, log: _LogState, record: AuditRecord) -> None:
        position = log.length + 1
        if record.sequence != position:
            log.chain_error = (
                f"audit log gap: expected sequence {position}, "
                f"got {record.sequence}"
            )
            log.dead = True
            self._emit("chain-violation", log=log.log_id, message=log.chain_error)
            return
        value = chain_extend(
            log.chain_head, record.operation, record.sequence, record.client_id
        )
        if value != record.chain:
            log.chain_error = (
                f"audit log chain mismatch at sequence {record.sequence}"
            )
            log.dead = True
            self._emit("chain-violation", log=log.log_id, message=log.chain_error)
            return
        log.chain_head = value
        log.length = position
        operation = serde.decode(record.operation)
        try:
            shown = serde.decode(record.result)
        except Exception:
            shown = None
        rec = _Rec(position, record.client_id, record.chain, operation, shown)
        log.records[position] = rec
        # transaction lifecycle fold (always from the audit bytes, like
        # the post-mortem extractor)
        touched = trace_txn_operation(log.traces, operation, shown)
        if touched:
            self._update_open_txns(log, touched)
        # replay through F
        self._replay_one(log, rec)
        # history substitution, if the completion already streamed in
        completion = self._completions.get((rec.client_id, position))
        if completion is not None:
            self._substitute(log, rec, completion)
        # positional no-join comparison against every other log
        for other in self._logs:
            if other.log_id == log.log_id or position <= other.base:
                continue
            peer = other.records.get(position)
            if peer is not None:
                self._compare_position(log, other, position)

    def _replay_one(self, log: _LogState, rec: _Rec) -> None:
        if rec.is_nop:
            rec.expected = None
            return
        expected, log.state = self._functionality.apply(
            log.state, rec.operation_view
        )
        rec.expected = expected
        self._refresh_mismatch(log, rec)

    def _refresh_mismatch(self, log: _LogState, rec: _Rec) -> None:
        bad = (not rec.is_nop) and rec.result_shown != rec.expected
        had = rec.sequence in log.mismatches
        if bad:
            log.mismatches[rec.sequence] = (
                rec.operation_view, rec.result_shown, rec.expected
            )
            if not had:
                self._emit(
                    "replay-mismatch", log=log.log_id, sequence=rec.sequence
                )
        elif had:
            del log.mismatches[rec.sequence]

    # ----------------------------------------------------------- completions

    def observe_completion(self, record: OperationRecord) -> None:
        """Fold one completed operation from the recorded history."""
        if record.sequence is None:
            self._none_seq.setdefault(record.client_id, record)
            self._emit("own-op-unsequenced", client=record.client_id)
            return
        if record.sequence > self._floor:
            # last-wins, mirroring the post-mortem lookup dict
            self._completions[(record.client_id, record.sequence)] = record
        for log in self._logs:
            rec = log.records.get(record.sequence)
            if rec is not None and rec.client_id == record.client_id:
                self._substitute(log, rec, record)

    def _substitute(self, log: _LogState, rec: _Rec, record: OperationRecord) -> None:
        same_view = record.operation == rec.operation_view
        rec.completed = True
        rec.operation_view = record.operation
        rec.result_shown = record.result
        rec.invoked_at = record.invoked_at
        rec.responded_at = record.responded_at
        if same_view:
            # the history shows the very operation the view already held
            # (the overwhelmingly common case): its canonical key and
            # nop-ness are unchanged by construction, skip the re-encode
            new_key = rec.key
            new_nop = rec.is_nop
        else:
            new_key = _canonical_key(rec.client_id, record.operation, rec.sequence)
            new_nop = _is_nop_operation(record.operation)
        if new_key != rec.key or new_nop != rec.is_nop:
            # the view's operation differs from the audited bytes: the
            # replayed state downstream of this record changes, and so
            # may the positional comparisons at this position
            rec.key = new_key
            rec.is_nop = new_nop
            self._recompute_replay(log)
            self._repair_pairs(log, rec.sequence)
        else:
            self._refresh_mismatch(log, rec)
        self._observe_timing(log, rec)

    def _recompute_replay(self, log: _LogState) -> None:
        """Re-derive the retained replay from the GC checkpoint."""
        state = log.base_state
        log.mismatches = {
            seq: info for seq, info in log.mismatches.items() if seq <= log.base
        }
        for seq in range(log.base + 1, log.length + 1):
            rec = log.records[seq]
            if rec.is_nop:
                rec.expected = None
                continue
            rec.expected, state = self._functionality.apply(
                state, rec.operation_view
            )
            self._refresh_mismatch(log, rec)
        log.state = state

    def _repair_pairs(self, log: _LogState, position: int) -> None:
        for other in self._logs:
            if other.log_id == log.log_id or position <= other.base:
                continue
            if other.records.get(position) is not None:
                self._compare_position(log, other, position, repair=True)

    def _update_open_txns(self, log: _LogState, touched: list[str]) -> None:
        for txn_id in touched:
            trace = log.traces[txn_id]
            if trace.prepared and not trace.decisions:
                log.open_txns.add(txn_id)
            else:
                log.open_txns.discard(txn_id)

    def _observe_timing(self, log: _LogState, rec: _Rec) -> None:
        """Real-time check 3, incremental: when a record gains timing,
        look for a contradiction via the positional timestamp index plus
        the discarded prefix's invocation-time summary.  The index keeps
        both directions O(log n) per completion instead of a scan over
        the retained suffix."""
        s = rec.sequence
        # as the later element: some earlier operation invoked after we
        # responded (prefix max over discarded + retained timed records)
        max_inv = max(log.gc_max_inv, log.rt_index.max_invoked_before(s))
        if max_inv > 0 and rec.responded_at < max_inv:
            self._note_rt(log, s)
        # as the earlier element: some later retained operation responded
        # before we were invoked
        later = log.rt_index.first_responded_before(s, rec.invoked_at)
        if later is not None:
            self._note_rt(log, later)
        log.rt_index.set(s, rec.invoked_at, rec.responded_at)

    def _note_rt(self, log: _LogState, position: int) -> None:
        if log.rt_first is None or position < log.rt_first:
            log.rt_first = position
            self._emit("rt-violation", log=log.log_id, position=position)

    # -------------------------------------------------------------- points

    def observe_point(self, client_id: int, sequence: int, chain: bytes) -> None:
        self._points[client_id] = (sequence, chain)

    # ------------------------------------------------------------ pairwise

    def _compare_position(
        self, log: _LogState, other: _LogState, position: int, repair: bool = False
    ) -> None:
        pair = self._pair(log.log_id, other.log_id)
        rec_a = self._logs[pair.a].records.get(position)
        rec_b = self._logs[pair.b].records.get(position)
        if rec_a is None or rec_b is None:
            return
        equal = rec_a.key == rec_b.key
        if repair:
            self._rebuild_pair(pair)
            return
        if equal:
            if position == pair.matched + 1 and pair.first_divergence is None:
                pair.matched = position
                self._advance_matched(pair)
            else:
                pair.agreed.add(position)
                if pair.first_divergence is not None and not pair.join_emitted:
                    pair.join_emitted = True
                    self._emit(
                        "fork-join",
                        log_a=pair.a, log_b=pair.b,
                        position=position, divergence=pair.matched,
                    )
        else:
            if pair.first_divergence is None or position < pair.first_divergence:
                if pair.first_divergence is None:
                    self._emit(
                        "fork-divergence",
                        log_a=pair.a, log_b=pair.b, position=position,
                    )
                pair.first_divergence = position

    def _advance_matched(self, pair: _Pair) -> None:
        while (pair.matched + 1) in pair.agreed:
            pair.matched += 1
            pair.agreed.discard(pair.matched)

    def _rebuild_pair(self, pair: _Pair) -> None:
        """Full positional re-derivation over the retained overlap (only
        after a view substitution changed a record's key)."""
        log_a, log_b = self._logs[pair.a], self._logs[pair.b]
        # everything at or below both checkpoints was matched (the GC
        # floor never passes a pair's matched prefix)
        start = max(log_a.base, log_b.base)
        matched = start
        agreed: set[int] = set()
        divergence: int | None = None
        upto = min(log_a.length, log_b.length)
        for position in range(start + 1, upto + 1):
            rec_a = log_a.records.get(position)
            rec_b = log_b.records.get(position)
            if rec_a is None or rec_b is None:
                continue
            if rec_a.key == rec_b.key:
                if position == matched + 1 and divergence is None:
                    matched = position
                else:
                    agreed.add(position)
            elif divergence is None:
                divergence = position
        pair.matched = matched
        pair.agreed = agreed
        pair.first_divergence = divergence

    # ------------------------------------------------------------- advance

    def advance(self) -> None:
        """Recompute the stability frontier, emit frontier-level fork
        events, and garbage-collect evidence below the floor."""
        acks = [self._points[client_id][0] for client_id in self._client_ids]
        if acks:
            self.frontier = stable_frontier(acks, majority_quorum(len(acks)))
            floor = stable_frontier(acks, len(acks))
        else:
            self.frontier = floor = 0
        for pair in self._pairs.values():
            if pair.first_divergence is not None:
                floor = min(floor, pair.matched)
                if (
                    not pair.frontier_fork_emitted
                    and self.frontier > pair.matched
                ):
                    pair.frontier_fork_emitted = True
                    self._emit(
                        "stable-frontier-fork",
                        log_a=pair.a, log_b=pair.b,
                        divergence=pair.first_divergence,
                        frontier=self.frontier,
                    )
            else:
                # an undiverged pair still pins the floor to its compared
                # prefix: a later append could diverge at matched + 1
                floor = min(floor, pair.matched)
        if floor > self._floor:
            self._floor = floor
            self._collect()

    def _collect(self) -> None:
        floor = self._floor
        for log in self._logs:
            target = min(floor, log.length)
            while log.base < target:
                seq = log.base + 1
                rec = log.records.pop(seq)
                log.base = seq
                log.base_chain = rec.chain
                if not rec.is_nop:
                    _, log.base_state = self._functionality.apply(
                        log.base_state, rec.operation_view
                    )
                if rec.completed:
                    log.gc_max_inv = max(log.gc_max_inv, rec.invoked_at)
                trace_txn_operation(log.base_traces, rec.operation, rec.result_audit)
        for key in [k for k in self._completions if k[1] <= floor]:
            del self._completions[key]

    # ------------------------------------------------------------- queries

    @property
    def floor(self) -> int:
        return self._floor

    @property
    def retained_records(self) -> int:
        return sum(len(log.records) for log in self._logs)

    @property
    def log_count(self) -> int:
        return len(self._logs)

    def log_length(self, log_id: int) -> int:
        return self._logs[log_id].length

    def txn_traces(self) -> list[dict[str, TxnTrace]]:
        """Per-log transaction traces (registration order), equal to the
        post-mortem extraction over the full logs."""
        return [log.traces for log in self._logs]

    def open_txn_traces(self) -> list[tuple[dict[str, TxnTrace], set[str]]]:
        """Per-log ``(traces, open txn ids)`` pairs.  The open set names
        the prepared-but-undecided transactions of each log — the only
        traces the online withheld-decision scan can newly flag — so a
        boundary with no open transactions costs nothing."""
        return [(log.traces, log.open_txns) for log in self._logs]

    def unlocated_clients(self) -> list[int]:
        """Clients whose current point lies on no log (online detection
        of an invented history)."""
        return [
            client_id
            for client_id in self._client_ids
            if self._locate(client_id) is None
        ]

    def has_violation_evidence(self) -> bool:
        """True when the retained state already implies a violation —
        the online analogue of "the verdict will not be clean"."""
        if any(log.chain_error for log in self._logs):
            return True
        if self._none_seq:
            return True
        if self.unlocated_clients():
            return True
        for client_id in self._client_ids:
            located = self._locate(client_id)
            if located is None:
                return True
            log, upto = located
            if any(seq <= upto for seq in log.mismatches):
                return True
            if log.rt_first is not None and log.rt_first <= upto:
                return True
        return False

    # -------------------------------------------------------------- verdict

    def _locate(self, client_id: int) -> tuple[_LogState, int] | None:
        """First log (registration order) the client's point lies on —
        exactly ``prefix_for`` tried in the post-mortem log order."""
        sequence, chain = self._points[client_id]
        if not self._logs:
            return None
        if sequence == 0:
            return self._logs[0], 0
        for log in self._logs:
            if sequence > log.length or sequence < log.base:
                continue
            if sequence == log.base:
                if log.base_chain == chain:
                    return log, sequence
                continue
            rec = log.records.get(sequence)
            if rec is not None and rec.chain == chain:
                return log, sequence
        return None

    def result(self) -> StreamingGenerationVerdict:
        """Evaluate the retained evidence, mirroring the post-mortem
        checker's order, exception types and messages exactly."""
        # 0. chain consistency, in log order (views_from_audit_logs
        # verifies every log before building any view)
        for log in self._logs:
            if log.chain_error is not None:
                return StreamingGenerationVerdict(
                    self.generation, violation=SecurityViolation(log.chain_error)
                )
        # locate every client's view (first unlocatable point wins)
        assignments: dict[int, tuple[_LogState, int]] = {}
        for client_id in self._client_ids:
            located = self._locate(client_id)
            if located is None:
                return StreamingGenerationVerdict(
                    self.generation,
                    violation=SecurityViolation(
                        f"client {client_id} observed a chain value on no "
                        "enclave log"
                    ),
                )
            assignments[client_id] = located
        # 1. per-view sequential correctness against F
        for client_id in self._client_ids:
            log, upto = assignments[client_id]
            bad = [seq for seq in log.mismatches if seq <= upto]
            if bad:
                operation, shown, expected = log.mismatches[min(bad)]
                return StreamingGenerationVerdict(
                    self.generation,
                    violation=SecurityViolation(
                        f"view of client {client_id} is not a correct "
                        f"execution: operation {operation!r} returned "
                        f"{shown!r}, expected {expected!r}"
                    ),
                )
        # 2. completeness: an unsequenced completion appears in no view
        for client_id in self._client_ids:
            if client_id in self._none_seq:
                return StreamingGenerationVerdict(
                    self.generation,
                    violation=SecurityViolation(
                        f"view of client {client_id} misses its own "
                        "operation seq=None"
                    ),
                )
        # 3. real-time order within each view
        for client_id in self._client_ids:
            log, upto = assignments[client_id]
            if log.rt_first is not None and log.rt_first <= upto:
                return StreamingGenerationVerdict(
                    self.generation,
                    violation=SecurityViolation(
                        f"view of client {client_id} contradicts real-time "
                        "order"
                    ),
                )
        # 4. no-join across views, in sorted client-pair order
        ordered = sorted(self._client_ids)
        for index, a_id in enumerate(ordered):
            for b_id in ordered[index + 1:]:
                log_a, upto_a = assignments[a_id]
                log_b, upto_b = assignments[b_id]
                if log_a.log_id == log_b.log_id:
                    continue
                pair = self._pair(log_a.log_id, log_b.log_id)
                shorter = min(upto_a, upto_b)
                common = min(pair.matched, shorter)
                if common >= shorter:
                    continue
                joined = sum(
                    1 for position in pair.agreed if common < position <= shorter
                )
                if joined:
                    return StreamingGenerationVerdict(
                        self.generation,
                        violation=ForkDetected(
                            f"views of clients {a_id} and {b_id} diverge at "
                            f"position {common} but later share {joined} "
                            "operation(s): forks were joined"
                        ),
                    )
        # success: fork points — 0-based depths where at least two views
        # carry distinct operations
        depths: set[int] = set()
        for index, a_id in enumerate(ordered):
            for b_id in ordered[index + 1:]:
                log_a, upto_a = assignments[a_id]
                log_b, upto_b = assignments[b_id]
                if log_a.log_id == log_b.log_id:
                    continue
                pair = self._pair(log_a.log_id, log_b.log_id)
                shorter = min(upto_a, upto_b)
                for position in range(pair.matched + 1, shorter + 1):
                    if position not in pair.agreed:
                        depths.add(position - 1)
        return StreamingGenerationVerdict(
            self.generation, fork_points=sorted(depths)
        )
