"""Cross-shard transaction atomicity checking.

The per-shard checker (:mod:`repro.consistency.fork_linearizability`)
certifies each LCM group's history independently; it cannot see that a
transaction spanning two groups committed on one and vanished on the
other, because each half is a perfectly well-formed operation in its own
chain.  This module adds the missing cross-shard phase: it extracts the
transaction lifecycle records (prepare / commit / abort, see
:mod:`repro.kvstore.functionality`) from every audit log a global
observer holds — live generations, their forked instances, and retired
generations — and verifies, against the coordinator's decision log:

1. **no divergent applied decisions** — no transaction has a commit
   *applied* in one history and an abort *applied* in another (any
   shard, any generation, any fork instance);
2. **coordinator consistency** — every applied decision matches what the
   coordinator decided, and no history carries a decision for a
   transaction the coordinator never ran (decisions cannot be forged —
   they are kC-sealed client operations — so a mismatch means the
   evidence was tampered with or a client went rogue);
3. **no withheld decisions** — for every transaction whose decision
   fully completed at the coordinator, every *live* history of a
   participant shard that contains the prepare must also contain the
   decision.  This is the fork detector: a forked enclave instance
   serving some clients a history where the transaction is still
   prepared — while the primary applied the commit — is exactly "the
   shard answered commit to one client and abort (by omission) to
   another".  Histories of *crashed* generations are exempt: their
   decision was physically lost with the hardware, and the coordinator's
   replay lands on the next generation (where rule 2 still checks it).

Violations are reported as :class:`~repro.errors.TxnAtomicityViolation`
values (never raised from here — the router's merged verdict collects
them per run, and ``check_fork_linearizable`` raises the first one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import serde
from repro.core.context import AuditRecord
from repro.errors import TxnAtomicityViolation
from repro.kvstore.functionality import (
    TXN_ABORTED,
    TXN_COMMITTED,
    TXN_PREPARED,
    iter_txn_lifecycle,
)


@dataclass
class CoordinatorDecision:
    """One entry of the coordinator's decision log."""

    txn_id: str
    decision: str                 # "C" | "A"
    participants: tuple[int, ...]  # shard ids the prepare went to
    complete: bool                # every decision round-tripped


@dataclass
class TxnEvidence:
    """One audit log a global observer holds, tagged with provenance.

    ``live`` is True for the current generation's histories (the primary
    and any forked instances) — the ones rule 3 applies to; retired
    generations (crashes, removals) pass ``live=False``.
    """

    shard_id: int
    log: list[AuditRecord]
    live: bool


@dataclass
class TxnTrace:
    """What one log says about one transaction."""

    #: a prepare that *voted PREPARED* (and so holds locks awaiting a
    #: decision) — a conflict-rejected prepare locks nothing and is
    #: legitimately never followed by a decision
    prepared: bool = False
    #: decisions present in the log (any result — a no-op replay still
    #: proves the decision was shown to this history)
    decisions: set[str] = field(default_factory=set)
    #: decisions that actually mutated state (result marker COMMITTED /
    #: ABORTED rather than ALREADY / UNKNOWN)
    applied: set[str] = field(default_factory=set)


#: backwards-compatible alias (the class predates the streaming verifier,
#: which needed it public to accumulate traces incrementally)
_TxnTrace = TxnTrace


def trace_txn_operation(
    traces: dict[str, TxnTrace], operation: object, result: object
) -> list[str]:
    """Fold one decoded (operation, result) pair into per-txn traces.

    The shared per-record core of transaction-lifecycle extraction: the
    post-mortem checker calls it over whole logs, the streaming verifier
    calls it once per audit record as evidence is harvested.  A grouped
    operation folds exactly like the equivalent sequence of single ones
    (both walk :func:`~repro.kvstore.functionality.iter_txn_lifecycle`),
    so grouped and per-txn evidence reach identical traces — the parity
    the verdict relies on.  Returns the transaction ids the record
    touched (empty for non-transaction records).
    """
    touched: list[str] = []
    for kind, txn_id, _payload, entry_result in iter_txn_lifecycle(
        operation, result
    ):
        touched.append(txn_id)
        trace = traces.get(txn_id)
        if trace is None:
            trace = traces[txn_id] = TxnTrace()
        if kind == "prepare" or kind == "resolved":
            # a resolved waiter's vote is its (deferred) prepare outcome
            if (
                isinstance(entry_result, list)
                and entry_result
                and entry_result[0] == TXN_PREPARED
            ):
                trace.prepared = True
            continue
        decision = "C" if kind == "commit" else "A"
        trace.decisions.add(decision)
        if isinstance(entry_result, list) and entry_result:
            if entry_result[0] == TXN_COMMITTED:
                trace.applied.add("C")
            elif entry_result[0] == TXN_ABORTED:
                trace.applied.add("A")
    return touched


def _extract_traces(log: list[AuditRecord]) -> dict[str, TxnTrace]:
    traces: dict[str, TxnTrace] = {}
    for record in log:
        try:
            operation = serde.decode(record.operation)
        except Exception:
            continue  # chain verification elsewhere flags malformed logs
        if next(iter_txn_lifecycle(operation, None), None) is None:
            continue
        try:
            result = serde.decode(record.result)
        except Exception:
            result = None
        trace_txn_operation(traces, operation, result)
    return traces


def check_txn_traces(
    per_log: list[tuple[int, bool, dict[str, TxnTrace]]],
    decisions: dict[str, CoordinatorDecision],
) -> list[TxnAtomicityViolation]:
    """The three cross-shard checks over pre-extracted traces.

    ``per_log`` holds ``(shard_id, live, traces)`` triples in evidence
    order.  Shared by :func:`check_transaction_atomicity` (which extracts
    traces from whole logs) and the streaming verifier (which accumulated
    them record by record) — one rule implementation, two feeding modes.
    """
    violations: list[TxnAtomicityViolation] = []

    # 1 + 2: applied decisions agree globally and with the coordinator
    applied_by_txn: dict[str, dict[str, list[int]]] = {}
    for shard_id, _live, traces in per_log:
        for txn_id, trace in traces.items():
            for decision in trace.applied:
                applied_by_txn.setdefault(txn_id, {}).setdefault(
                    decision, []
                ).append(shard_id)
            coordinated = decisions.get(txn_id)
            if trace.decisions and coordinated is None:
                violations.append(
                    TxnAtomicityViolation(
                        f"shard {shard_id} history carries a decision "
                        f"for transaction {txn_id!r} the coordinator never "
                        "ran"
                    )
                )
    for txn_id, applied in applied_by_txn.items():
        if len(applied) > 1:
            violations.append(
                TxnAtomicityViolation(
                    f"transaction {txn_id!r} has a commit applied on shard(s) "
                    f"{sorted(applied.get('C', []))} and an abort applied on "
                    f"shard(s) {sorted(applied.get('A', []))}"
                )
            )
            continue
        coordinated = decisions.get(txn_id)
        if coordinated is None:
            continue  # already reported per log above
        (decision,) = applied
        if decision != coordinated.decision:
            violations.append(
                TxnAtomicityViolation(
                    f"transaction {txn_id!r} was "
                    f"{'committed' if decision == 'C' else 'aborted'} on "
                    f"shard(s) {sorted(applied[decision])} but the "
                    "coordinator decided "
                    f"{'commit' if coordinated.decision == 'C' else 'abort'}"
                )
            )

    # 3: no live history may withhold a completed decision from a prepare
    for shard_id, live, traces in per_log:
        if not live:
            continue
        for txn_id, trace in traces.items():
            if withheld_decision(shard_id, txn_id, trace, decisions) is None:
                continue
            coordinated = decisions[txn_id]
            violations.append(
                TxnAtomicityViolation(
                    f"a live history of shard {shard_id} holds the "
                    f"prepare of transaction {txn_id!r} but never saw its "
                    "completed "
                    f"{'commit' if coordinated.decision == 'C' else 'abort'} "
                    "— a forked instance is withholding the decision from "
                    "its clients"
                )
            )
    return violations


def withheld_decision(
    shard_id: int,
    txn_id: str,
    trace: TxnTrace,
    decisions: dict[str, CoordinatorDecision],
) -> str | None:
    """Rule-3 predicate for one (live) trace: the completed decision this
    history is withholding (``"C"``/``"A"``), or ``None`` if the trace is
    unobjectionable.  Shared with the streaming verifier's online
    detection pass."""
    if not trace.prepared or trace.decisions:
        return None
    coordinated = decisions.get(txn_id)
    if coordinated is None or not coordinated.complete:
        return None  # genuinely still in flight (or unknown: rule 2)
    if shard_id not in coordinated.participants:
        return None
    return coordinated.decision


def check_transaction_atomicity(
    evidence: list[TxnEvidence],
    decisions: dict[str, CoordinatorDecision],
) -> list[TxnAtomicityViolation]:
    """Run the three cross-shard checks; returns violations, never raises."""
    per_log = [
        (entry.shard_id, entry.live, _extract_traces(entry.log))
        for entry in evidence
    ]
    return check_txn_traces(per_log, decisions)
