"""Lightweight Collective Memory — the paper's core protocol (Sec. 4).

Public API tour:

- :class:`~repro.core.client.LcmClient` — Alg. 1; ``invoke(op)`` returns an
  :class:`~repro.core.client.LcmResult` with the operation result, its
  sequence number and the latest majority-stable sequence number.
- :class:`~repro.core.context.LcmContext` — Alg. 2; the enclave program
  executed inside a trusted execution context.
- :class:`~repro.core.bootstrap.Admin` — Sec. 4.3; creates the context,
  attests it, provisions keys over a DH channel bound to the quote, and
  builds the client group.
- :func:`~repro.core.migration.migrate` — Sec. 4.6.2; moves a running
  context to a different physical TEE without a trusted party.
- :mod:`~repro.core.membership` — Sec. 4.6.3; dynamic join/leave with key
  rotation.
- :mod:`~repro.core.stability` — Definitions 1 & 2 and ``majority-stable``.
"""

from repro.core.bootstrap import Admin, Deployment
from repro.core.client import LcmClient, LcmResult
from repro.core.context import LcmContext, make_lcm_program_factory
from repro.core.messages import InvokePayload, ReplyPayload
from repro.core.migration import migrate
from repro.core.stability import StabilityTracker, majority_stable, stable_with_quorum

__all__ = [
    "LcmClient",
    "LcmResult",
    "LcmContext",
    "make_lcm_program_factory",
    "Admin",
    "Deployment",
    "migrate",
    "majority_stable",
    "stable_with_quorum",
    "StabilityTracker",
    "InvokePayload",
    "ReplyPayload",
]
