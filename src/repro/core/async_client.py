"""Event-driven LCM client for asynchronous transports.

The paper's client library deliberately exposes "a simple network
interface including methods for sending and receiving protocol messages"
so it can reuse an existing application network stack (Sec. 5.2).
:class:`AsyncLcmClient` is that integration style: instead of a blocking
``send_invoke``, the application supplies a ``send`` function and feeds
incoming REPLY bytes to :meth:`on_reply`; completions are delivered
through callbacks.

Semantics match :class:`~repro.core.client.LcmClient` exactly (it is the
same Alg. 1 state machine): sequential invocation per client, ``(tc, hc)``
context tracking, previous-chain verification, monotone stability.
Operations invoked while one is outstanding are queued, preserving the
paper's sequential-client assumption.

Used by :mod:`repro.harness.simulated_cluster` to run the real protocol
over the discrete-event network with batching at the server — the full
Fig. 3 architecture under virtual time.
"""

from __future__ import annotations

import collections
from typing import Any, Callable

from repro import serde
from repro.crypto.aead import AeadKey
from repro.crypto.hashing import GENESIS_HASH
from repro.errors import InvalidReply
from repro.core.client import LcmResult
from repro.core.client import _decode_result
from repro.core.messages import InvokePayload, unseal_reply
from repro.core.stability import StabilityTracker

CompletionCallback = Callable[[LcmResult], Any]


class AsyncLcmClient:
    """Alg. 1 as an event-driven state machine.

    Parameters
    ----------
    client_id, communication_key:
        As for the blocking client.
    send:
        Called with sealed INVOKE bytes; the application routes them to the
        server however it likes (sockets, DES channels, queues).
    """

    def __init__(
        self,
        client_id: int,
        communication_key: AeadKey,
        send: Callable[[bytes], Any],
    ) -> None:
        self.client_id = client_id
        self._key = communication_key
        self._send = send
        self._last_sequence = 0
        self._last_chain = GENESIS_HASH
        self._stable_sequence = 0
        self._outstanding: tuple[Any, CompletionCallback] | None = None
        self._queue: collections.deque[tuple[Any, CompletionCallback]] = (
            collections.deque()
        )
        self.stability = StabilityTracker()
        self._stability_callbacks: list[tuple[int, Callable[[int], Any]]] = []
        self.completed = 0

    # ------------------------------------------------------------ invoking

    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    @property
    def last_chain(self) -> bytes:
        return self._last_chain

    @property
    def stable_sequence(self) -> int:
        return self._stable_sequence

    @property
    def busy(self) -> bool:
        return self._outstanding is not None

    @property
    def queued(self) -> int:
        """Operations invoked but not yet sent (waiting on the
        outstanding one).  ``busy is False and queued == 0`` means this
        machine is fully drained — the control plane's quiescence
        condition during elastic resharding."""
        return len(self._queue)

    def invoke(self, operation: Any, on_complete: CompletionCallback) -> None:
        """Queue an operation; ``on_complete`` fires when its REPLY lands."""
        self._queue.append((operation, on_complete))
        self._pump()

    def _pump(self) -> None:
        if self._outstanding is not None or not self._queue:
            return
        operation, on_complete = self._queue.popleft()
        self._outstanding = (operation, on_complete)
        payload = InvokePayload(
            client_id=self.client_id,
            last_sequence=self._last_sequence,
            last_chain=self._last_chain,
            operation=serde.encode(
                list(operation) if isinstance(operation, tuple) else operation
            ),
        )
        self._send(payload.seal(self._key))

    def retransmit(self) -> bool:
        """Resend the outstanding INVOKE with the retry marker (timeout
        recovery, Sec. 4.6.1).  Returns False if nothing is outstanding."""
        if self._outstanding is None:
            return False
        operation, _ = self._outstanding
        payload = InvokePayload(
            client_id=self.client_id,
            last_sequence=self._last_sequence,
            last_chain=self._last_chain,
            operation=serde.encode(
                list(operation) if isinstance(operation, tuple) else operation
            ),
            retry=True,
        )
        self._send(payload.seal(self._key))
        return True

    # ------------------------------------------------------------- replies

    def on_reply(self, reply_box: bytes) -> LcmResult:
        """Feed an incoming REPLY; verifies, completes, and pumps the queue."""
        if self._outstanding is None:
            raise InvalidReply("REPLY received with no outstanding INVOKE")
        sequence, chain, result_bytes, stable_sequence, previous_chain = (
            unseal_reply(reply_box, self._key)
        )
        if previous_chain != self._last_chain:
            raise InvalidReply(
                "REPLY does not extend this client's context "
                "(previous chain value mismatch)"
            )
        if sequence <= self._last_sequence:
            raise InvalidReply("non-increasing sequence number")
        if stable_sequence < self._stable_sequence:
            raise InvalidReply("majority-stable sequence number decreased")
        operation, on_complete = self._outstanding
        self._outstanding = None
        self._last_sequence = sequence
        self._last_chain = chain
        self._stable_sequence = max(self._stable_sequence, stable_sequence)
        self.stability.observe(sequence, stable_sequence)
        self.completed += 1
        result = LcmResult(
            result=_decode_result(result_bytes),
            sequence=sequence,
            stable_sequence=stable_sequence,
        )
        self._fire_stability_callbacks()
        on_complete(result)
        self._pump()
        return result

    # --------------------------------------------------- stability callbacks

    def when_stable(self, sequence: int, callback: Callable[[int], Any]) -> None:
        """Venus-style notification (Sec. 4.5): fire ``callback(stable_seq)``
        once ``sequence`` is known to be stable among a majority.  Fires
        immediately if it already is."""
        if sequence <= self._stable_sequence:
            callback(self._stable_sequence)
            return
        self._stability_callbacks.append((sequence, callback))

    def _fire_stability_callbacks(self) -> None:
        if not self._stability_callbacks:
            return
        ready = [
            (sequence, callback)
            for sequence, callback in self._stability_callbacks
            if sequence <= self._stable_sequence
        ]
        self._stability_callbacks = [
            entry
            for entry in self._stability_callbacks
            if entry[0] > self._stable_sequence
        ]
        for _, callback in ready:
            callback(self._stable_sequence)

    def is_stable(self, sequence: int) -> bool:
        return sequence <= self._stable_sequence
