"""Bootstrapping (Sec. 4.3): create, attest, provision, distribute keys.

The three phases the paper describes:

1. the admin instructs the server to create a trusted execution context
   running the LCM protocol;
2. the admin performs remote attestation: challenge nonce -> report ->
   quote (via the quoting enclave) -> verification against the expected
   measurement of the LCM program;
3. the admin generates ``kC`` (communication) and ``kP`` (state) — plus, in
   this implementation, ``kA`` for the admin channel used by membership
   changes — injects them into ``T`` over a DH channel bound to the quote,
   and distributes ``kC`` to the clients over secure out-of-band channels.

:class:`Deployment` is the handle the admin ends up with: it knows the keys
and can mint :class:`~repro.core.client.LcmClient` objects for the group.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro import serde
from repro.crypto.aead import AeadKey, auth_encrypt
from repro.crypto.attestation import QuoteVerifier
from repro.crypto.dh import DhKeyPair, PUBLIC_KEY_BYTES, public_from_bytes
from repro.crypto.keys import KeyPurpose, generate_key
from repro.errors import AttestationFailure, ConfigurationError
from repro.core.client import LcmClient, Transport

_PROVISION_AD = b"lcm/provision"
_NONCE_BYTES = 16


@dataclass
class Deployment:
    """A bootstrapped LCM service, from the admin's point of view."""

    communication_key: AeadKey       # kC — distributed to all clients
    state_key: AeadKey               # kP — needed again only for migration ops
    admin_key: AeadKey               # kA — admin channel for membership
    client_ids: list[int]
    quorum_override: int | None = None
    clients: dict[int, LcmClient] = field(default_factory=dict)

    def make_client(self, client_id: int, transport: Transport, **kwargs) -> LcmClient:
        """Hand ``kC`` to a group member and return its protocol instance."""
        if client_id not in self.client_ids:
            raise ConfigurationError(f"client {client_id} is not in the group")
        client = LcmClient(client_id, self.communication_key, transport, **kwargs)
        self.clients[client_id] = client
        return client

    def make_all_clients(self, transport: Transport, **kwargs) -> list[LcmClient]:
        return [
            self.make_client(client_id, transport, **kwargs)
            for client_id in self.client_ids
        ]


class Admin:
    """The special admin client driving bootstrap and membership.

    Parameters
    ----------
    quote_verifier:
        Verification material for the TEE attestation group (obtained
        out-of-band from the attestation infrastructure).
    expected_measurement:
        The measurement of the LCM program the admin expects — prior
        knowledge of ``P`` (Sec. 2.2).
    """

    def __init__(
        self,
        quote_verifier: QuoteVerifier,
        expected_measurement: bytes,
        *,
        rng: Callable[[int], bytes] = os.urandom,
    ) -> None:
        self._verifier = quote_verifier
        self._expected_measurement = expected_measurement
        self._rng = rng

    def bootstrap(
        self,
        host,
        client_ids: list[int],
        *,
        quorum_override: int | None = None,
    ) -> Deployment:
        """Run all three bootstrap phases against a server host.

        ``host`` is a :class:`~repro.server.host.ServerHost` (or the
        malicious variant — bootstrap succeeds either way; what matters is
        that attestation proves the *enclave* runs LCM, Sec. 4.3).
        """
        if len(set(client_ids)) != len(client_ids):
            raise ConfigurationError("duplicate client ids")
        # Phase 1: the context has been created by the server; start it.
        if not host.enclave.running:
            host.start()

        # Phase 2: remote attestation.
        nonce = self._rng(_NONCE_BYTES)
        report = host.enclave.ecall("attest", nonce)
        quote = host.platform.quote(report)
        self._verifier.verify(
            quote, expected_measurement=self._expected_measurement, nonce=nonce
        )
        enclave_public = public_from_bytes(
            quote.user_data[_NONCE_BYTES : _NONCE_BYTES + PUBLIC_KEY_BYTES]
        )

        # Phase 3: generate keys and inject them over the attested channel.
        state_key = generate_key(KeyPurpose.STATE, self._rng)
        communication_key = generate_key(KeyPurpose.COMMUNICATION, self._rng)
        admin_key = AeadKey(self._rng(16), label="kA")
        dh = DhKeyPair.generate(self._rng(32))
        channel = dh.shared_key(enclave_public)
        bundle = serde.encode(
            [
                state_key.material,
                communication_key.material,
                admin_key.material,
                list(client_ids),
                quorum_override or 0,
            ]
        )
        accepted = host.enclave.ecall(
            "provision",
            {
                "admin_public": dh.public_bytes(),
                "bundle": auth_encrypt(bundle, channel, associated_data=_PROVISION_AD),
            },
        )
        if accepted is not True:
            raise AttestationFailure("context rejected provisioning")
        return Deployment(
            communication_key=communication_key,
            state_key=state_key,
            admin_key=admin_key,
            client_ids=list(client_ids),
            quorum_override=quorum_override,
        )
