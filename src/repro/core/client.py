"""The LCM client — Alg. 1 plus the retry extension (Sec. 4.6.1).

A client keeps three pieces of constant-size state:

``tc``  sequence number of its last completed operation;
``ts``  last majority-stable sequence number it has seen;
``hc``  the hash-chain value the trusted context returned for its last
        operation.

``invoke`` sends an encrypted INVOKE containing ``(tc, hc, o, i)``, waits
for the REPLY, verifies that the echoed previous chain value matches its
own ``hc`` (this pairs the REPLY with its INVOKE and rules out responses
computed in a different fork), adopts the new ``(t, h)`` and returns
``(r, t, q)``.

The transport is any object with ``send_invoke(client_id, message) ->
reply_bytes``; it may raise :class:`TransportTimeout` to model a lost
message, in which case :meth:`invoke` retransmits with the retry marker
set — the trusted context then either processes the operation (crash
before store) or re-sends the stored reply (crash after store).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Any, Protocol

from repro import serde
from repro.crypto.aead import AeadKey
from repro.crypto.hashing import GENESIS_HASH
from repro.errors import InvalidReply, LCMError
from repro.core.context import NOP_OPERATION
from repro.core.messages import InvokePayload, unseal_reply
from repro.core.stability import StabilityTracker


class TransportTimeout(LCMError):
    """The transport gave up waiting for a REPLY (crash / lost message)."""


#: Canonical bytes of recently invoked operations.  Only tuples whose
#: elements are all str/bytes are memoized: those types are unambiguous as
#: dict keys, whereas e.g. ``True`` and ``1`` compare equal but encode
#: differently.  A proper LRU (ordered dict, move-to-end on hit, evict the
#: least recent when full) so a zipfian key set larger than the capacity
#: keeps its hot head cached instead of thrashing wholesale.
_OP_ENCODE_CACHE: collections.OrderedDict[tuple, bytes] = collections.OrderedDict()
_OP_ENCODE_CACHE_MAX = 512

#: Decoded forms of recently seen REPLY results, mirroring the operation
#: memo: real workloads read the same hot values over and over, and only
#: immutable scalars are cached (a list/dict result is never shared).
_RESULT_DECODE_CACHE: collections.OrderedDict[bytes, Any] = collections.OrderedDict()
_RESULT_DECODE_CACHE_MAX = 512
_MISS = object()


def _decode_result(data: bytes) -> Any:
    value = _RESULT_DECODE_CACHE.get(data, _MISS)
    if value is not _MISS:
        _RESULT_DECODE_CACHE.move_to_end(data)
        return value
    value = serde.decode(data)
    if type(value) in (str, bytes, int, bool) or value is None:
        if len(_RESULT_DECODE_CACHE) >= _RESULT_DECODE_CACHE_MAX:
            _RESULT_DECODE_CACHE.popitem(last=False)
        _RESULT_DECODE_CACHE[data] = value
    return value


def _encode_operation(operation: Any) -> bytes:
    if type(operation) is tuple and all(
        type(item) in (str, bytes) for item in operation
    ):
        cached = _OP_ENCODE_CACHE.get(operation)
        if cached is None:
            cached = serde.encode(operation)
            if len(_OP_ENCODE_CACHE) >= _OP_ENCODE_CACHE_MAX:
                _OP_ENCODE_CACHE.popitem(last=False)
            _OP_ENCODE_CACHE[operation] = cached
        else:
            _OP_ENCODE_CACHE.move_to_end(operation)
        return cached
    return serde.encode(operation)  # tuples encode as lists


class Transport(Protocol):
    """How a client reaches the server (Fig. 2's message path)."""

    def send_invoke(self, client_id: int, message: bytes) -> bytes: ...


@dataclass(slots=True, unsafe_hash=True)
class LcmResult:
    """The response event of Alg. 1: ``(r, t, q)``.

    Slots (not frozen) keep construction cheap on the hot path; treat
    instances as immutable.  ``unsafe_hash`` preserves the seed's
    hashability (like the seed, hashing raises for unhashable results).
    """

    result: Any
    sequence: int
    stable_sequence: int


@dataclass
class ClientCheckpoint:
    """Snapshot of the client's recoverable state (Sec. 4.2.3 requires the
    client state to be recoverable from stable storage after a crash)."""

    last_sequence: int
    stable_sequence: int
    last_chain: bytes


class LcmClient:
    """Alg. 1.  One instance per client ``Ci``; invocations are sequential."""

    def __init__(
        self,
        client_id: int,
        communication_key: AeadKey,
        transport: Transport,
        *,
        max_retries: int = 3,
    ) -> None:
        self.client_id = client_id
        self._key = communication_key
        self._transport = transport
        self._max_retries = max_retries
        self._last_sequence = 0          # tc
        self._stable_sequence = 0        # ts
        self._last_chain = GENESIS_HASH  # hc
        self.stability = StabilityTracker()
        self.completed_operations: list[tuple[Any, LcmResult]] = []

    # ----------------------------------------------------------- properties

    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    @property
    def stable_sequence(self) -> int:
        return self._stable_sequence

    @property
    def last_chain(self) -> bytes:
        return self._last_chain

    # --------------------------------------------------------------- invoke

    def invoke(self, operation: Any) -> LcmResult:
        """Execute one operation through the trusted context.

        Raises a :class:`~repro.errors.SecurityViolation` subclass when the
        protocol detects server misbehaviour; raises
        :class:`TransportTimeout` if the server stayed unreachable through
        all retry attempts.
        """
        operation_bytes = _encode_operation(operation)
        attempts = 0
        retry = False
        while True:
            payload = InvokePayload(
                client_id=self.client_id,
                last_sequence=self._last_sequence,
                last_chain=self._last_chain,
                operation=operation_bytes,
                retry=retry,
            )
            try:
                reply_box = self._transport.send_invoke(
                    self.client_id, payload.seal(self._key)
                )
            except TransportTimeout:
                attempts += 1
                if attempts > self._max_retries:
                    raise
                retry = True  # mark the retransmission (Sec. 4.6.1)
                continue
            return self._complete(operation, reply_box)

    def _complete(self, operation: Any, reply_box: bytes) -> LcmResult:
        return self._complete_fields(
            operation, unseal_reply(reply_box, self._key)
        )

    def _complete_fields(
        self, operation: Any, fields: tuple[int, bytes, bytes, int, bytes]
    ) -> LcmResult:
        """Alg. 1's response handling over already-opened REPLY fields
        (batch drivers open many replies in one call via
        :func:`~repro.core.messages.unseal_replies`, then complete each
        client from its field tuple)."""
        sequence, chain, result_bytes, stable_sequence, previous_chain = fields
        # assert h'c = hc — pairs the REPLY with our INVOKE and rejects
        # replies minted against any other history.
        if previous_chain != self._last_chain:
            raise InvalidReply(
                "REPLY does not extend this client's context "
                "(previous chain value mismatch)"
            )
        if sequence <= self._last_sequence:
            raise InvalidReply(
                f"non-increasing sequence number {sequence} "
                f"(last was {self._last_sequence})"
            )
        if stable_sequence < self._stable_sequence:
            raise InvalidReply("majority-stable sequence number decreased")
        self._last_sequence = sequence
        self._last_chain = chain
        if stable_sequence > self._stable_sequence:
            self._stable_sequence = stable_sequence
        outcome = LcmResult(
            result=_decode_result(result_bytes),
            sequence=sequence,
            stable_sequence=stable_sequence,
        )
        # inlined StabilityTracker.observe (hot path)
        stability = self.stability
        stability.own_sequences.append(sequence)
        if stable_sequence > stability.stable_sequence:
            stability.stable_sequence = stable_sequence
        self.completed_operations.append((operation, outcome))
        return outcome

    # ------------------------------------------------------------ stability

    def poll_stability(self) -> int:
        """Invoke a protocol-level dummy operation to refresh stability
        (the FAUST-style mechanism of Sec. 4.5).  Returns the updated
        majority-stable sequence number."""
        return self.invoke(NOP_OPERATION).stable_sequence

    def is_stable(self, sequence: int) -> bool:
        """Is the given operation known to be stable among a majority?"""
        return sequence <= self._stable_sequence

    def wait_until_stable(self, sequence: int, *, max_polls: int = 100) -> bool:
        """Poll with dummy operations until ``sequence`` becomes stable.

        Returns False if it did not become stable within ``max_polls`` —
        under a forking attack the operations of separated clients cease to
        become stable (Sec. 4.5), so callers must bound their patience.
        """
        for _ in range(max_polls):
            if self.is_stable(sequence):
                return True
            self.poll_stability()
        return self.is_stable(sequence)

    # --------------------------------------------------------- crash/recover

    def checkpoint(self) -> ClientCheckpoint:
        """Export recoverable state (to be written to client-side storage)."""
        return ClientCheckpoint(
            last_sequence=self._last_sequence,
            stable_sequence=self._stable_sequence,
            last_chain=self._last_chain,
        )

    @classmethod
    def recover(
        cls,
        client_id: int,
        communication_key: AeadKey,
        transport: Transport,
        checkpoint: ClientCheckpoint,
        *,
        max_retries: int = 3,
    ) -> "LcmClient":
        """Rebuild a client from its checkpoint after a client crash."""
        client = cls(
            client_id, communication_key, transport, max_retries=max_retries
        )
        client._last_sequence = checkpoint.last_sequence
        client._stable_sequence = checkpoint.stable_sequence
        client._last_chain = checkpoint.last_chain
        return client
