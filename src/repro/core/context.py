"""The LCM trusted execution context — Alg. 2 plus all extensions.

:class:`LcmContext` is an :class:`~repro.tee.enclave.EnclaveProgram`.  Its
lifecycle follows the paper:

``init`` (on every epoch start, Sec. 4.3/4.4)
    Obtain the sealing key ``kS = get-key(T, LCM)``, try to load the sealed
    blob pair from (untrusted) stable storage.  If nothing is stored the
    context waits to be bootstrapped; otherwise it unseals ``kP`` with
    ``kS``, then the protocol/service state with ``kP``, and rederives
    ``(t, h)`` via ``argmax(V)``.

``invoke`` (per INVOKE message, Sec. 4.2.2)
    Decrypt with ``kC``; verify ``V[i] = (*, tc, hc)``; halt on mismatch
    (rollback / forking / replay detection — the verification that *is* the
    protocol); execute ``F``; extend the hash chain; update ``V``; compute
    ``majority-stable(V)``; seal and store state; return the REPLY.

Extensions implemented:

- batching (Sec. 5.2): one ecall processes many INVOKEs, state stored once;
- retry (Sec. 4.6.1): a retry-marked INVOKE whose operation was already
  executed gets its stored REPLY re-sent instead of triggering a halt;
- protocol-level no-op: clients may poll stability with dummy operations
  (the FAUST-style mechanism the paper cites in Sec. 4.5);
- migration export/import (Sec. 4.6.2) — driven by
  :mod:`repro.core.migration`;
- membership changes (Sec. 4.6.3) — driven by admin requests under ``kA``.

Once any verification fails the context **halts permanently** (the
pseudocode's ``assert``): every later ecall raises the recorded violation.

Sealed-blob layout (static/dynamic split, incremental sealing)
--------------------------------------------------------------

The stored blob is ``serde([key_blob, static_blob, dynamic_blob])``:

``key_blob``
    ``kP`` sealed under the platform sealing key ``kS`` — recomputed only
    when ``kP`` or ``kS`` changes (provision, migration import, restore).
``static_blob``
    ``(kC, kA, quorum)`` sealed under ``kP`` — configuration that changes
    only on provision, membership change, key rotation or migration, so
    the per-operation seal reuses the cached box instead of re-encrypting
    and re-serializing it.
``dynamic_blob``
    ``serde([state_box, {client_id: row_record}, manifest_tag])`` — the
    mutable state, sealed *incrementally*; a section is regenerated only
    when it changed since the last seal.

    ``state_box`` is ``s`` stream-encrypted under ``kP``
    (:func:`~repro.crypto.aead.stream_encrypt` — confidentiality from the
    keystream, integrity from the manifest tag below).

    ``row_record`` is ``serde([acknowledged, reply_box])`` where
    ``reply_box`` is the *exact REPLY message* the context last sent that
    client, already sealed under ``kC``.  Every datum of a ``V`` row
    except the acknowledged marker — ``(t, h, r)`` — is carried by that
    REPLY, so storing its box verbatim makes the per-invoke row seal a
    concatenation plus one hash instead of a fresh encryption.  This
    leaks nothing new: all group clients share ``kC`` and can already
    read each other's REPLY boxes off the wire.  The plaintext
    acknowledged marker reveals only a sequence number, the same class of
    metadata :meth:`_ecall_status` exposes.  Rows for clients that never
    received a REPLY (fresh provision/join, migration import, kC
    rotation) hold a synthesized REPLY box with ``q = 0`` and an empty
    previous-chain echo, which no client accepts as a live reply because
    the previous-chain check fails.

``manifest_tag`` restores the atomicity a single box used to provide: it
is an HMAC under ``kP`` (domain-separated from box tags by its
associated-data string) over the SHA-256 hashes of ``static_blob``,
``state_box`` and every ``row_record`` in canonical order.  A host that
splices sections from different seals — say, ``s`` from version 10 with
``V`` from version 12, or a pre-rotation static config with a
post-rotation dynamic layer — or tampers with a plaintext acknowledged
marker produces a manifest mismatch and the restore raises
:class:`~repro.errors.AuthenticationFailure`.  Clients hold ``kC`` and
could mint plausible REPLY boxes, but they cannot forge the ``kP``
manifest tag, so stored rows are exactly as unforgeable as before.
Replaying one *complete* old blob remains possible, exactly as with the
monolithic layout; that is the rollback attack LCM detects through
client verification, not through sealing.

Reusing a cached box verbatim across seals is safe: the identical
(key, nonce, plaintext) box carries no new information, and any change to
the protected content invalidates the cache and forces a fresh seal
under a fresh nonce.
"""

from __future__ import annotations

import collections
import threading
from bisect import bisect_left, insort
from time import perf_counter as _perf_counter
from dataclasses import dataclass
from typing import Any, Callable

from hashlib import sha256 as _sha256

from repro import serde
from repro.crypto import fastpath as _fastpath
from repro.crypto.aead import (
    OVERHEAD,
    AeadKey,
    NonceSequence,
    _mac_frame,
    auth_decrypt,
    auth_encrypt,
    mac_tag,
    stream_decrypt,
    stream_encrypt,
    verify_mac_tag,
)
from repro.crypto.dh import DhKeyPair, PUBLIC_KEY_BYTES, public_from_bytes
from repro.crypto.hashing import (
    GENESIS_HASH,
    RING_SPAN,
    chain_extend,
    ring_point,
    secure_hash_many,
)
from repro.errors import (
    AuthenticationFailure,
    ConfigurationError,
    ForkDetected,
    MembershipError,
    ReplayDetected,
    RollbackDetected,
    SecurityViolation,
    StaleSequenceNumber,
)
from repro.kvstore.functionality import (
    Functionality,
    HANDOFF_EXPORT_VERB,
    HANDOFF_IMPORT_VERB,
)
from repro.core.messages import (
    _INVOKE_AD,
    _INVOKE_PREFIX,
    _REPLY_AD,
    _REPLY_PREFIX,
    ReplyPayload,
    encode_reply,
    seal_replies,
    seal_reply,
    unseal_invoke,
    unseal_invokes,
)
from repro.core.stability import (
    ClientEntry,
    PackedRows,
    majority_quorum,
)
from repro.tee.enclave import EnclaveEnv

_KEY_BLOB_AD = b"lcm/state-key"
_STATIC_BLOB_AD = b"lcm/state-static"
#: mac_tag domain for the dynamic-section manifest; must never be passed
#: to auth_encrypt/auth_decrypt (see repro.crypto.aead.mac_tag).
_MANIFEST_AD = b"lcm/state-manifest"
_PROVISION_AD = b"lcm/provision"
_ADMIN_AD = b"lcm/admin"
_MIGRATION_AD = b"lcm/migration"
_HANDOFF_AD = b"lcm/handoff"

#: Reserved client id under which key-range handoff operations are
#: sequenced into the hash chain and audit log.  Real group members get
#: ids >= 1 (the bootstrap convention throughout the repo), so handoff
#: records never collide with a client's own operations and the offline
#: checkers treat them as ordinary third-party history entries.
HANDOFF_CLIENT_ID = 0


class _HandoffSession:
    """One cached handoff channel to an attested peer enclave.

    Established during a full mutually attested handshake and kept in
    volatile memory only (an epoch restart forgets it — the next handoff
    re-attests).  ``send``/``recv`` are per-direction sequence numbers
    folded into the bundle's associated data, so a host replaying an old
    sealed bundle over the cached channel fails authentication exactly
    as a forged bundle would.
    """

    __slots__ = ("channel", "send", "recv")

    def __init__(self, channel: AeadKey) -> None:
        self.channel = channel
        self.send = 0
        self.recv = 0


def _session_ad(counter: int) -> bytes:
    return _HANDOFF_AD + b"/session/" + counter.to_bytes(8, "big")


def _list_header(count: int) -> bytes:
    """Container framing sourced from serde so the knowledge stays there."""
    buf = bytearray()
    serde.encode_list_header(buf, count)
    return bytes(buf)


_DICT_HEADERS: dict[int, bytes] = {}


def _dict_header(count: int) -> bytes:
    header = _DICT_HEADERS.get(count)
    if header is None:
        buf = bytearray()
        serde.encode_dict_header(buf, count)
        header = _DICT_HEADERS[count] = bytes(buf)
    return header


_TWO_LIST_HEADER = _list_header(2)
_THREE_LIST_HEADER = _list_header(3)


#: Canonical serde encoding of one bytes value (``B || len || value``) —
#: exactly serde.encode's bytes fast path; aliased so the wire knowledge
#: stays in serde.
_frame_bytes = serde.encode

#: Framing prefix of a 32-byte hash value (``B || len(32)``), precomputed
#: for the per-invoke manifest-piece path.
_HASH_FRAME = b"B" + (32).to_bytes(8, "big")


def _row_record(acknowledged: int, reply_box: bytes) -> bytes:
    """Canonical serde bytes of ``[acknowledged, reply_box]``."""
    try:
        encoded_ack = acknowledged.to_bytes(16, "big", signed=True)
    except OverflowError:
        raise serde.SerdeError(
            "acknowledged marker exceeds the canonical 128-bit range"
        ) from None
    return (
        _TWO_LIST_HEADER
        + b"I"
        + encoded_ack
        + b"B"
        + len(reply_box).to_bytes(8, "big")
        + reply_box
    )


#: Decoded forms of recently seen operation encodings (real workloads repeat
#: operations heavily).  Only flat lists of scalars are memoized so a
#: functionality that mutates nested operation structure cannot corrupt the
#: cache; stored and returned lists are distinct copies.  Keyed by canonical
#: bytes, which are unambiguous.  A proper LRU (ordered dict, move-to-end on
#: hit, least-recent eviction) so a zipfian key set larger than the capacity
#: keeps its hot head cached instead of thrashing wholesale.
_OP_DECODE_CACHE: collections.OrderedDict[bytes, list] = collections.OrderedDict()
_OP_DECODE_CACHE_MAX = 1024


class _PendingSeal:
    """A run-once handle for one deferred state-seal flush.

    Created inside the ``invoke_batch_deferred`` ecall and handed to the
    (untrusted) host through the ecall result.  :meth:`run` executes the
    seal assembly and the ``ocall_store`` exactly once, whichever caller
    gets there first — the execution backend's flush worker, the next
    barrier ecall's forced join, or enclave teardown; later callers
    return immediately.  A flush failure propagates only to the caller
    that actually ran it (everyone else must not re-raise a failure that
    was already surfaced at the flush's own join point).
    """

    __slots__ = ("_fn", "_lock", "done")

    def __init__(self, fn: Callable[[], None]) -> None:
        self._fn = fn
        self._lock = threading.Lock()
        self.done = False

    def run(self) -> None:
        with self._lock:
            if self.done:
                return
            fn = self._fn
            self._fn = None
            self.done = True  # a raising flush is not retried
            fn()

#: Canonical encodings of recently produced scalar results (hot values
#: repeat under real workloads).  Key types are restricted to those that
#: are unambiguous as dict keys — ``True`` and ``1`` compare equal but
#: encode differently, so ``bool`` stays out (its type check fails).
_RESULT_ENCODE_CACHE: collections.OrderedDict = collections.OrderedDict()
_RESULT_ENCODE_CACHE_MAX = 512
_SCALAR_RESULT_TYPES = (str, bytes, int)


def _decode_operation(data: bytes) -> Any:
    cached = _OP_DECODE_CACHE.get(data)
    if cached is not None:
        try:
            _OP_DECODE_CACHE.move_to_end(data)
        except KeyError:  # evicted by a concurrent worker between get and move
            pass
        return cached.copy()
    value = serde.decode(data)
    if type(value) is list and all(
        type(item) in (str, bytes, int, bool) or item is None for item in value
    ):
        if len(_OP_DECODE_CACHE) >= _OP_DECODE_CACHE_MAX:
            _OP_DECODE_CACHE.popitem(last=False)
        _OP_DECODE_CACHE[data] = value.copy()
    return value

#: Protocol-level dummy operation: sequenced and hash-chained like any other
#: operation, but not passed to ``F``.  Used for stability polling.
NOP_OPERATION = ("__LCM_NOP__",)

_NOP_VERB = NOP_OPERATION[0]

_NOP_BYTES = serde.encode(list(NOP_OPERATION))


@dataclass
class AuditRecord:
    """One executed operation, as seen by the trusted context.

    Only populated when the context is created with ``audit=True`` (test /
    verification mode).  The consistency checkers join these logs across
    all enclave instances to validate fork-linearizability globally.
    """

    sequence: int
    client_id: int
    operation: bytes
    result: bytes
    chain: bytes


class LcmContext:
    """Alg. 2, as an enclave program.

    Build instances through :func:`make_lcm_program_factory`, which closes
    over the functionality and configuration so the enclave can recreate a
    pristine program object at every epoch start.
    """

    PROGRAM_CODE = b"lcm-trusted-context-v1"
    DEVELOPER = "lcm-reproduction"

    def __init__(self, functionality: Functionality, *, audit: bool = False,
                 quorum_override: int | None = None,
                 piggyback_state: bool = False,
                 stage_probe: Callable[[dict], Any] | None = None) -> None:
        self._functionality = functionality
        self._audit = audit
        self._quorum_override = quorum_override
        # Sec. 5.2 optimisation: return the sealed state with the reply
        # instead of an ocall, eliminating one enclave transition.
        self._piggyback_state = piggyback_state
        # enclave-depth tracing opt-in: when set, each invoke batch
        # reports its wall-clock stage durations (unseal / execute /
        # reply_seal / state_seal, plus per-op execute) through this
        # callable before the ecall returns.  None (the default) keeps
        # the batch path at a single attribute test.
        self._stage_probe = stage_probe
        # volatile protected memory M — lost at epoch end
        self._env: EnclaveEnv | None = None
        self._sealing_key: AeadKey | None = None     # kS
        self._state_key: AeadKey | None = None       # kP
        self._communication_key: AeadKey | None = None  # kC
        self._admin_key: AeadKey | None = None       # kA (admin channel)
        self._sequence = 0                           # t
        self._chain = GENESIS_HASH                   # h
        # V as packed parallel columns (ids/ack/seq as int64 arrays, chains
        # as one bytearray of 32-byte cells) so the batched invoke fast
        # path hands the whole table to the C backend in a single call.
        # Includes the sorted acknowledged mirror (rows.acks) that keeps
        # per-invoke stability O(log n).
        self._rows = PackedRows()                    # V
        # quorum size memo; invalidated on any membership-size change
        self._quorum_cache: int | None = None
        # deterministic nonce chain for every box sealed on the invoke /
        # store path; seeded once per epoch in on_start.  Worker threads
        # (threaded execution backend) never touch the shared process
        # nonce pool, so serial and threaded runs emit identical bytes.
        self._nonces: NonceSequence | None = None
        self._state: Any = None                      # s
        # seal caches (see module docstring): reusable sealed boxes for
        # kP-under-kS, the static config, the service state, and each V row.
        self._key_blob: bytes | None = None
        self._static_blob: bytes | None = None
        self._static_blob_hash: bytes | None = None  # framed, manifest input
        # client_id -> (encoded id, blob piece ``enc_id || framed record``,
        # manifest piece ``enc_id || framed record hash``); ids in
        # _dirty_rows need resealing before the next store.  The assembly
        # buffers below mirror the rows in canonical (encoded-id) order so
        # the per-invoke seal patches the changed row's slot in place —
        # O(1) Python work per operation — instead of re-joining every row;
        # _rows_unsorted marks them stale (membership events, restore).
        self._row_seals: dict[int, tuple[bytes, bytes, bytes]] = {}
        self._dirty_rows: set[int] = set()
        self._rows_unsorted = False
        self._row_index: dict[int, int] = {}
        self._row_blob_pieces: list[bytes] = []
        self._row_manifest_pieces: list[bytes] = []
        # (framed state box, framed box hash) — valid while self._state is
        # the exact object it sealed.  Safe because Functionality.apply must
        # not mutate state in place: read-only operations return the same
        # object, so their seals reuse the cached box.
        self._state_seal: tuple[bytes, bytes] | None = None
        self._state_seal_obj: Any = None
        self._state_enc_audit: bytes | None = None  # audit-mode mutation check
        self._provisioned = False
        self._halted: SecurityViolation | None = None
        self._dh: DhKeyPair | None = None
        self._migration_nonce: bytes | None = None
        self._handoff_nonce: bytes | None = None
        self._handoff_sessions: dict[bytes, _HandoffSession] = {}
        self._migrated_out = False
        self.audit_log: list[AuditRecord] = []
        # deferred state-seal flushes (pipelined execution backend): each
        # ``invoke_batch_deferred`` ecall may leave one _PendingSeal here;
        # barrier ecalls and teardown force them in submission order.
        self._pending_seals: collections.deque[_PendingSeal] = collections.deque()
        self._defer_seal = False
        self._deferred_handle: _PendingSeal | None = None
        self._install_handlers()

    def _install_handlers(self) -> None:
        self._handlers: dict[str, Callable[[Any], Any]] = {
            "invoke": self._ecall_invoke,
            "invoke_batch": self._ecall_invoke_batch,
            "invoke_batch_deferred": self._ecall_invoke_batch_deferred,
            "attest": self._ecall_attest,
            "provision": self._ecall_provision,
            "admin": self._ecall_admin,
            "status": self._ecall_status,
            "migration_challenge": self._ecall_migration_challenge,
            "migration_export": self._ecall_migration_export,
            "migration_import": self._ecall_migration_import,
            "handoff_challenge": self._ecall_handoff_challenge,
            "handoff_export": self._ecall_handoff_export,
            "handoff_import": self._ecall_handoff_import,
            "handoff_session_check": self._ecall_handoff_session_check,
            "txn_status": self._ecall_txn_status,
            "export_audit_log": self._ecall_export_audit,
            "export_audit_since": self._ecall_export_audit_since,
        }

    # ------------------------------------------------------------- lifecycle

    def on_start(self, env: EnclaveEnv) -> None:
        """The paper's ``init``: runs at every epoch start."""
        self._env = env
        self._sealing_key = env.get_key(b"lcm-sealing")
        # drawn unconditionally, before any early return, so the platform
        # RNG stream stays in the same position on every start path
        self._nonces = NonceSequence(env.secure_random(32))
        blob = env.ocall_load()
        if blob is None:
            # First epoch ever: wait for the admin to bootstrap us.
            return
        self._restore(blob)

    def _restore(self, blob: bytes) -> None:
        """Unseal and adopt a stored state (possibly rolled back by S —
        LCM detects that later, through client verification)."""
        try:
            blob_key, blob_static, blob_dynamic = serde.decode(blob)
        except Exception as exc:  # malformed outer framing
            raise AuthenticationFailure(f"stored blob malformed: {exc}") from exc
        key_material = auth_decrypt(
            blob_key, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._state_key = AeadKey(key_material, label="kP")
        static_plain = auth_decrypt(
            blob_static, self._state_key, associated_data=_STATIC_BLOB_AD
        )
        kc_material, ka_material, quorum = serde.decode(static_plain)
        try:
            state_box, row_boxes, tag = serde.decode(blob_dynamic)
            manifest = self._build_manifest(
                _frame_bytes(_sha256(blob_static).digest()),
                _frame_bytes(_sha256(state_box).digest()),
                sorted(
                    serde.encode(client_id)
                    + _frame_bytes(_sha256(record).digest())
                    for client_id, record in row_boxes.items()
                ),
            )
        except Exception as exc:  # malformed dynamic framing
            raise AuthenticationFailure(
                f"stored dynamic section malformed: {exc}"
            ) from exc
        if not isinstance(tag, bytes) or not verify_mac_tag(
            tag, manifest, self._state_key, associated_data=_MANIFEST_AD
        ):
            raise AuthenticationFailure(
                "sealed state manifest MAC mismatch "
                "(sections were spliced or tampered)"
            )
        self._communication_key = AeadKey(kc_material, label="kC")
        self._admin_key = AeadKey(ka_material, label="kA")
        self._quorum_override = quorum if quorum else None
        # manifest verified above: the stream-encrypted state section and
        # the per-row REPLY boxes are authentic, so unseal and adopt them
        self._state = serde.decode(stream_decrypt(state_box, self._state_key))
        entries: dict[int, ClientEntry] = {}
        try:
            records = {
                client_id: serde.decode(record)
                for client_id, record in row_boxes.items()
            }
        except Exception as exc:
            raise AuthenticationFailure(
                f"stored row record malformed: {exc}"
            ) from exc
        for client_id, (acknowledged, reply_box) in records.items():
            reply = ReplyPayload.unseal(reply_box, self._communication_key)
            entries[client_id] = ClientEntry(
                acknowledged=acknowledged,
                last_sequence=reply.sequence,
                last_chain=reply.chain,
                last_result=reply.result,
            )
        self._reset_entries(entries)
        # The unsealed sections are exactly what the next seal would produce
        # — adopt them so the first post-restore store reuses them verbatim.
        self._key_blob = _frame_bytes(blob_key)
        self._static_blob = _frame_bytes(blob_static)
        self._static_blob_hash = _frame_bytes(_sha256(blob_static).digest())
        self._state_seal = (
            _frame_bytes(state_box),
            _frame_bytes(_sha256(state_box).digest()),
        )
        self._state_seal_obj = self._state
        # Adopt the rows in canonical order, NOT the stored dict order: the
        # manifest MAC is order-independent (both sides sort), so a host
        # could reorder the records; trusting its order would make our own
        # next seal emit a manifest that no longer matches its rows.
        adopted = sorted(
            (serde.encode(client_id), client_id, record)
            for client_id, record in row_boxes.items()
        )
        for enc_id, client_id, record in adopted:
            self._row_seals[client_id] = (
                enc_id,
                enc_id + _frame_bytes(record),
                enc_id + _frame_bytes(_sha256(record).digest()),
            )
        self._dirty_rows.clear()
        self._rebuild_row_arrays()
        if len(self._rows):
            _, self._sequence, self._chain = self._rows.argmax()
        self._provisioned = True

    # ------------------------------------------------------------ seal caches

    def _set_entry(self, client_id: int, entry: ClientEntry) -> None:
        """Update one row of V; its stored record is rebuilt at the next
        seal (with a synthesized REPLY box — the invoke path instead calls
        :meth:`_store_row_seal` with the real one)."""
        rows = self._rows
        slot = rows.slot.get(client_id)
        if slot is None:
            rows.insert(client_id, entry)
            self._rows_unsorted = True  # new row lands out of canonical order
            self._quorum_cache = None
        else:
            acks = rows.acks
            del acks[bisect_left(acks, rows.ack[slot])]
            insort(acks, entry.acknowledged)
            rows.ack[slot] = entry.acknowledged
            rows.seq[slot] = entry.last_sequence
            rows.chains[slot * 32 : slot * 32 + 32] = entry.last_chain
            rows.results[slot] = entry.last_result
        self._dirty_rows.add(client_id)

    def _store_row_seal(
        self, client_id: int, acknowledged: int, reply_box: bytes
    ) -> None:
        """Cache the stored form of one V row from its REPLY box, patching
        the assembly buffers' slot for that row in place (the O(1) hot
        path; only membership-scale events rebuild the buffers)."""
        record = _row_record(acknowledged, reply_box)
        self._install_row_seal(client_id, record, _sha256(record).digest())

    def _store_row_seals(self, pending: dict[int, tuple[int, bytes]]) -> None:
        """Reseal a whole batch of V rows, hashing every record in one
        pass (the coalesced per-batch form of :meth:`_store_row_seal`).

        The loop is :meth:`_install_row_seal` unrolled with the per-batch
        constants hoisted; the produced pieces are byte-identical.
        """
        if not pending:
            return
        row_seals = self._row_seals
        ids = []
        blobs = []
        record_views = []
        for client_id, (acknowledged, reply_box) in pending.items():
            cached = row_seals.get(client_id)
            enc_id = cached[0] if cached is not None else serde.encode(client_id)
            try:
                encoded_ack = acknowledged.to_bytes(16, "big", signed=True)
            except OverflowError:
                raise serde.SerdeError(
                    "acknowledged marker exceeds the canonical 128-bit range"
                ) from None
            # _row_record's bytes assembled in one pass, framed in place
            # (record length = header 9 + I 17 + B 9 + box)
            blob_piece = (
                enc_id
                + b"B"
                + (35 + len(reply_box)).to_bytes(8, "big")
                + _TWO_LIST_HEADER
                + b"I"
                + encoded_ack
                + b"B"
                + len(reply_box).to_bytes(8, "big")
                + reply_box
            )
            ids.append((client_id, enc_id))
            blobs.append(blob_piece)
            # hash the record bytes straight out of the assembled piece
            record_views.append(memoryview(blob_piece)[len(enc_id) + 9 :])
        digests = secure_hash_many(record_views)
        row_index = self._row_index
        blob_pieces = self._row_blob_pieces
        manifest_pieces = self._row_manifest_pieces
        discard = self._dirty_rows.discard
        unsorted = self._rows_unsorted
        for (client_id, enc_id), blob_piece, digest in zip(ids, blobs, digests):
            manifest_piece = enc_id + _HASH_FRAME + digest
            row_seals[client_id] = (enc_id, blob_piece, manifest_piece)
            if not unsorted:
                slot = row_index.get(client_id)
                if slot is None:
                    unsorted = self._rows_unsorted = True
                else:
                    blob_pieces[slot] = blob_piece
                    manifest_pieces[slot] = manifest_piece
            discard(client_id)

    def _install_row_seal(
        self, client_id: int, record: bytes, digest: bytes
    ) -> None:
        cached = self._row_seals.get(client_id)
        enc_id = cached[0] if cached is not None else serde.encode(client_id)
        # inlined serde bytes framing (``B || len || value``), identical to
        # _frame_bytes and pinned by the sealed-blob golden tests
        blob_piece = (
            enc_id + b"B" + len(record).to_bytes(8, "big") + record
        )
        manifest_piece = enc_id + _HASH_FRAME + digest
        self._row_seals[client_id] = (enc_id, blob_piece, manifest_piece)
        if not self._rows_unsorted:
            slot = self._row_index.get(client_id)
            if slot is None:
                self._rows_unsorted = True  # row not laid out yet
            else:
                self._row_blob_pieces[slot] = blob_piece
                self._row_manifest_pieces[slot] = manifest_piece

    def _rebuild_row_arrays(self) -> None:
        """Re-derive the canonical row layout (sorted by encoded id) after
        a membership-scale event: provision, join/leave, restore,
        migration import, kC rotation."""
        items = sorted(self._row_seals.items(), key=lambda item: item[1][0])
        self._row_seals = dict(items)
        self._row_index = {
            client_id: slot for slot, (client_id, _) in enumerate(items)
        }
        self._row_blob_pieces = [row[1] for _, row in items]
        self._row_manifest_pieces = [row[2] for _, row in items]
        self._rows_unsorted = False

    def _reset_entries(self, entries: dict[int, ClientEntry]) -> None:
        """Replace V wholesale (provision / restore / migration import)."""
        self._rows.replace(entries)
        self._quorum_cache = None
        self._row_seals = {}
        self._dirty_rows = set(entries)
        self._rows_unsorted = True

    def _remove_entry(self, client_id: int) -> None:
        self._rows.remove(client_id)
        self._quorum_cache = None
        self._row_seals.pop(client_id, None)
        self._dirty_rows.discard(client_id)
        self._rows_unsorted = True  # slot layout changed

    def _invalidate_seal_caches(self) -> None:
        """Drop every cached box (the keys they were sealed under changed)."""
        self._key_blob = None
        self._static_blob = None
        self._static_blob_hash = None
        self._state_seal = None
        self._state_seal_obj = None
        self._row_seals = {}
        self._dirty_rows = set(self._rows.client_ids())
        self._rows_unsorted = True
        self._row_index = {}
        self._row_blob_pieces = []
        self._row_manifest_pieces = []

    # ----------------------------------------------------------------- sealing

    def _refresh_dynamic_seals(self) -> None:
        """Reseal exactly the dynamic sections that changed since last seal."""
        state = self._state
        if self._state_seal is None or state is not self._state_seal_obj:
            encoded_state = serde.encode(state)
            box = stream_encrypt(
                encoded_state, self._state_key, nonce=self._next_nonce()
            )
            self._state_seal = (
                _frame_bytes(box),
                _frame_bytes(_sha256(box).digest()),
            )
            self._state_seal_obj = state
            if self._audit:
                self._state_enc_audit = encoded_state
        elif (
            self._audit
            and self._state_enc_audit is not None  # restore adopts no audit copy
            and serde.encode(state) != self._state_enc_audit
        ):
            # The object-identity cache assumes Functionality.apply never
            # mutates state in place (its documented contract).  Audit mode
            # pays for a re-encode to catch violations loudly instead of
            # sealing stale state that a restore would silently resurrect.
            raise ConfigurationError(
                "functionality mutated the service state in place; "
                "the sealed state would go stale (see Functionality.apply)"
            )
        if self._dirty_rows:
            # rows dirtied outside the invoke path (provision, membership
            # change, kC rotation, migration import) get a synthesized
            # REPLY box; its empty previous-chain echo means no client
            # ever accepts it as a live reply
            rows = self._rows
            kc = self._communication_key
            for client_id in sorted(self._dirty_rows):
                entry = rows.entry(client_id)
                box = ReplyPayload(
                    sequence=entry.last_sequence,
                    chain=entry.last_chain,
                    result=entry.last_result,
                    stable_sequence=0,
                    previous_chain=b"",
                ).seal(kc, nonce=self._next_nonce())
                self._store_row_seal(client_id, entry.acknowledged, box)
            self._dirty_rows.clear()
        if self._rows_unsorted:
            self._rebuild_row_arrays()

    @staticmethod
    def _build_manifest(
        framed_static_hash: bytes,
        framed_state_hash: bytes,
        pieces: list[bytes],
    ) -> bytes:
        """Serde bytes of ``[static_blob_hash, state_box_hash,
        {client_id: row_record_hash}]``.

        The static-config hash binds the dynamic layer to the exact static
        section it was sealed next to (a kC rotation changes both, and the
        manifest stops a host from pairing a retired static blob with a
        newer dynamic layer).  ``pieces`` holds ``enc_id || framed hash``
        chunks sorted by encoded id; seal and restore must build identical
        bytes.
        """
        parts = [
            _THREE_LIST_HEADER,
            framed_static_hash,
            framed_state_hash,
            _dict_header(len(pieces)),
        ]
        parts += pieces  # C-level extend: no per-row Python iteration
        return b"".join(parts)

    def _dynamic_blob(self) -> bytes:
        """Assemble ``serde([state_box, {id: row_record}, manifest_tag])``
        from the cached section pieces, resealing only what changed.

        Only called from :meth:`_sealed_blob`, which guarantees the static
        blob (and its hash) exist first.
        """
        self._refresh_dynamic_seals()
        framed_state_box, framed_state_hash = self._state_seal
        # the assembly buffers are already canonical: the per-invoke path
        # patched only the changed row's slot, so no re-sort or per-row
        # re-join happens here — just two C-level joins over cached pieces
        manifest = self._build_manifest(
            self._static_blob_hash, framed_state_hash, self._row_manifest_pieces
        )
        tag = mac_tag(manifest, self._state_key, associated_data=_MANIFEST_AD)
        parts = [
            _THREE_LIST_HEADER,
            framed_state_box,
            _dict_header(len(self._row_blob_pieces)),
        ]
        parts += self._row_blob_pieces
        parts.append(_frame_bytes(tag))
        return b"".join(parts)

    def _sealed_blob(self) -> bytes:
        """Seal the mutable sections that changed; reuse the cached static
        config and kP-under-kS boxes unless they were invalidated."""
        if self._key_blob is None:
            self._key_blob = _frame_bytes(
                auth_encrypt(
                    self._state_key.material,
                    self._sealing_key,
                    associated_data=_KEY_BLOB_AD,
                    nonce=self._next_nonce(),
                )
            )
        if self._static_blob is None:
            static_plain = serde.encode(
                [
                    self._communication_key.material,
                    self._admin_key.material,
                    self._quorum_override or 0,
                ]
            )
            box = auth_encrypt(
                static_plain,
                self._state_key,
                associated_data=_STATIC_BLOB_AD,
                nonce=self._next_nonce(),
            )
            self._static_blob = _frame_bytes(box)
            self._static_blob_hash = _frame_bytes(_sha256(box).digest())
        return b"".join(
            [
                _THREE_LIST_HEADER,
                self._key_blob,
                self._static_blob,
                _frame_bytes(self._dynamic_blob()),
            ]
        )

    def _seal_and_store(self) -> None:
        """Seal the state and persist it through the (untrusted) host."""
        self._env.ocall_store(self._sealed_blob())

    # --------------------------------------------------------- deferred seals

    def flush_pending_seals(self) -> None:
        """Run every deferred state-seal flush, in submission order."""
        pending = self._pending_seals
        while pending:
            pending.popleft().run()

    def _seal_and_store_batched(self) -> None:
        """The state-seal stage of a batch ecall: deferred when eligible.

        Eligibility mirrors exactly what the deferred closure can
        reproduce off the main thread without drawing nonces or touching
        shared caches: the static sections already sealed, no rows
        dirtied outside the invoke path, and the assembly buffers
        canonical.  Anything else (first seal after provision or restore,
        membership events, kC rotation) seals synchronously — after
        joining earlier flushes, which may still be in flight because
        ``invoke_batch_deferred`` is not a barrier ecall.
        """
        if (
            self._defer_seal
            and self._key_blob is not None
            and self._static_blob is not None
            and not self._dirty_rows
            and not self._rows_unsorted
        ):
            self._defer_state_seal()
            return
        if self._pending_seals:
            self.flush_pending_seals()
        self._seal_and_store()

    def _defer_state_seal(self) -> None:
        """Capture the seal as a run-once closure instead of running it.

        Every *decision* the synchronous path makes — is the cached state
        box stale, which nonce seals the fresh one — happens here, now,
        on the main thread, in the exact order
        :meth:`_refresh_dynamic_seals` would make it.  That keeps the
        :class:`~repro.crypto.aead.NonceSequence` position, and therefore
        every later box on the wire, byte-identical to the serial
        backend.  Only the pure byte assembly (encode, encrypt, hash,
        join) and the ``ocall_store`` are deferred.

        The closure snapshots the assembly buffers (the next batch's
        reply pass patches row slots in place) but reads
        ``self._state_seal`` lazily in the not-stale case: flushes run in
        submission order (the execution backend FIFO-chains them; forced
        joins drain the deque front-first), so by the time flush N+1
        reads the cached box, flush N has written it.
        """
        state = self._state
        stale = self._state_seal is None or state is not self._state_seal_obj
        nonce = self._next_nonce() if stale else None
        if stale:
            self._state_seal_obj = state
        env = self._env
        state_key = self._state_key
        key_blob = self._key_blob
        static_blob = self._static_blob
        static_hash = self._static_blob_hash
        blob_pieces = list(self._row_blob_pieces)
        manifest_pieces = list(self._row_manifest_pieces)
        audit = self._audit

        def flush() -> None:
            if stale:
                encoded_state = serde.encode(state)
                box = stream_encrypt(encoded_state, state_key, nonce=nonce)
                framed = (
                    _frame_bytes(box),
                    _frame_bytes(_sha256(box).digest()),
                )
                self._state_seal = framed
                if audit:
                    self._state_enc_audit = encoded_state
            else:
                framed = self._state_seal
                if (
                    audit
                    and self._state_enc_audit is not None
                    and serde.encode(state) != self._state_enc_audit
                ):
                    raise ConfigurationError(
                        "functionality mutated the service state in place; "
                        "the sealed state would go stale "
                        "(see Functionality.apply)"
                    )
            framed_state_box, framed_state_hash = framed
            manifest = self._build_manifest(
                static_hash, framed_state_hash, manifest_pieces
            )
            tag = mac_tag(manifest, state_key, associated_data=_MANIFEST_AD)
            parts = [
                _THREE_LIST_HEADER,
                framed_state_box,
                _dict_header(len(blob_pieces)),
            ]
            parts += blob_pieces
            parts.append(_frame_bytes(tag))
            dynamic = b"".join(parts)
            env.ocall_store(
                b"".join(
                    [
                        _THREE_LIST_HEADER,
                        key_blob,
                        static_blob,
                        _frame_bytes(dynamic),
                    ]
                )
            )

        handle = _PendingSeal(flush)
        self._pending_seals.append(handle)
        self._deferred_handle = handle

    # -------------------------------------------------- process-pool transport

    #: fields that do not cross a process boundary: the enclave
    #: environment and stage probe belong to the hosting process, the
    #: handler table holds bound methods, and pending seal flushes hold
    #: closures (they are forced before export, so nothing is lost).
    _TRANSIENT_FIELDS = (
        "_env", "_stage_probe", "_handlers",
        "_pending_seals", "_defer_seal", "_deferred_handle",
    )

    def __getstate__(self) -> dict:
        if self._pending_seals:
            self.flush_pending_seals()
        state = dict(self.__dict__)
        for name in self._TRANSIENT_FIELDS:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._env = None
        self._stage_probe = None
        self._pending_seals = collections.deque()
        self._defer_seal = False
        self._deferred_handle = None
        self._install_handlers()

    def adopt_exec_state(self, state: dict) -> None:
        """Adopt the post-batch state of a process-pool replica.

        The ``process`` execution backend runs a batch ecall against a
        pickled copy of this context in a worker process and ships the
        mutated fields back; everything except the process-local
        transients (environment, probe, handler table, pending flushes)
        is overwritten wholesale — including a recorded halt, so the
        replica's violation verdict survives adoption.
        """
        preserved = {
            name: getattr(self, name) for name in self._TRANSIENT_FIELDS
        }
        self.__dict__.update(state)
        self.__dict__.update(preserved)

    # ----------------------------------------------------------------- ecalls

    #: ecalls that read, replace, or invalidate the sealed state (or its
    #: caches) and therefore must observe a durably completed seal before
    #: running.  ``status``/``txn_status`` and the audit exports are
    #: deliberately absent: they touch only volatile fields, and forcing
    #: the flush there would re-serialize the seal at every streaming-audit
    #: harvest boundary.  ``invoke_batch_deferred`` is absent because its
    #: own seal step joins earlier flushes exactly when it cannot defer.
    _SEAL_BARRIER_ECALLS = frozenset({
        "invoke", "invoke_batch", "provision", "admin",
        "migration_challenge", "migration_export", "migration_import",
        "handoff_challenge", "handoff_export", "handoff_import",
        "handoff_session_check",
    })

    def ecall(self, name: str, payload: Any) -> Any:
        """Dispatch one enclave call; refuses everything once halted."""
        if self._halted is not None:
            raise type(self._halted)(f"context halted: {self._halted}")
        if self._pending_seals and name in self._SEAL_BARRIER_ECALLS:
            self.flush_pending_seals()
        handler = self._handlers.get(name)
        if handler is None:
            raise ConfigurationError(f"unknown ecall {name!r}")
        return handler(payload)

    # ------------------------------------------------------------ bootstrap

    def _ecall_attest(self, nonce: bytes) -> Any:
        """Produce an attestation report whose user data binds the
        challenge nonce and a fresh DH public key for the secure channel
        (Sec. 4.3 phase 2)."""
        self._dh = DhKeyPair.generate(self._env.secure_random(32))
        user_data = nonce + self._dh.public_bytes()
        return self._env.create_report(user_data)

    def _ecall_provision(self, payload: dict) -> bool:
        """Install keys sent by the admin over the attested DH channel."""
        if self._provisioned:
            raise ConfigurationError("context already provisioned")
        if self._dh is None:
            raise ConfigurationError("provision before attestation challenge")
        channel = self._dh.shared_key(public_from_bytes(payload["admin_public"]))
        plain = auth_decrypt(
            payload["bundle"], channel, associated_data=_PROVISION_AD
        )
        kp_material, kc_material, ka_material, client_ids, quorum = serde.decode(plain)
        self._state_key = AeadKey(kp_material, label="kP")
        self._communication_key = AeadKey(kc_material, label="kC")
        self._admin_key = AeadKey(ka_material, label="kA")
        self._quorum_override = quorum if quorum else None
        self._reset_entries({client_id: ClientEntry() for client_id in client_ids})
        self._state = self._functionality.initial_state()
        self._invalidate_seal_caches()
        self._provisioned = True
        self._seal_and_store()
        return True

    # ---------------------------------------------------------------- invoke

    def _ecall_invoke(self, message: bytes):
        reply = self._process_invoke(message)
        if self._piggyback_state:
            # Sec. 5.2: hand the sealed state back with the reply; the
            # untrusted server writes it to disk (it cannot read or forge
            # it — only delay or roll it back, which LCM detects anyway).
            return {"reply": reply, "state": self._sealed_blob()}
        self._seal_and_store()
        return reply

    def _ecall_invoke_batch(self, messages: list[bytes]):
        """Batched processing (Sec. 5.2): one crypto pass per direction,
        one dynamic-layer seal and one state store for the whole batch.

        All INVOKE boxes are verified and decrypted in a single batch
        call before any operation executes, so a batch containing a
        forged message is rejected wholesale (the per-message path
        rejects exactly that message; either way no forged operation
        runs and the context does not halt).  All REPLY boxes are
        sealed in one batch call, and the per-client row-slot patches
        are coalesced so a client invoked twice in a batch is resealed
        once.  An *authenticated* verification failure mid-batch still
        halts the context immediately — operations already executed in
        the batch are abandoned unsealed, exactly as before.

        When the compiled fastpath backend is active, the whole batch is
        verified, decoded, Alg.-2-checked against the packed V columns,
        chained, and resealed in two C calls; Python only runs the
        functionality and the slow paths (see
        :meth:`_invoke_batch_native`).  Every other backend runs the
        per-op loop below with nonces drawn from the same deterministic
        sequence, so the wire bytes are identical across backends.
        """
        if not self._provisioned:
            raise ConfigurationError("context not provisioned")
        if messages and self._nonces is not None:
            backend = _fastpath.BACKEND
            if backend.invoke_batch_open is not None:
                outcome = self._invoke_batch_native(backend, messages)
                if outcome is not None:
                    return outcome
                # a non-canonical (but authentic) encoding somewhere in
                # the batch: fall through and let the generic decoders
                # produce their exact diagnostics
        probe = self._stage_probe
        timed = probe is not None
        if timed:
            wall_start = _perf_counter()
        invokes = unseal_invokes(messages, self._communication_key)
        execute = self._execute_invoke
        if timed:
            t_unseal = _perf_counter()
            per_op: list[float] = []
            outcomes = []
            for invoke in invokes:
                op_start = _perf_counter()
                outcomes.append(execute(invoke))
                per_op.append(_perf_counter() - op_start)
            t_execute = _perf_counter()
        else:
            outcomes = [execute(invoke) for invoke in invokes]
        nonces = self._nonces
        boxes = seal_replies(
            [encoded for encoded, _ in outcomes],
            self._communication_key,
            nonces=nonces.take(len(outcomes)) if nonces is not None else None,
        )
        pending: dict[int, tuple[int, bytes]] = {}
        for (_, row), box in zip(outcomes, boxes):
            if row is not None:
                pending[row[0]] = (row[1], box)  # later reply supersedes
        self._store_row_seals(pending)
        if timed:
            t_reply = _perf_counter()
        if self._piggyback_state:
            outcome = {"replies": boxes, "state": self._sealed_blob()}
            if timed:
                probe(self._stage_record(
                    "python-batch", len(messages), per_op,
                    wall_start, t_unseal, t_execute, t_reply, _perf_counter(),
                ))
            return outcome
        self._seal_and_store_batched()
        if timed:
            probe(self._stage_record(
                "python-batch", len(messages), per_op,
                wall_start, t_unseal, t_execute, t_reply, _perf_counter(),
            ))
        return boxes

    def _ecall_invoke_batch_deferred(self, messages: list[bytes]):
        """``invoke_batch`` with the state-seal stage handed back as a
        run-once handle (pipelined execution backend).

        The reply boxes are byte-identical to a plain ``invoke_batch``
        and the seal, once flushed, stores byte-identical blobs — the
        only difference is *when* the store happens.  ``seal`` is None
        when the batch sealed synchronously anyway (cache invalidation,
        membership events) — the store is already durable in that case.
        """
        if self._piggyback_state:
            raise ConfigurationError(
                "piggyback_state already returns the sealed blob with the "
                "reply; deferring the seal stage cannot apply"
            )
        self._defer_seal = True
        try:
            replies = self._ecall_invoke_batch(messages)
        finally:
            self._defer_seal = False
        handle, self._deferred_handle = self._deferred_handle, None
        return {"replies": replies, "seal": handle}

    @staticmethod
    def _stage_record(
        path: str,
        ops: int,
        per_op: list[float],
        wall_start: float,
        t_unseal: float,
        t_execute: float,
        t_reply: float,
        t_store: float,
    ) -> dict:
        """One batch's enclave stage timings, with identical fields on
        the native and python-batch paths (only ``path`` tells them
        apart) so spans look the same whichever backend sealed them:
        ``unseal`` covers MAC-scan/decrypt/decode (native pass A also
        folds the Alg.-2 check in here; the generic loop verifies inside
        ``execute``), ``execute`` the per-op middle loop (itemised per
        operation in ``per_op_execute``), ``reply_seal`` reply encoding
        + sealing and
        row-slot bookkeeping, ``state_seal`` the dynamic-layer seal and
        store.  All durations are wall-clock seconds measured inside the
        ecall."""
        return {
            "path": path,
            "ops": ops,
            "unseal": t_unseal - wall_start,
            "execute": t_execute - t_unseal,
            "reply_seal": t_reply - t_execute,
            "state_seal": t_store - t_reply,
            "per_op_execute": per_op,
            "wall_start": wall_start,
            "wall_total": t_store - wall_start,
        }

    def _invoke_batch_native(self, backend, messages: list[bytes]):
        """One-C-call batch processing against the packed V columns.

        Pass A (``lcm_invoke_batch_open``) MAC-scans, decrypts, decodes
        and Alg.-2-verifies every INVOKE in order, mutating the live V
        columns, the sorted acknowledged mirror and the (sequence, chain)
        head exactly as the per-op loop would.  The middle loop below
        then runs only the functionality (and reads resend results at
        their in-order positions); pass B (``lcm_invoke_batch_reply``)
        encodes and seals all replies under deterministically derived
        nonces.  Returns ``None`` when some box is authentic but not
        canonically encoded — pass A guarantees it has not touched any
        state in that case, so the generic path can re-run the batch.
        """
        probe = self._stage_probe
        timed = probe is not None
        if timed:
            wall_start = _perf_counter()
        rows = self._rows
        kc = self._communication_key
        status, plain, meta, chains_out, sequence, chain_value = (
            backend.invoke_batch_open(
                kc._enc_key,
                kc._mac_key,
                _mac_frame(kc, _INVOKE_AD),
                _INVOKE_PREFIX,
                messages,
                rows.ids,
                rows.ack,
                rows.seq,
                rows.chains,
                rows.acks,
                self._quorum(),
                self._sequence,
                self._chain,
            )
        )
        if timed:
            t_unseal = _perf_counter()
        if status <= -2000:  # non-canonical payload: no state was touched
            return None  # (the generic re-run stamps its own stage record)
        if status <= -1000:
            # unauthentic box: rejected wholesale without halting, with
            # the batch unseal's exact diagnostics (see _process_invoke
            # for why authentication failures never halt)
            bad = -1000 - status
            if len(messages[bad]) < OVERHEAD:
                raise AuthenticationFailure(
                    f"box {bad} of batch too short to be authentic"
                )
            raise AuthenticationFailure(
                f"MAC verification failed for box {bad} of batch"
            )
        count = status
        total = len(messages)
        self._sequence = sequence
        self._chain = chain_value
        # middle loop: the only per-op Python work left — run F over the
        # executed operations (pass A never calls back into Python) and
        # snapshot resend results at their in-order positions (a later
        # operation by the same client overwrites the row's result cell)
        results: list[bytes] = []
        per_op: list[float] = []
        functionality = self._functionality
        audit = self._audit
        dirty_add = self._dirty_rows.add
        for index in range(count):
            if timed:
                op_start = _perf_counter()
            base = 10 * index
            if meta[base] == 1:  # retry resend: stored result, no execution
                results.append(rows.results[meta[base + 1]])
                if timed:
                    per_op.append(_perf_counter() - op_start)
                continue
            client_id = meta[base + 2]
            op_off = meta[base + 4]
            operation_bytes = plain[op_off : op_off + meta[base + 5]]
            cached_op = _OP_DECODE_CACHE.get(operation_bytes)
            if cached_op is not None:
                try:
                    _OP_DECODE_CACHE.move_to_end(operation_bytes)
                except KeyError:
                    pass
                operation = cached_op.copy()
            else:
                operation = _decode_operation(operation_bytes)
            result: Any
            if type(operation) is list:  # the canonical decode shape
                if len(operation) == 1 and operation[0] == _NOP_VERB:
                    result = None
                else:
                    result, self._state = functionality.apply(
                        self._state, operation
                    )
            elif self._is_nop(operation):
                result = None
            else:
                result, self._state = functionality.apply(self._state, operation)
            if type(result) in _SCALAR_RESULT_TYPES:  # memoized scalar encode
                result_bytes = _RESULT_ENCODE_CACHE.get(result)
                if result_bytes is None:
                    result_bytes = serde.encode(result)
                    if len(_RESULT_ENCODE_CACHE) >= _RESULT_ENCODE_CACHE_MAX:
                        _RESULT_ENCODE_CACHE.popitem(last=False)
                    _RESULT_ENCODE_CACHE[result] = result_bytes
                else:
                    try:
                        _RESULT_ENCODE_CACHE.move_to_end(result)
                    except KeyError:
                        pass
            else:
                result_bytes = serde.encode(result)
            rows.results[meta[base + 1]] = result_bytes
            dirty_add(client_id)
            results.append(result_bytes)
            if audit:
                self.audit_log.append(
                    AuditRecord(
                        sequence=meta[base + 8],
                        client_id=client_id,
                        operation=operation_bytes,
                        result=result_bytes,
                        chain=chains_out[32 * index : 32 * index + 32],
                    )
                )
            if timed:
                per_op.append(_perf_counter() - op_start)
        if timed:
            t_execute = _perf_counter()
        if count < total:
            # authenticated verification failure at position ``count``:
            # halt with the per-op loop's exact exception (rows before it
            # stay committed and unsealed, exactly as before)
            base = 10 * count
            code = meta[base]
            client_id = meta[base + 2]
            presented = meta[base + 3]
            if code == -1:
                raise self._halt(
                    SecurityViolation(f"unknown client {client_id}")
                )
            if code == -2:
                raise self._halt(
                    ReplayDetected(
                        f"client {client_id} presented stale sequence "
                        f"{presented} < {rows.seq[meta[base + 1]]}"
                    )
                )
            if code == -3:
                raise self._halt(
                    RollbackDetected(
                        f"client {client_id} is ahead of T "
                        f"({presented} > {rows.seq[meta[base + 1]]}): "
                        "T's state was rolled back"
                    )
                )
            raise self._halt(
                ForkDetected(
                    f"client {client_id} hash-chain value diverges from V: "
                    "histories have forked"
                )
            )
        nonces = self._nonces
        sealed = backend.invoke_batch_reply(
            kc._enc_key,
            kc._mac_key,
            _mac_frame(kc, _REPLY_AD),
            _REPLY_PREFIX,
            meta,
            chains_out,
            plain,
            results,
            nonces.seed,
            nonces.counter,
        )
        if sealed is None:  # pragma: no cover - C-side allocation failure
            encodeds = []
            for index in range(total):
                base = 10 * index
                hc_off = meta[base + 6]
                encodeds.append(
                    encode_reply(
                        meta[base + 8],
                        chains_out[32 * index : 32 * index + 32],
                        results[index],
                        meta[base + 9],
                        plain[hc_off : hc_off + meta[base + 7]],
                    )
                )
            boxes = seal_replies(encodeds, kc, nonces=nonces.take(total))
            pending: dict[int, tuple[int, bytes]] = {}
            for index in range(total):
                base = 10 * index
                if meta[base] == 0:
                    pending[meta[base + 2]] = (meta[base + 3], boxes[index])
            self._store_row_seals(pending)
        else:
            boxes, row_blobs, row_manifests = sealed
            nonces.counter += total
            # pass B already built each executed row's sealed-blob pieces;
            # all that is left is slot bookkeeping (a later reply to the
            # same client overwrites, exactly like the per-op loop)
            row_seals = self._row_seals
            row_index = self._row_index
            blob_pieces = self._row_blob_pieces
            manifest_pieces = self._row_manifest_pieces
            discard = self._dirty_rows.discard
            unsorted = self._rows_unsorted
            for index in range(total):
                base = 10 * index
                if meta[base] != 0:
                    continue
                client_id = meta[base + 2]
                blob_piece = row_blobs[index]
                manifest_piece = row_manifests[index]
                row_seals[client_id] = (
                    manifest_piece[:17], blob_piece, manifest_piece
                )
                if not unsorted:
                    slot = row_index.get(client_id)
                    if slot is None:
                        unsorted = self._rows_unsorted = True
                    else:
                        blob_pieces[slot] = blob_piece
                        manifest_pieces[slot] = manifest_piece
                discard(client_id)
        if timed:
            t_reply = _perf_counter()
        if self._piggyback_state:
            outcome = {"replies": boxes, "state": self._sealed_blob()}
            if timed:
                probe(self._stage_record(
                    "native-batch", total, per_op,
                    wall_start, t_unseal, t_execute, t_reply, _perf_counter(),
                ))
            return outcome
        self._seal_and_store_batched()
        if timed:
            probe(self._stage_record(
                "native-batch", total, per_op,
                wall_start, t_unseal, t_execute, t_reply, _perf_counter(),
            ))
        return boxes

    def _process_invoke(self, message: bytes) -> bytes:
        if not self._provisioned:
            raise ConfigurationError("context not provisioned")
        # A message that fails authentication is rejected but does NOT halt
        # the context: it carries no evidence about T's own state (it may be
        # network garbage or a removed client's stale key), and halting on
        # it would let anyone deny service with one forged packet.  Halting
        # is reserved for *authenticated* context mismatches below, which
        # prove a rollback/forking attack.
        fields = unseal_invoke(message, self._communication_key)
        encoded, row = self._execute_invoke(fields)
        box = seal_reply(
            encoded, self._communication_key, nonce=self._next_nonce()
        )
        if row is not None:
            client_id, acknowledged = row
            self._store_row_seal(client_id, acknowledged, box)
            self._dirty_rows.discard(client_id)
        return box

    def _execute_invoke(
        self, fields: tuple[int, int, bytes, bytes, bool]
    ) -> tuple[bytes, tuple[int, int] | None]:
        """Verify, execute and chain one decoded INVOKE (Alg. 2 body).

        ``fields`` is the ``(i, tc, hc, o, retry)`` tuple from
        :func:`~repro.core.messages.decode_invoke`.  Returns the
        canonically encoded plaintext reply and, for fresh executions,
        the ``(client_id, acknowledged)`` pair whose V row the caller
        must reseal with the sealed reply box (resends reuse the stored
        row).
        """
        client_id, last_sequence, last_chain, operation_bytes, retry = fields
        rows = self._rows
        slot = rows.slot.get(client_id)
        if slot is None:
            raise self._halt(
                SecurityViolation(f"unknown client {client_id}")
            )
        row_sequence = rows.seq[slot]

        # Sec. 4.6.1 retry, case "crashed after store": the operation was
        # executed and recorded but the REPLY was lost.  Detect it by the
        # acknowledged marker and re-send the stored reply.
        if (
            retry
            and rows.ack[slot] == last_sequence
            and row_sequence > last_sequence
        ):
            return self._resend_reply(last_chain, rows.entry(client_id)), None

        # The verification at the heart of the protocol:
        # assert V[i] = (*, tc, hc)
        if row_sequence != last_sequence:
            if last_sequence < row_sequence:
                raise self._halt(
                    ReplayDetected(
                        f"client {client_id} presented stale sequence "
                        f"{last_sequence} < {row_sequence}"
                    )
                )
            raise self._halt(
                RollbackDetected(
                    f"client {client_id} is ahead of T "
                    f"({last_sequence} > {row_sequence}): "
                    "T's state was rolled back"
                )
            )
        if rows.chain_at(slot) != last_chain:
            raise self._halt(
                ForkDetected(
                    f"client {client_id} hash-chain value diverges from V: "
                    "histories have forked"
                )
            )

        # Execute, sequence and chain the operation.
        sequence = self._sequence + 1
        self._sequence = sequence
        cached_op = _OP_DECODE_CACHE.get(operation_bytes)  # inlined hit path
        if cached_op is not None:
            try:
                _OP_DECODE_CACHE.move_to_end(operation_bytes)
            except KeyError:  # evicted concurrently by a worker thread
                pass
            operation = cached_op.copy()
        else:
            operation = _decode_operation(operation_bytes)
        result: Any
        if type(operation) is list:  # the canonical decode shape
            if len(operation) == 1 and operation[0] == _NOP_VERB:
                result = None
            else:
                result, self._state = self._functionality.apply(
                    self._state, operation
                )
        elif self._is_nop(operation):
            result = None
        else:
            result, self._state = self._functionality.apply(self._state, operation)
        chain = chain_extend(self._chain, operation_bytes, sequence, client_id)
        self._chain = chain
        if type(result) in _SCALAR_RESULT_TYPES:  # memoized scalar encode
            result_bytes = _RESULT_ENCODE_CACHE.get(result)
            if result_bytes is None:
                result_bytes = serde.encode(result)
                if len(_RESULT_ENCODE_CACHE) >= _RESULT_ENCODE_CACHE_MAX:
                    _RESULT_ENCODE_CACHE.popitem(last=False)
                _RESULT_ENCODE_CACHE[result] = result_bytes
            else:
                try:
                    _RESULT_ENCODE_CACHE.move_to_end(result)
                except KeyError:  # evicted concurrently by a worker thread
                    pass
        else:
            result_bytes = serde.encode(result)
        # update V[i]'s packed cells in place.  The dirty mark stays load-
        # bearing: if a later operation in this batch aborts the ecall
        # before the row's REPLY box is sealed, the next seal synthesizes
        # a box for this row instead of persisting a stale one.
        acks = rows.acks
        del acks[bisect_left(acks, rows.ack[slot])]
        insort(acks, last_sequence)
        rows.ack[slot] = last_sequence
        rows.seq[slot] = sequence
        rows.chains[slot * 32 : slot * 32 + 32] = chain
        rows.results[slot] = result_bytes
        self._dirty_rows.add(client_id)
        if self._audit:
            self.audit_log.append(
                AuditRecord(
                    sequence=sequence,
                    client_id=client_id,
                    operation=operation_bytes,
                    result=result_bytes,
                    chain=chain,
                )
            )
        quorum = self._quorum_cache  # inlined _stable(); V is non-empty here
        if quorum is None:
            quorum = self._quorum()
        encoded = encode_reply(
            sequence, chain, result_bytes, acks[len(acks) - quorum], last_chain
        )
        # the sealed REPLY box doubles as the stored form of this client's
        # V row; the caller seals it (per box or as part of a batch pass)
        # and feeds it back through _store_row_seal
        return encoded, (client_id, last_sequence)

    def _resend_reply(self, last_chain: bytes, entry: ClientEntry) -> bytes:
        """Reproduce the lost REPLY from the V[i] record (retry extension),
        as canonical encoded bytes."""
        return encode_reply(
            entry.last_sequence,
            entry.last_chain,
            entry.last_result,
            self._stable(),
            last_chain,
        )

    @staticmethod
    def _is_nop(operation: Any) -> bool:
        return (
            isinstance(operation, (list, tuple))
            and len(operation) == 1
            and operation[0] == NOP_OPERATION[0]
        )

    def _quorum(self) -> int:
        quorum = self._quorum_cache
        if quorum is None:
            if self._quorum_override is not None:
                quorum = min(self._quorum_override, len(self._rows))
            else:
                quorum = majority_quorum(len(self._rows))
            self._quorum_cache = quorum
        return quorum

    def _stable(self) -> int:
        """``majority-stable(V)`` from the sorted acknowledged mirror —
        equal to ``stable_with_quorum(V, self._quorum())``
        (property-tested) at O(1) per call."""
        return self._rows.stable(self._quorum())

    def _next_nonce(self) -> bytes | None:
        """Next deterministic seal nonce (None → fall back to the shared
        pool, only before :meth:`on_start` has seeded the sequence)."""
        nonces = self._nonces
        return nonces.next() if nonces is not None else None

    def _halt(self, violation: SecurityViolation) -> SecurityViolation:
        """Record the violation and refuse all further processing."""
        self._halted = violation
        return violation

    # ----------------------------------------------------------- membership

    def _ecall_admin(self, box: bytes) -> Any:
        """Admin requests (join / leave / rotate kC), authenticated with kA."""
        if not self._provisioned:
            raise ConfigurationError("context not provisioned")
        plain = auth_decrypt(box, self._admin_key, associated_data=_ADMIN_AD)
        request = serde.decode(plain)
        verb = request[0]
        if verb == "ADD_CLIENT":
            (_, client_id) = request
            if client_id in self._rows:
                raise MembershipError(f"client {client_id} already in the group")
            self._set_entry(client_id, ClientEntry())
            self._seal_and_store()
            return True
        if verb == "REMOVE_CLIENT":
            (_, client_id, new_kc_material) = request
            if client_id not in self._rows:
                raise MembershipError(f"client {client_id} not in the group")
            self._remove_entry(client_id)
            self._communication_key = AeadKey(new_kc_material, label="kC")
            # kC rotated: the static config and every stored row (REPLY
            # boxes under the old kC) must be resealed
            self._static_blob = None
            self._static_blob_hash = None
            self._dirty_rows.update(self._rows.client_ids())
            self._seal_and_store()
            return True
        raise MembershipError(f"unknown admin request {verb!r}")

    # ------------------------------------------------------------ migration

    def _ecall_migration_challenge(self, _payload: Any) -> bytes:
        """Origin side, step 1: emit a nonce to challenge the target with."""
        if not self._provisioned:
            raise ConfigurationError("only a provisioned context can migrate out")
        self._migration_nonce = self._env.secure_random(16)
        return self._migration_nonce

    def _ecall_migration_export(self, payload: dict) -> dict:
        """Origin side, step 2: verify the target's quote, open a DH channel
        bound to it, and export (kP, kC, kA, s, V) through that channel.

        After a successful export the origin stops processing requests
        (Sec. 4.6.2: "T stops processing requests and provides its current
        state to T'")."""
        from repro.crypto.attestation import Quote, QuoteVerifier

        if not self._provisioned:
            raise ConfigurationError("only a provisioned context can migrate out")
        if self._migration_nonce is None:
            raise ConfigurationError("migration export before challenge")
        verifier: QuoteVerifier = payload["verifier"]
        quote: Quote = payload["quote"]
        verifier.verify(
            quote,
            expected_measurement=self._env.measurement,
            nonce=self._migration_nonce,
        )
        target_public = public_from_bytes(quote.user_data[16 : 16 + 256])
        dh = DhKeyPair.generate(self._env.secure_random(32))
        channel = dh.shared_key(target_public)
        wire_entries = {
            client_id: entry.to_wire()
            for client_id, entry in self._rows.to_entries().items()
        }
        bundle = serde.encode(
            [
                self._state_key.material,
                self._communication_key.material,
                self._admin_key.material,
                self._state,
                wire_entries,
                self._quorum_override or 0,
            ]
        )
        sealed = auth_encrypt(bundle, channel, associated_data=_MIGRATION_AD)
        self._migrated_out = True
        self._halted = SecurityViolation("context migrated out; no longer serving")
        return {"origin_public": dh.public_bytes(), "bundle": sealed}

    def _ecall_migration_import(self, payload: dict) -> bool:
        """Target side: receive the state over the DH channel and resume."""
        if self._provisioned:
            raise ConfigurationError("target context already provisioned")
        if self._dh is None:
            raise ConfigurationError("import before attestation challenge")
        channel = self._dh.shared_key(public_from_bytes(payload["origin_public"]))
        plain = auth_decrypt(
            payload["bundle"], channel, associated_data=_MIGRATION_AD
        )
        (kp, kc, ka, state, wire_entries, quorum) = serde.decode(plain)
        self._state_key = AeadKey(kp, label="kP")
        self._communication_key = AeadKey(kc, label="kC")
        self._admin_key = AeadKey(ka, label="kA")
        self._state = state
        self._reset_entries(
            {
                client_id: ClientEntry.from_wire(entry)
                for client_id, entry in wire_entries.items()
            }
        )
        self._quorum_override = quorum if quorum else None
        self._invalidate_seal_caches()
        if len(self._rows):
            _, self._sequence, self._chain = self._rows.argmax()
        self._provisioned = True
        self._seal_and_store()
        return True

    # ------------------------------------------------- key-range handoff

    def _verify_handoff_peer(self, payload: dict):
        """Shared mutual-attestation step of the handoff ecalls: verify
        the peer's quote against our own challenge nonce and return the
        DH public key it binds.

        Both sides run it — unlike whole-context migration (where only
        the origin verifies, because the target is unprovisioned and has
        nothing to lose), a handoff *into a live group* must never accept
        items from anything but a genuine LCM enclave, or an untrusted
        host could inject arbitrary keys into a serving state.
        """
        from repro.crypto.attestation import Quote, QuoteVerifier

        if not self._provisioned:
            raise ConfigurationError("only a provisioned context takes part in a handoff")
        if HANDOFF_CLIENT_ID in self._rows:
            raise ConfigurationError(
                f"client id {HANDOFF_CLIENT_ID} is reserved for handoff records"
            )
        if self._handoff_nonce is None:
            raise ConfigurationError("handoff before challenge")
        if self._dh is None:
            raise ConfigurationError("handoff before attestation")
        verifier: QuoteVerifier = payload["verifier"]
        quote: Quote = payload["quote"]
        verifier.verify(
            quote,
            expected_measurement=self._env.measurement,
            nonce=self._handoff_nonce,
        )
        peer_bytes = quote.user_data[16 : 16 + PUBLIC_KEY_BYTES]
        return public_from_bytes(peer_bytes), peer_bytes

    def _sequence_handoff(self, operation: list, result: Any) -> None:
        """Fold a handoff operation into the chain exactly like a client
        operation (fresh sequence number, chain extension, audit record),
        so the offline checkers replay it and any tampering with the
        moved items diverges the chain."""
        operation_bytes = serde.encode(operation)
        sequence = self._sequence + 1
        self._sequence = sequence
        self._chain = chain_extend(
            self._chain, operation_bytes, sequence, HANDOFF_CLIENT_ID
        )
        if self._audit:
            self.audit_log.append(
                AuditRecord(
                    sequence=sequence,
                    client_id=HANDOFF_CLIENT_ID,
                    operation=operation_bytes,
                    result=serde.encode(result),
                    chain=self._chain,
                )
            )

    @staticmethod
    def _check_arcs(arcs: Any) -> list:
        checked = []
        for arc in arcs:
            lo, hi = arc
            if (
                type(lo) is not int
                or type(hi) is not int
                or not 0 <= lo < hi <= RING_SPAN
            ):
                raise ConfigurationError(f"malformed handoff arc {arc!r}")
            checked.append([lo, hi])
        return checked

    def _ecall_handoff_challenge(self, _payload: Any) -> bytes:
        """Either side: emit a nonce for the peer to attest against."""
        if not self._provisioned:
            raise ConfigurationError("only a provisioned context takes part in a handoff")
        self._handoff_nonce = self._env.secure_random(16)
        return self._handoff_nonce

    def _guard_undecided_arcs(self, arcs: list) -> None:
        """Refuse to export arcs holding keys locked by a prepared-but-
        undecided transaction.  The decision for those keys is addressed
        to *this* group's hash chain; moving them mid-lifecycle would
        strand the prepare on one chain and its decision on another.
        The control plane's barrier waits for transactions to resolve
        before handing arcs over — this check is the enclave-side
        enforcement of the same rule.
        """
        locked = getattr(self._functionality, "locked_keys", None)
        if locked is None:
            return
        held = locked(self._state)
        if not held:
            return
        stranded = sorted(
            key
            for key in held
            if any(lo <= ring_point(key) < hi for lo, hi in arcs)
        )
        if stranded:
            raise ConfigurationError(
                f"arcs hold {len(stranded)} key(s) locked by prepared-but-"
                f"undecided transaction(s) {sorted(set(held[k] for k in stranded))}; "
                "refusing to hand them off before their decision lands"
            )

    def _cache_handoff_session(
        self, peer_bytes: bytes, channel: AeadKey
    ) -> _HandoffSession:
        """Remember the attested channel for session reuse; bounded so
        long-lived groups never accumulate stale per-handshake entries
        (each full handshake mints fresh peer DH keys)."""
        while len(self._handoff_sessions) >= 32:
            self._handoff_sessions.pop(next(iter(self._handoff_sessions)))
        session = self._handoff_sessions[peer_bytes] = _HandoffSession(channel)
        return session

    def _handoff_session(self, payload: dict) -> _HandoffSession:
        if not self._provisioned:
            raise ConfigurationError(
                "only a provisioned context takes part in a handoff"
            )
        if HANDOFF_CLIENT_ID in self._rows:
            # same precondition the full-handshake path enforces: handoff
            # records are sequenced under the reserved client id, which
            # must not collide with a real member enrolled since the
            # session was established
            raise ConfigurationError(
                f"client id {HANDOFF_CLIENT_ID} is reserved for handoff records"
            )
        session = self._handoff_sessions.get(payload["session_peer"])
        if session is None:
            raise ConfigurationError("unknown handoff session peer")
        return session

    def _ecall_handoff_session_check(self, peer: bytes) -> bool:
        """Whether this context still holds a cached handoff channel for
        ``peer`` (an epoch restart wipes them).  The session-reuse path
        probes both sides *before* the export removes any key."""
        return self._provisioned and peer in self._handoff_sessions

    def _ecall_handoff_export(self, payload: dict) -> dict:
        """Source side: verify the peer, cut the keys on the requested
        ring arcs out of the service state, and seal them to the peer.

        Unlike :meth:`_ecall_migration_export` the context keeps serving
        afterwards — only the reassigned arcs leave.  The export is
        chained as a sequenced operation *before* the bundle is released,
        so a source that is later rolled back past the handoff is caught
        by its own clients exactly as for any other lost operation.

        Two channel modes: a full mutually attested handshake (payload
        carries ``quote``/``verifier``), which also caches the derived
        channel per peer for later reuse; or a cached session (payload
        carries ``session_peer``), which skips the four DH operations and
        seals under the cached key with a per-direction sequence number
        in the associated data (replay-proof without fresh nonces from
        attestation).
        """
        arcs = self._check_arcs(payload["arcs"])
        if "session_peer" in payload:
            session = self._handoff_session(payload)
            channel = session.channel
            associated_data = _session_ad(session.send)
        else:
            peer_public, peer_bytes = self._verify_handoff_peer(payload)
            channel = self._dh.shared_key(peer_public)
            session = self._cache_handoff_session(peer_bytes, channel)
            associated_data = _HANDOFF_AD
        self._guard_undecided_arcs(arcs)
        operation = [HANDOFF_EXPORT_VERB, arcs]
        items, next_state = self._functionality.apply(self._state, operation)
        self._state = next_state
        self._sequence_handoff(operation, items)
        sealed = auth_encrypt(
            serde.encode([items]), channel, associated_data=associated_data
        )
        if "session_peer" in payload:
            session.send += 1
        self._handoff_nonce = None
        self._seal_and_store()
        return {"bundle": sealed, "moved": len(items)}

    def _ecall_handoff_import(self, payload: dict) -> int:
        """Target side: verify the peer (or reuse the cached session),
        open the bundle over the channel, and install the items as a
        sequenced operation."""
        if "session_peer" in payload:
            session = self._handoff_session(payload)
            plain = auth_decrypt(
                payload["bundle"],
                session.channel,
                associated_data=_session_ad(session.recv),
            )
            session.recv += 1
        else:
            peer_public, peer_bytes = self._verify_handoff_peer(payload)
            channel = self._dh.shared_key(peer_public)
            self._cache_handoff_session(peer_bytes, channel)
            plain = auth_decrypt(
                payload["bundle"], channel, associated_data=_HANDOFF_AD
            )
        (items,) = serde.decode(plain)
        operation = [HANDOFF_IMPORT_VERB, items]
        count, next_state = self._functionality.apply(self._state, operation)
        self._state = next_state
        self._sequence_handoff(operation, count)
        self._handoff_nonce = None
        self._seal_and_store()
        return count

    # -------------------------------------------------------------- queries

    def _ecall_status(self, _payload: Any) -> dict:
        """Non-sensitive status snapshot (used by tests and the harness)."""
        return {
            "provisioned": self._provisioned,
            "sequence": self._sequence,
            "clients": self._rows.client_ids(),
            "halted": self._halted is not None,
            "migrated_out": self._migrated_out,
        }

    def _ecall_txn_status(self, _payload: Any) -> dict:
        """Transaction-lifecycle snapshot: prepared-but-undecided
        transactions and the number of keys they hold locked.  Read by
        the dispatcher's batch-boundary gate and the control plane's
        quiescence barrier (neither may treat a boundary as cuttable
        while a prepare awaits its decision).  Exposes only ids and
        counts — the same metadata class as :meth:`_ecall_status`.
        """
        helper = getattr(self._functionality, "pending_transactions", None)
        if not self._provisioned or helper is None:
            return {"pending": {}, "locked_keys": 0, "waiting": []}
        pending = helper(self._state)
        waiting_helper = getattr(
            self._functionality, "waiting_transactions", None
        )
        return {
            "pending": {txn_id: len(keys) for txn_id, keys in pending.items()},
            "locked_keys": sum(len(keys) for keys in pending.values()),
            # queued waiters hold no locks, but their prepare is still
            # addressed at this shard's keys — the quiescence barrier
            # must not move those keys out from under the queue
            "waiting": list(waiting_helper(self._state))
            if waiting_helper is not None
            else [],
        }

    def _ecall_export_audit(self, _payload: Any) -> list[AuditRecord]:
        if not self._audit:
            raise ConfigurationError("context was not created in audit mode")
        return list(self.audit_log)

    def _ecall_export_audit_since(self, offset: Any) -> list[AuditRecord]:
        """Incremental audit export: records from ``offset`` onwards.

        The streaming verifier harvests evidence at every batch boundary;
        re-exporting the whole log each time would make harvesting
        O(history) — this returns only the suffix past what the caller
        already holds.  Records are append-only and immutable once
        sequenced, so ``export_audit_since(k)`` concatenated over time is
        byte-identical to a final ``export_audit_log``.
        """
        if not self._audit:
            raise ConfigurationError("context was not created in audit mode")
        if not isinstance(offset, int) or offset < 0:
            raise ConfigurationError(f"audit export offset {offset!r} is invalid")
        return list(self.audit_log[offset:])


def make_lcm_program_factory(
    functionality_factory: Callable[[], Functionality],
    *,
    audit: bool = False,
    quorum_override: int | None = None,
    piggyback_state: bool = False,
    stage_probe: Callable[[dict], Any] | None = None,
) -> Callable[[], LcmContext]:
    """Build the program factory handed to the TEE platform.

    The factory is invoked at every epoch start, so each epoch begins with
    pristine volatile memory — persistent identity lives only in the sealed
    blob, exactly as the paper requires.  ``stage_probe`` rides the
    factory (not the instance) for the same reason: every program object
    a platform ever creates — initial bootstrap, rebalance target,
    recovered generation — reports its batch stage timings through the
    one cluster-owned probe.
    """

    def factory() -> LcmContext:
        return LcmContext(
            functionality_factory(),
            audit=audit,
            quorum_override=quorum_override,
            piggyback_state=piggyback_state,
            stage_probe=stage_probe,
        )

    return factory
