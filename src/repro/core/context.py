"""The LCM trusted execution context — Alg. 2 plus all extensions.

:class:`LcmContext` is an :class:`~repro.tee.enclave.EnclaveProgram`.  Its
lifecycle follows the paper:

``init`` (on every epoch start, Sec. 4.3/4.4)
    Obtain the sealing key ``kS = get-key(T, LCM)``, try to load the sealed
    blob pair from (untrusted) stable storage.  If nothing is stored the
    context waits to be bootstrapped; otherwise it unseals ``kP`` with
    ``kS``, then the protocol/service state with ``kP``, and rederives
    ``(t, h)`` via ``argmax(V)``.

``invoke`` (per INVOKE message, Sec. 4.2.2)
    Decrypt with ``kC``; verify ``V[i] = (*, tc, hc)``; halt on mismatch
    (rollback / forking / replay detection — the verification that *is* the
    protocol); execute ``F``; extend the hash chain; update ``V``; compute
    ``majority-stable(V)``; seal and store state; return the REPLY.

Extensions implemented:

- batching (Sec. 5.2): one ecall processes many INVOKEs, state stored once;
- retry (Sec. 4.6.1): a retry-marked INVOKE whose operation was already
  executed gets its stored REPLY re-sent instead of triggering a halt;
- protocol-level no-op: clients may poll stability with dummy operations
  (the FAUST-style mechanism the paper cites in Sec. 4.5);
- migration export/import (Sec. 4.6.2) — driven by
  :mod:`repro.core.migration`;
- membership changes (Sec. 4.6.3) — driven by admin requests under ``kA``.

Once any verification fails the context **halts permanently** (the
pseudocode's ``assert``): every later ecall raises the recorded violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.crypto.dh import DhKeyPair, public_from_bytes
from repro.crypto.hashing import GENESIS_HASH, chain_extend
from repro.errors import (
    AuthenticationFailure,
    ConfigurationError,
    ForkDetected,
    MembershipError,
    ReplayDetected,
    RollbackDetected,
    SecurityViolation,
    StaleSequenceNumber,
)
from repro.kvstore.functionality import Functionality
from repro.core.messages import InvokePayload, ReplyPayload
from repro.core.stability import (
    ClientEntry,
    argmax_entry,
    majority_quorum,
    stable_with_quorum,
)
from repro.tee.enclave import EnclaveEnv

_KEY_BLOB_AD = b"lcm/state-key"
_STATE_BLOB_AD = b"lcm/state"
_PROVISION_AD = b"lcm/provision"
_ADMIN_AD = b"lcm/admin"
_MIGRATION_AD = b"lcm/migration"

#: Protocol-level dummy operation: sequenced and hash-chained like any other
#: operation, but not passed to ``F``.  Used for stability polling.
NOP_OPERATION = ("__LCM_NOP__",)

_NOP_BYTES = serde.encode(list(NOP_OPERATION))


@dataclass
class AuditRecord:
    """One executed operation, as seen by the trusted context.

    Only populated when the context is created with ``audit=True`` (test /
    verification mode).  The consistency checkers join these logs across
    all enclave instances to validate fork-linearizability globally.
    """

    sequence: int
    client_id: int
    operation: bytes
    result: bytes
    chain: bytes


class LcmContext:
    """Alg. 2, as an enclave program.

    Build instances through :func:`make_lcm_program_factory`, which closes
    over the functionality and configuration so the enclave can recreate a
    pristine program object at every epoch start.
    """

    PROGRAM_CODE = b"lcm-trusted-context-v1"
    DEVELOPER = "lcm-reproduction"

    def __init__(self, functionality: Functionality, *, audit: bool = False,
                 quorum_override: int | None = None,
                 piggyback_state: bool = False) -> None:
        self._functionality = functionality
        self._audit = audit
        self._quorum_override = quorum_override
        # Sec. 5.2 optimisation: return the sealed state with the reply
        # instead of an ocall, eliminating one enclave transition.
        self._piggyback_state = piggyback_state
        # volatile protected memory M — lost at epoch end
        self._env: EnclaveEnv | None = None
        self._sealing_key: AeadKey | None = None     # kS
        self._state_key: AeadKey | None = None       # kP
        self._communication_key: AeadKey | None = None  # kC
        self._admin_key: AeadKey | None = None       # kA (admin channel)
        self._sequence = 0                           # t
        self._chain = GENESIS_HASH                   # h
        self._entries: dict[int, ClientEntry] = {}   # V
        self._state: Any = None                      # s
        self._provisioned = False
        self._halted: SecurityViolation | None = None
        self._dh: DhKeyPair | None = None
        self._migration_nonce: bytes | None = None
        self._migrated_out = False
        self.audit_log: list[AuditRecord] = []

    # ------------------------------------------------------------- lifecycle

    def on_start(self, env: EnclaveEnv) -> None:
        """The paper's ``init``: runs at every epoch start."""
        self._env = env
        self._sealing_key = env.get_key(b"lcm-sealing")
        blob = env.ocall_load()
        if blob is None:
            # First epoch ever: wait for the admin to bootstrap us.
            return
        self._restore(blob)

    def _restore(self, blob: bytes) -> None:
        """Unseal and adopt a stored state (possibly rolled back by S —
        LCM detects that later, through client verification)."""
        try:
            blob_key, blob_state = serde.decode(blob)
        except Exception as exc:  # malformed outer framing
            raise AuthenticationFailure(f"stored blob malformed: {exc}") from exc
        key_material = auth_decrypt(
            blob_key, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        self._state_key = AeadKey(key_material, label="kP")
        plain = auth_decrypt(
            blob_state, self._state_key, associated_data=_STATE_BLOB_AD
        )
        state, wire_entries, kc_material, ka_material, quorum = serde.decode(plain)
        self._state = state
        self._entries = {
            client_id: ClientEntry.from_wire(entry)
            for client_id, entry in wire_entries.items()
        }
        self._communication_key = AeadKey(kc_material, label="kC")
        self._admin_key = AeadKey(ka_material, label="kA")
        self._quorum_override = quorum if quorum else None
        if self._entries:
            _, top = argmax_entry(self._entries)
            self._sequence = top.last_sequence
            self._chain = top.last_chain
        self._provisioned = True

    def _sealed_blob(self) -> bytes:
        """Seal (s, V, kC, kA) under kP, and kP under kS."""
        wire_entries = {
            client_id: entry.to_wire() for client_id, entry in self._entries.items()
        }
        plain = serde.encode(
            [
                self._state,
                wire_entries,
                self._communication_key.material,
                self._admin_key.material,
                self._quorum_override or 0,
            ]
        )
        blob_state = auth_encrypt(
            plain, self._state_key, associated_data=_STATE_BLOB_AD
        )
        blob_key = auth_encrypt(
            self._state_key.material, self._sealing_key, associated_data=_KEY_BLOB_AD
        )
        return serde.encode([blob_key, blob_state])

    def _seal_and_store(self) -> None:
        """Seal the state and persist it through the (untrusted) host."""
        self._env.ocall_store(self._sealed_blob())

    # ----------------------------------------------------------------- ecalls

    def ecall(self, name: str, payload: Any) -> Any:
        """Dispatch one enclave call; refuses everything once halted."""
        if self._halted is not None:
            raise type(self._halted)(f"context halted: {self._halted}")
        handlers: dict[str, Callable[[Any], Any]] = {
            "invoke": self._ecall_invoke,
            "invoke_batch": self._ecall_invoke_batch,
            "attest": self._ecall_attest,
            "provision": self._ecall_provision,
            "admin": self._ecall_admin,
            "status": self._ecall_status,
            "migration_challenge": self._ecall_migration_challenge,
            "migration_export": self._ecall_migration_export,
            "migration_import": self._ecall_migration_import,
            "export_audit_log": self._ecall_export_audit,
        }
        handler = handlers.get(name)
        if handler is None:
            raise ConfigurationError(f"unknown ecall {name!r}")
        return handler(payload)

    # ------------------------------------------------------------ bootstrap

    def _ecall_attest(self, nonce: bytes) -> Any:
        """Produce an attestation report whose user data binds the
        challenge nonce and a fresh DH public key for the secure channel
        (Sec. 4.3 phase 2)."""
        self._dh = DhKeyPair.generate(self._env.secure_random(32))
        user_data = nonce + self._dh.public_bytes()
        return self._env.create_report(user_data)

    def _ecall_provision(self, payload: dict) -> bool:
        """Install keys sent by the admin over the attested DH channel."""
        if self._provisioned:
            raise ConfigurationError("context already provisioned")
        if self._dh is None:
            raise ConfigurationError("provision before attestation challenge")
        channel = self._dh.shared_key(public_from_bytes(payload["admin_public"]))
        plain = auth_decrypt(
            payload["bundle"], channel, associated_data=_PROVISION_AD
        )
        kp_material, kc_material, ka_material, client_ids, quorum = serde.decode(plain)
        self._state_key = AeadKey(kp_material, label="kP")
        self._communication_key = AeadKey(kc_material, label="kC")
        self._admin_key = AeadKey(ka_material, label="kA")
        self._quorum_override = quorum if quorum else None
        self._entries = {client_id: ClientEntry() for client_id in client_ids}
        self._state = self._functionality.initial_state()
        self._provisioned = True
        self._seal_and_store()
        return True

    # ---------------------------------------------------------------- invoke

    def _ecall_invoke(self, message: bytes):
        reply = self._process_invoke(message)
        if self._piggyback_state:
            # Sec. 5.2: hand the sealed state back with the reply; the
            # untrusted server writes it to disk (it cannot read or forge
            # it — only delay or roll it back, which LCM detects anyway).
            return {"reply": reply, "state": self._sealed_blob()}
        self._seal_and_store()
        return reply

    def _ecall_invoke_batch(self, messages: list[bytes]):
        """Batched processing (Sec. 5.2): state is stored once per batch."""
        replies = [self._process_invoke(message) for message in messages]
        if self._piggyback_state:
            return {"replies": replies, "state": self._sealed_blob()}
        self._seal_and_store()
        return replies

    def _process_invoke(self, message: bytes) -> bytes:
        if not self._provisioned:
            raise ConfigurationError("context not provisioned")
        # A message that fails authentication is rejected but does NOT halt
        # the context: it carries no evidence about T's own state (it may be
        # network garbage or a removed client's stale key), and halting on
        # it would let anyone deny service with one forged packet.  Halting
        # is reserved for *authenticated* context mismatches below, which
        # prove a rollback/forking attack.
        invoke = InvokePayload.unseal(message, self._communication_key)
        entry = self._entries.get(invoke.client_id)
        if entry is None:
            raise self._halt(
                SecurityViolation(f"unknown client {invoke.client_id}")
            )

        # Sec. 4.6.1 retry, case "crashed after store": the operation was
        # executed and recorded but the REPLY was lost.  Detect it by the
        # acknowledged marker and re-send the stored reply.
        if (
            invoke.retry
            and entry.acknowledged == invoke.last_sequence
            and entry.last_sequence > invoke.last_sequence
        ):
            return self._resend_reply(invoke, entry)

        # The verification at the heart of the protocol:
        # assert V[i] = (*, tc, hc)
        if entry.last_sequence != invoke.last_sequence:
            if invoke.last_sequence < entry.last_sequence:
                raise self._halt(
                    ReplayDetected(
                        f"client {invoke.client_id} presented stale sequence "
                        f"{invoke.last_sequence} < {entry.last_sequence}"
                    )
                )
            raise self._halt(
                RollbackDetected(
                    f"client {invoke.client_id} is ahead of T "
                    f"({invoke.last_sequence} > {entry.last_sequence}): "
                    "T's state was rolled back"
                )
            )
        if entry.last_chain != invoke.last_chain:
            raise self._halt(
                ForkDetected(
                    f"client {invoke.client_id} hash-chain value diverges from V: "
                    "histories have forked"
                )
            )

        # Execute, sequence and chain the operation.
        self._sequence += 1
        operation = serde.decode(invoke.operation)
        if self._is_nop(operation):
            result: Any = None
        else:
            result, self._state = self._functionality.apply(self._state, operation)
        self._chain = chain_extend(
            self._chain, invoke.operation, self._sequence, invoke.client_id
        )
        result_bytes = serde.encode(result)
        self._entries[invoke.client_id] = ClientEntry(
            acknowledged=invoke.last_sequence,
            last_sequence=self._sequence,
            last_chain=self._chain,
            last_result=result_bytes,
        )
        stable = stable_with_quorum(self._entries, self._quorum())
        if self._audit:
            self.audit_log.append(
                AuditRecord(
                    sequence=self._sequence,
                    client_id=invoke.client_id,
                    operation=invoke.operation,
                    result=result_bytes,
                    chain=self._chain,
                )
            )
        reply = ReplyPayload(
            sequence=self._sequence,
            chain=self._chain,
            result=result_bytes,
            stable_sequence=stable,
            previous_chain=invoke.last_chain,
        )
        return reply.seal(self._communication_key)

    def _resend_reply(self, invoke: InvokePayload, entry: ClientEntry) -> bytes:
        """Reproduce the lost REPLY from the V[i] record (retry extension)."""
        reply = ReplyPayload(
            sequence=entry.last_sequence,
            chain=entry.last_chain,
            result=entry.last_result,
            stable_sequence=stable_with_quorum(self._entries, self._quorum()),
            previous_chain=invoke.last_chain,
        )
        return reply.seal(self._communication_key)

    @staticmethod
    def _is_nop(operation: Any) -> bool:
        return (
            isinstance(operation, (list, tuple))
            and len(operation) == 1
            and operation[0] == NOP_OPERATION[0]
        )

    def _quorum(self) -> int:
        if self._quorum_override is not None:
            return min(self._quorum_override, len(self._entries))
        return majority_quorum(len(self._entries))

    def _halt(self, violation: SecurityViolation) -> SecurityViolation:
        """Record the violation and refuse all further processing."""
        self._halted = violation
        return violation

    # ----------------------------------------------------------- membership

    def _ecall_admin(self, box: bytes) -> Any:
        """Admin requests (join / leave / rotate kC), authenticated with kA."""
        if not self._provisioned:
            raise ConfigurationError("context not provisioned")
        plain = auth_decrypt(box, self._admin_key, associated_data=_ADMIN_AD)
        request = serde.decode(plain)
        verb = request[0]
        if verb == "ADD_CLIENT":
            (_, client_id) = request
            if client_id in self._entries:
                raise MembershipError(f"client {client_id} already in the group")
            self._entries[client_id] = ClientEntry()
            self._seal_and_store()
            return True
        if verb == "REMOVE_CLIENT":
            (_, client_id, new_kc_material) = request
            if client_id not in self._entries:
                raise MembershipError(f"client {client_id} not in the group")
            del self._entries[client_id]
            self._communication_key = AeadKey(new_kc_material, label="kC")
            self._seal_and_store()
            return True
        raise MembershipError(f"unknown admin request {verb!r}")

    # ------------------------------------------------------------ migration

    def _ecall_migration_challenge(self, _payload: Any) -> bytes:
        """Origin side, step 1: emit a nonce to challenge the target with."""
        if not self._provisioned:
            raise ConfigurationError("only a provisioned context can migrate out")
        self._migration_nonce = self._env.secure_random(16)
        return self._migration_nonce

    def _ecall_migration_export(self, payload: dict) -> dict:
        """Origin side, step 2: verify the target's quote, open a DH channel
        bound to it, and export (kP, kC, kA, s, V) through that channel.

        After a successful export the origin stops processing requests
        (Sec. 4.6.2: "T stops processing requests and provides its current
        state to T'")."""
        from repro.crypto.attestation import Quote, QuoteVerifier

        if not self._provisioned:
            raise ConfigurationError("only a provisioned context can migrate out")
        if self._migration_nonce is None:
            raise ConfigurationError("migration export before challenge")
        verifier: QuoteVerifier = payload["verifier"]
        quote: Quote = payload["quote"]
        verifier.verify(
            quote,
            expected_measurement=self._env.measurement,
            nonce=self._migration_nonce,
        )
        target_public = public_from_bytes(quote.user_data[16 : 16 + 256])
        dh = DhKeyPair.generate(self._env.secure_random(32))
        channel = dh.shared_key(target_public)
        wire_entries = {
            client_id: entry.to_wire() for client_id, entry in self._entries.items()
        }
        bundle = serde.encode(
            [
                self._state_key.material,
                self._communication_key.material,
                self._admin_key.material,
                self._state,
                wire_entries,
                self._quorum_override or 0,
            ]
        )
        sealed = auth_encrypt(bundle, channel, associated_data=_MIGRATION_AD)
        self._migrated_out = True
        self._halted = SecurityViolation("context migrated out; no longer serving")
        return {"origin_public": dh.public_bytes(), "bundle": sealed}

    def _ecall_migration_import(self, payload: dict) -> bool:
        """Target side: receive the state over the DH channel and resume."""
        if self._provisioned:
            raise ConfigurationError("target context already provisioned")
        if self._dh is None:
            raise ConfigurationError("import before attestation challenge")
        channel = self._dh.shared_key(public_from_bytes(payload["origin_public"]))
        plain = auth_decrypt(
            payload["bundle"], channel, associated_data=_MIGRATION_AD
        )
        (kp, kc, ka, state, wire_entries, quorum) = serde.decode(plain)
        self._state_key = AeadKey(kp, label="kP")
        self._communication_key = AeadKey(kc, label="kC")
        self._admin_key = AeadKey(ka, label="kA")
        self._state = state
        self._entries = {
            client_id: ClientEntry.from_wire(entry)
            for client_id, entry in wire_entries.items()
        }
        self._quorum_override = quorum if quorum else None
        if self._entries:
            _, top = argmax_entry(self._entries)
            self._sequence = top.last_sequence
            self._chain = top.last_chain
        self._provisioned = True
        self._seal_and_store()
        return True

    # -------------------------------------------------------------- queries

    def _ecall_status(self, _payload: Any) -> dict:
        """Non-sensitive status snapshot (used by tests and the harness)."""
        return {
            "provisioned": self._provisioned,
            "sequence": self._sequence,
            "clients": sorted(self._entries),
            "halted": self._halted is not None,
            "migrated_out": self._migrated_out,
        }

    def _ecall_export_audit(self, _payload: Any) -> list[AuditRecord]:
        if not self._audit:
            raise ConfigurationError("context was not created in audit mode")
        return list(self.audit_log)


def make_lcm_program_factory(
    functionality_factory: Callable[[], Functionality],
    *,
    audit: bool = False,
    quorum_override: int | None = None,
    piggyback_state: bool = False,
) -> Callable[[], LcmContext]:
    """Build the program factory handed to the TEE platform.

    The factory is invoked at every epoch start, so each epoch begins with
    pristine volatile memory — persistent identity lives only in the sealed
    blob, exactly as the paper requires.
    """

    def factory() -> LcmContext:
        return LcmContext(
            functionality_factory(),
            audit=audit,
            quorum_override=quorum_override,
            piggyback_state=piggyback_state,
        )

    return factory
