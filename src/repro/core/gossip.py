"""Out-of-band fork detection between clients (Sec. 3.2.1).

Fork-linearizability guarantees that once the server has split two clients
into different forks it can never rejoin them undetected — "the clients can
detect this through a lightweight, out-of-band mechanism".  This module is
that mechanism: clients exchange authenticated *chain tokens* (their
observed ``(t, h)`` pairs) over any side channel (email, chat, a different
server) and compare them.

Two clients are provably forked when they hold tokens with the **same
sequence number but different chain values** — the trusted context assigns
each sequence number exactly once, so an honest execution admits a single
chain value per sequence number.  Each client therefore keeps a bounded
window of its recently observed pairs (constant storage, in the spirit of
the protocol) so that comparisons have sequence numbers in common.

Tokens are MACed under the group's communication key ``kC``, so a
malicious relay cannot forge or tamper with them — it can only drop them,
which is the usual (detectable-by-silence) DoS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.errors import ForkDetected, SecurityViolation

_TOKEN_AD = b"lcm/gossip-token"

#: How many recent (t, h) observations a client retains for comparison.
DEFAULT_WINDOW = 64


@dataclass(frozen=True)
class ForkEvidence:
    """Cryptographic witness of a forking attack: one sequence number,
    two distinct chain values, observed by two different clients."""

    sequence: int
    client_a: int
    chain_a: bytes
    client_b: int
    chain_b: bytes

    def describe(self) -> str:
        return (
            f"clients {self.client_a} and {self.client_b} observed different "
            f"histories at sequence {self.sequence}: the server forked them"
        )


@dataclass
class ChainWindow:
    """Bounded record of a client's observed (sequence, chain) pairs."""

    client_id: int
    capacity: int = DEFAULT_WINDOW
    points: dict[int, bytes] = field(default_factory=dict)

    def observe(self, sequence: int, chain: bytes) -> None:
        self.points[sequence] = chain
        if len(self.points) > self.capacity:
            del self.points[min(self.points)]

    def token(self, key: AeadKey) -> bytes:
        """Export an authenticated token carrying the whole window."""
        payload = serde.encode(
            [self.client_id, {seq: chain for seq, chain in self.points.items()}]
        )
        return auth_encrypt(payload, key, associated_data=_TOKEN_AD)


def open_token(token: bytes, key: AeadKey) -> tuple[int, dict[int, bytes]]:
    """Verify and parse a gossip token.  Raises on tampering."""
    payload = auth_decrypt(token, key, associated_data=_TOKEN_AD)
    client_id, points = serde.decode(payload)
    if not isinstance(points, dict):
        raise SecurityViolation("malformed gossip token")
    return client_id, points


def compare_windows(
    window_a: ChainWindow, window_b: ChainWindow
) -> ForkEvidence | None:
    """Direct comparison of two clients' windows (same-process helper)."""
    for sequence, chain_a in window_a.points.items():
        chain_b = window_b.points.get(sequence)
        if chain_b is not None and chain_b != chain_a:
            return ForkEvidence(
                sequence=sequence,
                client_a=window_a.client_id,
                chain_a=chain_a,
                client_b=window_b.client_id,
                chain_b=chain_b,
            )
    return None


def cross_check(token_a: bytes, token_b: bytes, key: AeadKey) -> ForkEvidence | None:
    """Compare two authenticated tokens received over the side channel.

    Returns :class:`ForkEvidence` when the tokens witness a fork, ``None``
    when every shared sequence number carries the same chain value (which
    does *not* prove the absence of a fork — only agreement on the
    compared window).
    """
    client_a, points_a = open_token(token_a, key)
    client_b, points_b = open_token(token_b, key)
    for sequence, chain_a in points_a.items():
        chain_b = points_b.get(sequence)
        if chain_b is not None and chain_b != chain_a:
            return ForkEvidence(
                sequence=sequence,
                client_a=client_a,
                chain_a=chain_a,
                client_b=client_b,
                chain_b=chain_b,
            )
    return None


class GossipMesh:
    """Convenience driver: register clients, cross-check all pairs.

    ``attach(client)`` hooks an :class:`~repro.core.client.LcmClient` so
    every completed operation lands in the client's window automatically.
    ``sweep()`` compares all pairs and raises :class:`ForkDetected` with
    the first evidence found.
    """

    def __init__(self, key: AeadKey, *, window: int = DEFAULT_WINDOW) -> None:
        self._key = key
        self._window_size = window
        self._windows: dict[int, ChainWindow] = {}

    def attach(self, client) -> ChainWindow:
        window = ChainWindow(client.client_id, capacity=self._window_size)
        self._windows[client.client_id] = window
        original_complete = client._complete

        def completing(operation, reply_box):
            result = original_complete(operation, reply_box)
            window.observe(client.last_sequence, client.last_chain)
            return result

        client._complete = completing
        return window

    def sweep(self) -> None:
        """Cross-check every pair of attached clients."""
        ids = sorted(self._windows)
        for index, id_a in enumerate(ids):
            for id_b in ids[index + 1 :]:
                evidence = cross_check(
                    self._windows[id_a].token(self._key),
                    self._windows[id_b].token(self._key),
                    self._key,
                )
                if evidence is not None:
                    raise ForkDetected(evidence.describe())
