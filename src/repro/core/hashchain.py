"""Hash-chain views: reconstructing and validating operation histories.

The chain value ``h`` returned to a client condenses the entire operation
history (Sec. 4.2.2).  This module bridges the protocol and the offline
consistency checkers: given an audit log exported by a trusted context (in
test mode), it recomputes the chain and verifies that every recorded
``(t, h)`` pair is the unique honest digest of the log prefix — which is
what lets the checkers treat chain values as history identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import GENESIS_HASH, chain_extend
from repro.errors import SecurityViolation
from repro.core.context import AuditRecord


@dataclass(frozen=True)
class ChainPoint:
    """A (sequence, chain value) pair observed by some party."""

    sequence: int
    chain: bytes


def verify_audit_chain(log: list[AuditRecord]) -> None:
    """Check that an exported audit log is internally chain-consistent.

    Raises :class:`~repro.errors.SecurityViolation` if any record's chain
    value does not extend its predecessor's, or if sequence numbers are not
    the consecutive integers 1..n.
    """
    value = GENESIS_HASH
    for position, record in enumerate(log, start=1):
        if record.sequence != position:
            raise SecurityViolation(
                f"audit log gap: expected sequence {position}, got {record.sequence}"
            )
        value = chain_extend(value, record.operation, record.sequence, record.client_id)
        if value != record.chain:
            raise SecurityViolation(
                f"audit log chain mismatch at sequence {record.sequence}"
            )


def chain_points(log: list[AuditRecord]) -> list[ChainPoint]:
    """The (t, h) trajectory of a log — one point per operation."""
    return [ChainPoint(record.sequence, record.chain) for record in log]


def prefix_for(log: list[AuditRecord], point: ChainPoint) -> list[AuditRecord]:
    """The log prefix a party holding ``point`` has implicitly endorsed.

    Raises :class:`SecurityViolation` if the point does not lie on this
    log's trajectory (the party belongs to a different fork).
    """
    if point.sequence == 0:
        return []
    if point.sequence > len(log):
        raise SecurityViolation("observed sequence beyond this log")
    record = log[point.sequence - 1]
    if record.chain != point.chain:
        raise SecurityViolation(
            f"chain value at sequence {point.sequence} does not match this log"
        )
    return log[: point.sequence]


def common_prefix_length(log_a: list[AuditRecord], log_b: list[AuditRecord]) -> int:
    """Length of the longest common prefix of two audit logs."""
    length = 0
    for record_a, record_b in zip(log_a, log_b):
        if (
            record_a.sequence != record_b.sequence
            or record_a.client_id != record_b.client_id
            or record_a.operation != record_b.operation
            or record_a.chain != record_b.chain
        ):
            break
        length += 1
    return length
