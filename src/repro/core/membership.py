"""Dynamic group membership (Sec. 4.6.3).

Joining: the admin sends the shared ``kC`` to the new client over a secure
out-of-band channel and instructs ``T`` (over the admin channel ``kA``) to
add the client to the protocol state ``V``.

Leaving: the admin generates a fresh ``k'C``, distributes it to the
*remaining* clients, and sends a removal request carrying ``k'C`` to ``T``;
from then on the removed client's messages fail authentication.

Existing :class:`~repro.core.client.LcmClient` objects are rekeyed in
place; their ``(tc, hc)`` context is unaffected because the hash chain does
not depend on ``kC``.
"""

from __future__ import annotations

from repro import serde
from repro.crypto.aead import AeadKey, auth_encrypt
from repro.errors import MembershipError
from repro.core.bootstrap import Deployment
from repro.core.client import LcmClient, Transport

_ADMIN_AD = b"lcm/admin"


def _admin_request(deployment: Deployment, request: list) -> bytes:
    return auth_encrypt(
        serde.encode(request), deployment.admin_key, associated_data=_ADMIN_AD
    )


def add_client(
    deployment: Deployment,
    host,
    client_id: int,
    transport: Transport,
    **client_kwargs,
) -> LcmClient:
    """Admit a new client to the group and return its protocol instance."""
    if client_id in deployment.client_ids:
        raise MembershipError(f"client {client_id} already in the group")
    accepted = host.enclave.ecall(
        "admin", _admin_request(deployment, ["ADD_CLIENT", client_id])
    )
    if accepted is not True:
        raise MembershipError("context rejected the join request")
    deployment.client_ids.append(client_id)
    return deployment.make_client(client_id, transport, **client_kwargs)


def remove_client(deployment: Deployment, host, client_id: int) -> AeadKey:
    """Expel a client: rotate ``kC`` and update the trusted context.

    Returns the fresh communication key after installing it into every
    remaining client object.  The removed client keeps the old key, which
    the context no longer accepts.
    """
    if client_id not in deployment.client_ids:
        raise MembershipError(f"client {client_id} not in the group")
    import os

    new_key = AeadKey(os.urandom(16), label="kC")
    accepted = host.enclave.ecall(
        "admin",
        _admin_request(
            deployment, ["REMOVE_CLIENT", client_id, new_key.material]
        ),
    )
    if accepted is not True:
        raise MembershipError("context rejected the removal request")
    deployment.client_ids.remove(client_id)
    deployment.clients.pop(client_id, None)
    deployment.communication_key = new_key
    for client in deployment.clients.values():
        client._key = new_key  # out-of-band key redistribution
    return new_key
