"""INVOKE / REPLY wire format (Sec. 4.1-4.2).

Both message types are canonically serialized (:mod:`repro.serde`) and then
protected end-to-end with authenticated encryption under the communication
key ``kC``.  Associated data carries the message direction so a REPLY box
can never be confused for an INVOKE box even under the same key.

Field map (paper notation):

======== ===============================================================
INVOKE   ``[tc, hc, o, i, retry]`` — client's last sequence number, last
         hash-chain value, serialized operation, client id, retry marker
         (the Sec. 4.6.1 extension).
REPLY    ``[t, h, r, q, h'c]`` — assigned sequence number, new chain
         value, serialized result, majority-stable sequence number, and
         an echo of the client's previous chain value.
======== ===============================================================

The module also measures the protocol's metadata overhead for the Sec. 6.3
experiment: the number of bytes an LCM message adds over a bare
(encrypted) operation, which is constant in the operation size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro import serde
from repro.crypto import fastpath as _fastpath
from repro.crypto.aead import (
    OVERHEAD,
    AeadKey,
    _fresh_nonce,
    _mac_frame,
    auth_decrypt,
    auth_decrypt_batch,
    auth_encrypt,
    auth_encrypt_batch,
)
from repro.errors import AuthenticationFailure, InvalidReply

_INVOKE_AD = b"lcm/invoke"
_REPLY_AD = b"lcm/reply"

# Hand-rolled fast paths below produce the exact canonical serde bytes of
# the documented field lists (verified against serde in the test suite);
# decoding falls back to the generic serde walk on any layout surprise.
_INVOKE_PREFIX = (
    b"L" + (6).to_bytes(8, "big") + b"S" + (6).to_bytes(8, "big") + b"INVOKE" + b"I"
)
_REPLY_PREFIX = (
    b"L" + (6).to_bytes(8, "big") + b"S" + (5).to_bytes(8, "big") + b"REPLY" + b"I"
)


class _Fallback(Exception):
    """Internal: fast-path decode did not match; use the generic decoder."""


_INVOKE_PREFIX_LEN = len(_INVOKE_PREFIX) + 16  # prefix plus the first int
_REPLY_PREFIX_LEN = len(_REPLY_PREFIX) + 16
_ORD_B = ord("B")
_ORD_I = ord("I")

_int_from_bytes = int.from_bytes

# Zero-copy field readers (struct reads straight out of the buffer; the
# slice + int.from_bytes route allocates an intermediate bytes per field).
_read_u64 = struct.Struct(">Q").unpack_from
_read_2u64 = struct.Struct(">QQ").unpack_from

#: ``B || len(32)`` — the framing of a 32-byte chain value, precomputed
#: because every hash-chain field the protocol emits is SHA-256 sized.
_CHAIN_FRAME = b"B" + (32).to_bytes(8, "big")


def _read_i128(data: bytes, offset: int) -> int:
    """The canonical 16-byte big-endian signed int at ``offset``."""
    hi, lo = _read_2u64(data, offset)
    value = (hi << 64) | lo
    if hi >> 63:
        value -= 1 << 128
    return value


def decode_invoke(data: bytes) -> tuple[int, int, bytes, bytes, bool]:
    """Decode canonical INVOKE bytes to ``(i, tc, hc, o, retry)``.

    Tuple-returning core of :meth:`InvokePayload.decode` — the trusted
    context's batch loop consumes the fields directly, skipping one
    object construction per message.
    """
    try:
        # Field reads are inlined (two decodes run per round trip);
        # IndexError/struct.error from a short message falls back like a
        # tag mismatch.
        size = len(data)
        if size < _INVOKE_PREFIX_LEN or not data.startswith(_INVOKE_PREFIX):
            raise _Fallback
        tc = _read_i128(data, _INVOKE_PREFIX_LEN - 16)
        if data[_INVOKE_PREFIX_LEN] != _ORD_B:
            raise _Fallback
        start = _INVOKE_PREFIX_LEN + 9
        end = start + _read_u64(data, _INVOKE_PREFIX_LEN + 1)[0]
        if end > size:
            raise _Fallback
        hc = data[start:end]
        if data[end] != _ORD_B:
            raise _Fallback
        start = end + 9
        end = start + _read_u64(data, end + 1)[0]
        if end > size:
            raise _Fallback
        op = data[start:end]
        if data[end] != _ORD_I or end + 18 != size:
            raise _Fallback
        client_id = _read_i128(data, end + 1)
        retry_tag = data[size - 1]
        if retry_tag == 84:  # "T"
            return client_id, tc, hc, op, True
        if retry_tag == 70:  # "F"
            return client_id, tc, hc, op, False
        raise _Fallback
    except (_Fallback, IndexError, struct.error):
        pass
    tag, tc, hc, op, client_id, retry = serde.decode(data)
    if tag != "INVOKE":
        raise InvalidReply(f"expected INVOKE payload, got {tag!r}")
    return client_id, tc, hc, op, retry


def decode_reply(data: bytes) -> tuple[int, bytes, bytes, int, bytes]:
    """Decode canonical REPLY bytes to ``(t, h, r, q, h'c)`` — the
    tuple-returning core of :meth:`ReplyPayload.decode` (the client hot
    path consumes the fields directly)."""
    try:
        size = len(data)
        if size < _REPLY_PREFIX_LEN or not data.startswith(_REPLY_PREFIX):
            raise _Fallback
        t = _read_i128(data, _REPLY_PREFIX_LEN - 16)
        if data[_REPLY_PREFIX_LEN] != _ORD_B:
            raise _Fallback
        start = _REPLY_PREFIX_LEN + 9
        end = start + _read_u64(data, _REPLY_PREFIX_LEN + 1)[0]
        if end > size:
            raise _Fallback
        h = data[start:end]
        if data[end] != _ORD_B:
            raise _Fallback
        start = end + 9
        end = start + _read_u64(data, end + 1)[0]
        if end > size:
            raise _Fallback
        r = data[start:end]
        if data[end] != _ORD_I or end + 17 + 9 > size:
            raise _Fallback
        q = _read_i128(data, end + 1)
        offset = end + 17
        if data[offset] != _ORD_B:
            raise _Fallback
        start = offset + 9
        end = start + _read_u64(data, offset + 1)[0]
        if end != size:
            raise _Fallback
        return t, h, r, q, data[start:end]
    except (_Fallback, IndexError, struct.error):
        pass
    tag, t, h, r, q, prev = serde.decode(data)
    if tag != "REPLY":
        raise InvalidReply(f"expected REPLY payload, got {tag!r}")
    return t, h, r, q, prev


def unseal_reply(box: bytes, key: AeadKey) -> tuple[int, bytes, bytes, int, bytes]:
    """Verify, decrypt and decode one REPLY box to its field tuple.

    With the compiled fastpath backend the MAC check, decrypt and field
    decode fuse into a single C call (the client completes one reply per
    operation, so this is half the client's per-op crypto work); any
    authentic-but-non-canonical payload falls back to the generic
    decoder on the C-returned plaintext.
    """
    open_reply = _fastpath.BACKEND.open_reply
    if open_reply is not None:
        if len(box) < OVERHEAD:
            raise AuthenticationFailure("ciphertext too short to be authentic")
        plain, meta = open_reply(
            key._enc_key,
            key._mac_key,
            _mac_frame(key, _REPLY_AD),
            _REPLY_PREFIX,
            box,
        )
        if plain is None:
            raise AuthenticationFailure("MAC verification failed")
        if meta is not None:
            return (
                meta[0],
                plain[meta[1] : meta[1] + meta[2]],
                plain[meta[3] : meta[3] + meta[4]],
                meta[5],
                plain[meta[6] : meta[6] + meta[7]],
            )
        return decode_reply(plain)
    return decode_reply(auth_decrypt(box, key, associated_data=_REPLY_AD))


def unseal_replies(
    boxes: list[bytes], key: AeadKey
) -> list[tuple[int, bytes, bytes, int, bytes]]:
    """Verify, decrypt and decode a whole batch of REPLY boxes in one C
    call (the client side of an invoke batch: MAC check, keystream, XOR
    and field decode for every reply share one crossing).

    Semantically identical to ``[unseal_reply(box, key) for box in
    boxes]``: the first unauthentic box raises with that box's
    diagnostics, and any authentic-but-non-canonical payload sends the
    whole batch through the generic per-box decoder.
    """
    open_batch = _fastpath.BACKEND.open_reply_batch
    if open_batch is not None and boxes:
        opened = open_batch(
            key._enc_key,
            key._mac_key,
            _mac_frame(key, _REPLY_AD),
            _REPLY_PREFIX,
            boxes,
        )
        if type(opened) is tuple:
            plain, meta = opened
            fields = []
            for index in range(len(boxes)):
                base = 8 * index
                fields.append(
                    (
                        meta[base],
                        plain[meta[base + 1] : meta[base + 1] + meta[base + 2]],
                        plain[meta[base + 3] : meta[base + 3] + meta[base + 4]],
                        meta[base + 5],
                        plain[meta[base + 6] : meta[base + 6] + meta[base + 7]],
                    )
                )
            return fields
        if opened <= -2000:  # non-canonical payload: re-parse generically
            return [unseal_reply(box, key) for box in boxes]
        bad = -1000 - opened
        if len(boxes[bad]) < OVERHEAD:
            raise AuthenticationFailure("ciphertext too short to be authentic")
        raise AuthenticationFailure("MAC verification failed")
    return [unseal_reply(box, key) for box in boxes]


def unseal_invoke(box: bytes, key: AeadKey) -> tuple[int, int, bytes, bytes, bool]:
    """Verify, decrypt and decode one INVOKE box to its field tuple."""
    return decode_invoke(auth_decrypt(box, key, associated_data=_INVOKE_AD))


def unseal_invokes(
    boxes: list[bytes], key: AeadKey
) -> list[tuple[int, int, bytes, bytes, bool]]:
    """Verify, decrypt and decode a whole INVOKE batch to field tuples
    (one AEAD pass; all-or-nothing MAC check, see
    :func:`~repro.crypto.aead.auth_decrypt_batch`)."""
    plains = auth_decrypt_batch(boxes, key, associated_data=_INVOKE_AD)
    return [decode_invoke(plain) for plain in plains]


@dataclass(slots=True, unsafe_hash=True)
class InvokePayload:
    """Plaintext content of an INVOKE message.

    Slots (not frozen) keep construction cheap — payloads are created four
    times per protocol round trip and a frozen ``__init__`` (which routes
    through ``object.__setattr__``) costs several times a plain one.
    Treat instances as immutable.
    """

    client_id: int
    last_sequence: int        # tc
    last_chain: bytes         # hc
    operation: bytes          # o, canonically serialized
    retry: bool = False

    def encode(self) -> bytes:
        chain = self.last_chain
        try:
            return (
                _INVOKE_PREFIX
                + self.last_sequence.to_bytes(16, "big", signed=True)
                + (
                    _CHAIN_FRAME
                    if len(chain) == 32
                    else b"B" + len(chain).to_bytes(8, "big")
                )
                + chain
                + b"B" + len(self.operation).to_bytes(8, "big") + self.operation
                + b"I" + self.client_id.to_bytes(16, "big", signed=True)
                + (b"T" if self.retry else b"F")
            )
        except OverflowError:
            raise serde.SerdeError(
                "INVOKE sequence/client id exceeds the canonical 128-bit range"
            ) from None

    @classmethod
    def decode(cls, data: bytes) -> "InvokePayload":
        client_id, tc, hc, op, retry = decode_invoke(data)
        return cls(
            client_id=client_id,
            last_sequence=tc,
            last_chain=hc,
            operation=op,
            retry=retry,
        )

    def seal(self, key: AeadKey, *, nonce: bytes | None = None) -> bytes:
        """Encode and seal in one step.

        With the compiled fastpath backend the canonical encode, keystream,
        XOR and MAC fuse into a single C call — the client builds one
        INVOKE per attempt, so this removes the other half of its per-op
        crypto overhead.  Fields outside the C codec's int64 range (never
        produced by the protocol, whose counters start at zero) take the
        generic path.
        """
        seal_invoke = _fastpath.BACKEND.seal_invoke
        if (
            seal_invoke is not None
            and 0 <= self.last_sequence < 2**63
            and 0 <= self.client_id < 2**63
        ):
            box = seal_invoke(
                key._enc_key,
                key._mac_key,
                nonce if nonce is not None else _fresh_nonce(),
                _mac_frame(key, _INVOKE_AD),
                _INVOKE_PREFIX,
                self.last_sequence,
                self.last_chain,
                self.operation,
                self.client_id,
                self.retry,
            )
            if box is not None:
                return box
        return auth_encrypt(
            self.encode(), key, associated_data=_INVOKE_AD, nonce=nonce
        )

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "InvokePayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_INVOKE_AD))


def seal_invokes(
    payloads: list[InvokePayload],
    key: AeadKey,
    *,
    nonces: list[bytes] | None = None,
) -> list[bytes]:
    """Encode and seal a whole batch of INVOKEs in one C call (the
    client side of an invoke batch; byte-identical to sealing each
    payload individually under the same nonces).

    ``nonces`` defaults to fresh random nonces, one per payload.
    """
    batch = _fastpath.BACKEND.seal_invoke_batch
    if batch is not None and all(
        0 <= payload.last_sequence < 2**63
        and 0 <= payload.client_id < 2**63
        for payload in payloads
    ):
        if nonces is None:
            nonces = [_fresh_nonce() for _ in payloads]
        boxes = batch(
            key._enc_key,
            key._mac_key,
            nonces,
            _mac_frame(key, _INVOKE_AD),
            _INVOKE_PREFIX,
            [
                (
                    payload.last_sequence,
                    payload.last_chain,
                    payload.operation,
                    payload.client_id,
                    payload.retry,
                )
                for payload in payloads
            ],
        )
        if boxes is not None:
            return boxes
    if nonces is None:
        return [payload.seal(key) for payload in payloads]
    return [
        payload.seal(key, nonce=nonce)
        for payload, nonce in zip(payloads, nonces)
    ]


def encode_reply(
    sequence: int,
    chain: bytes,
    result: bytes,
    stable_sequence: int,
    previous_chain: bytes,
) -> bytes:
    """Canonical REPLY bytes from bare fields.

    The trusted context's batch path encodes straight from its protocol
    variables (no intermediate :class:`ReplyPayload` per operation);
    :meth:`ReplyPayload.encode` delegates here so there is exactly one
    codec.
    """
    try:
        return (
            _REPLY_PREFIX
            + sequence.to_bytes(16, "big", signed=True)
            + (
                _CHAIN_FRAME
                if len(chain) == 32
                else b"B" + len(chain).to_bytes(8, "big")
            )
            + chain
            + b"B" + len(result).to_bytes(8, "big") + result
            + b"I" + stable_sequence.to_bytes(16, "big", signed=True)
            + (
                _CHAIN_FRAME
                if len(previous_chain) == 32
                else b"B" + len(previous_chain).to_bytes(8, "big")
            )
            + previous_chain
        )
    except OverflowError:
        raise serde.SerdeError(
            "REPLY sequence number exceeds the canonical 128-bit range"
        ) from None


def seal_reply(
    encoded: bytes, key: AeadKey, *, nonce: bytes | None = None
) -> bytes:
    """Seal one canonically encoded REPLY under ``kC``.

    ``nonce`` pins the box nonce — the trusted context derives its reply
    nonces from a per-epoch counter sequence so the sealed bytes are
    independent of pool state and thread interleaving.
    """
    return auth_encrypt(encoded, key, associated_data=_REPLY_AD, nonce=nonce)


def seal_replies(
    encoded: list[bytes], key: AeadKey, *, nonces: list[bytes] | None = None
) -> list[bytes]:
    """Seal a batch of canonically encoded REPLYs in one AEAD pass."""
    return auth_encrypt_batch(
        encoded, key, associated_data=_REPLY_AD, nonces=nonces
    )


@dataclass(slots=True, unsafe_hash=True)
class ReplyPayload:
    """Plaintext content of a REPLY message.

    Slots (not frozen) for the same hot-path reason as
    :class:`InvokePayload`; treat instances as immutable.
    """

    sequence: int             # t
    chain: bytes              # h
    result: bytes             # r, canonically serialized
    stable_sequence: int      # q
    previous_chain: bytes     # h'c — echo of the client's hc

    def encode(self) -> bytes:
        return encode_reply(
            self.sequence,
            self.chain,
            self.result,
            self.stable_sequence,
            self.previous_chain,
        )

    @classmethod
    def decode(cls, data: bytes) -> "ReplyPayload":
        t, h, r, q, prev = decode_reply(data)
        return cls(
            sequence=t, chain=h, result=r, stable_sequence=q, previous_chain=prev
        )

    def seal(self, key: AeadKey, *, nonce: bytes | None = None) -> bytes:
        return auth_encrypt(
            self.encode(), key, associated_data=_REPLY_AD, nonce=nonce
        )

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "ReplyPayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_REPLY_AD))


# ----------------------------------------------------------- overhead probes


def invoke_metadata_overhead(operation: bytes, key: AeadKey) -> int:
    """Bytes an LCM INVOKE adds over an encrypted bare operation.

    The paper measured 45 bytes with its compact binary framing
    (Sec. 6.3); our self-describing serde framing is a little larger but
    equally *constant* in the operation size — the property Fig. 4 relies
    on.  The baseline is a bare operation under the same AEAD, so the
    constant 28-byte AEAD expansion cancels out.
    """
    from repro.crypto.hashing import GENESIS_HASH

    payload = InvokePayload(
        client_id=1, last_sequence=0, last_chain=GENESIS_HASH, operation=operation
    )
    bare = auth_encrypt(operation, key, associated_data=_INVOKE_AD)
    return len(payload.seal(key)) - len(bare)


def reply_metadata_overhead(result: bytes, key: AeadKey) -> int:
    """Bytes an LCM REPLY adds over an encrypted bare result."""
    from repro.crypto.hashing import GENESIS_HASH

    payload = ReplyPayload(
        sequence=1,
        chain=GENESIS_HASH,
        result=result,
        stable_sequence=0,
        previous_chain=GENESIS_HASH,
    )
    bare = auth_encrypt(result, key, associated_data=_REPLY_AD)
    return len(payload.seal(key)) - len(bare)
