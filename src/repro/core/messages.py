"""INVOKE / REPLY wire format (Sec. 4.1-4.2).

Both message types are canonically serialized (:mod:`repro.serde`) and then
protected end-to-end with authenticated encryption under the communication
key ``kC``.  Associated data carries the message direction so a REPLY box
can never be confused for an INVOKE box even under the same key.

Field map (paper notation):

======== ===============================================================
INVOKE   ``[tc, hc, o, i, retry]`` — client's last sequence number, last
         hash-chain value, serialized operation, client id, retry marker
         (the Sec. 4.6.1 extension).
REPLY    ``[t, h, r, q, h'c]`` — assigned sequence number, new chain
         value, serialized result, majority-stable sequence number, and
         an echo of the client's previous chain value.
======== ===============================================================

The module also measures the protocol's metadata overhead for the Sec. 6.3
experiment: the number of bytes an LCM message adds over a bare
(encrypted) operation, which is constant in the operation size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.errors import InvalidReply

_INVOKE_AD = b"lcm/invoke"
_REPLY_AD = b"lcm/reply"

# Hand-rolled fast paths below produce the exact canonical serde bytes of
# the documented field lists (verified against serde in the test suite);
# decoding falls back to the generic serde walk on any layout surprise.
_INVOKE_PREFIX = (
    b"L" + (6).to_bytes(8, "big") + b"S" + (6).to_bytes(8, "big") + b"INVOKE" + b"I"
)
_REPLY_PREFIX = (
    b"L" + (6).to_bytes(8, "big") + b"S" + (5).to_bytes(8, "big") + b"REPLY" + b"I"
)


class _Fallback(Exception):
    """Internal: fast-path decode did not match; use the generic decoder."""


_INVOKE_PREFIX_LEN = len(_INVOKE_PREFIX) + 16  # prefix plus the first int
_REPLY_PREFIX_LEN = len(_REPLY_PREFIX) + 16
_ORD_B = ord("B")
_ORD_I = ord("I")


@dataclass(slots=True, unsafe_hash=True)
class InvokePayload:
    """Plaintext content of an INVOKE message.

    Slots (not frozen) keep construction cheap — payloads are created four
    times per protocol round trip and a frozen ``__init__`` (which routes
    through ``object.__setattr__``) costs several times a plain one.
    Treat instances as immutable.
    """

    client_id: int
    last_sequence: int        # tc
    last_chain: bytes         # hc
    operation: bytes          # o, canonically serialized
    retry: bool = False

    def encode(self) -> bytes:
        try:
            return (
                _INVOKE_PREFIX
                + self.last_sequence.to_bytes(16, "big", signed=True)
                + b"B" + len(self.last_chain).to_bytes(8, "big") + self.last_chain
                + b"B" + len(self.operation).to_bytes(8, "big") + self.operation
                + b"I" + self.client_id.to_bytes(16, "big", signed=True)
                + (b"T" if self.retry else b"F")
            )
        except OverflowError:
            raise serde.SerdeError(
                "INVOKE sequence/client id exceeds the canonical 128-bit range"
            ) from None

    @classmethod
    def decode(cls, data: bytes) -> "InvokePayload":
        try:
            # Field reads are inlined (two decodes run per round trip);
            # IndexError from a short message falls back like a tag mismatch.
            size = len(data)
            if size < _INVOKE_PREFIX_LEN or not data.startswith(_INVOKE_PREFIX):
                raise _Fallback
            tc = int.from_bytes(
                data[_INVOKE_PREFIX_LEN - 16 : _INVOKE_PREFIX_LEN], "big", signed=True
            )
            if data[_INVOKE_PREFIX_LEN] != _ORD_B:
                raise _Fallback
            start = _INVOKE_PREFIX_LEN + 9
            end = start + int.from_bytes(data[_INVOKE_PREFIX_LEN + 1 : start], "big")
            if end > size:
                raise _Fallback
            hc = data[start:end]
            if data[end] != _ORD_B:
                raise _Fallback
            start = end + 9
            end = start + int.from_bytes(data[end + 1 : start], "big")
            if end > size:
                raise _Fallback
            op = data[start:end]
            if data[end] != _ORD_I or end + 18 != size:
                raise _Fallback
            client_id = int.from_bytes(data[end + 1 : end + 17], "big", signed=True)
            retry_tag = data[size - 1]
            if retry_tag == 84:  # "T"
                retry = True
            elif retry_tag == 70:  # "F"
                retry = False
            else:
                raise _Fallback
            return cls(
                client_id=client_id,
                last_sequence=tc,
                last_chain=hc,
                operation=op,
                retry=retry,
            )
        except (_Fallback, IndexError):
            pass
        tag, tc, hc, op, client_id, retry = serde.decode(data)
        if tag != "INVOKE":
            raise InvalidReply(f"expected INVOKE payload, got {tag!r}")
        return cls(
            client_id=client_id,
            last_sequence=tc,
            last_chain=hc,
            operation=op,
            retry=retry,
        )

    def seal(self, key: AeadKey) -> bytes:
        return auth_encrypt(self.encode(), key, associated_data=_INVOKE_AD)

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "InvokePayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_INVOKE_AD))


@dataclass(slots=True, unsafe_hash=True)
class ReplyPayload:
    """Plaintext content of a REPLY message.

    Slots (not frozen) for the same hot-path reason as
    :class:`InvokePayload`; treat instances as immutable.
    """

    sequence: int             # t
    chain: bytes              # h
    result: bytes             # r, canonically serialized
    stable_sequence: int      # q
    previous_chain: bytes     # h'c — echo of the client's hc

    def encode(self) -> bytes:
        try:
            return (
                _REPLY_PREFIX
                + self.sequence.to_bytes(16, "big", signed=True)
                + b"B" + len(self.chain).to_bytes(8, "big") + self.chain
                + b"B" + len(self.result).to_bytes(8, "big") + self.result
                + b"I" + self.stable_sequence.to_bytes(16, "big", signed=True)
                + b"B" + len(self.previous_chain).to_bytes(8, "big")
                + self.previous_chain
            )
        except OverflowError:
            raise serde.SerdeError(
                "REPLY sequence number exceeds the canonical 128-bit range"
            ) from None

    @classmethod
    def decode(cls, data: bytes) -> "ReplyPayload":
        try:
            size = len(data)
            if size < _REPLY_PREFIX_LEN or not data.startswith(_REPLY_PREFIX):
                raise _Fallback
            t = int.from_bytes(
                data[_REPLY_PREFIX_LEN - 16 : _REPLY_PREFIX_LEN], "big", signed=True
            )
            if data[_REPLY_PREFIX_LEN] != _ORD_B:
                raise _Fallback
            start = _REPLY_PREFIX_LEN + 9
            end = start + int.from_bytes(data[_REPLY_PREFIX_LEN + 1 : start], "big")
            if end > size:
                raise _Fallback
            h = data[start:end]
            if data[end] != _ORD_B:
                raise _Fallback
            start = end + 9
            end = start + int.from_bytes(data[end + 1 : start], "big")
            if end > size:
                raise _Fallback
            r = data[start:end]
            if data[end] != _ORD_I or end + 17 + 9 > size:
                raise _Fallback
            q = int.from_bytes(data[end + 1 : end + 17], "big", signed=True)
            offset = end + 17
            if data[offset] != _ORD_B:
                raise _Fallback
            start = offset + 9
            end = start + int.from_bytes(data[offset + 1 : start], "big")
            if end != size:
                raise _Fallback
            prev = data[start:end]
            return cls(
                sequence=t, chain=h, result=r, stable_sequence=q, previous_chain=prev
            )
        except (_Fallback, IndexError):
            pass
        tag, t, h, r, q, prev = serde.decode(data)
        if tag != "REPLY":
            raise InvalidReply(f"expected REPLY payload, got {tag!r}")
        return cls(
            sequence=t, chain=h, result=r, stable_sequence=q, previous_chain=prev
        )

    def seal(self, key: AeadKey) -> bytes:
        return auth_encrypt(self.encode(), key, associated_data=_REPLY_AD)

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "ReplyPayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_REPLY_AD))


# ----------------------------------------------------------- overhead probes


def invoke_metadata_overhead(operation: bytes, key: AeadKey) -> int:
    """Bytes an LCM INVOKE adds over an encrypted bare operation.

    The paper measured 45 bytes with its compact binary framing
    (Sec. 6.3); our self-describing serde framing is a little larger but
    equally *constant* in the operation size — the property Fig. 4 relies
    on.  The baseline is a bare operation under the same AEAD, so the
    constant 28-byte AEAD expansion cancels out.
    """
    from repro.crypto.hashing import GENESIS_HASH

    payload = InvokePayload(
        client_id=1, last_sequence=0, last_chain=GENESIS_HASH, operation=operation
    )
    bare = auth_encrypt(operation, key, associated_data=_INVOKE_AD)
    return len(payload.seal(key)) - len(bare)


def reply_metadata_overhead(result: bytes, key: AeadKey) -> int:
    """Bytes an LCM REPLY adds over an encrypted bare result."""
    from repro.crypto.hashing import GENESIS_HASH

    payload = ReplyPayload(
        sequence=1,
        chain=GENESIS_HASH,
        result=result,
        stable_sequence=0,
        previous_chain=GENESIS_HASH,
    )
    bare = auth_encrypt(result, key, associated_data=_REPLY_AD)
    return len(payload.seal(key)) - len(bare)
