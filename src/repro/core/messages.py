"""INVOKE / REPLY wire format (Sec. 4.1-4.2).

Both message types are canonically serialized (:mod:`repro.serde`) and then
protected end-to-end with authenticated encryption under the communication
key ``kC``.  Associated data carries the message direction so a REPLY box
can never be confused for an INVOKE box even under the same key.

Field map (paper notation):

======== ===============================================================
INVOKE   ``[tc, hc, o, i, retry]`` — client's last sequence number, last
         hash-chain value, serialized operation, client id, retry marker
         (the Sec. 4.6.1 extension).
REPLY    ``[t, h, r, q, h'c]`` — assigned sequence number, new chain
         value, serialized result, majority-stable sequence number, and
         an echo of the client's previous chain value.
======== ===============================================================

The module also measures the protocol's metadata overhead for the Sec. 6.3
experiment: the number of bytes an LCM message adds over a bare
(encrypted) operation, which is constant in the operation size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import serde
from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.errors import InvalidReply

_INVOKE_AD = b"lcm/invoke"
_REPLY_AD = b"lcm/reply"


@dataclass(frozen=True)
class InvokePayload:
    """Plaintext content of an INVOKE message."""

    client_id: int
    last_sequence: int        # tc
    last_chain: bytes         # hc
    operation: bytes          # o, canonically serialized
    retry: bool = False

    def encode(self) -> bytes:
        return serde.encode(
            [
                "INVOKE",
                self.last_sequence,
                self.last_chain,
                self.operation,
                self.client_id,
                self.retry,
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "InvokePayload":
        tag, tc, hc, op, client_id, retry = serde.decode(data)
        if tag != "INVOKE":
            raise InvalidReply(f"expected INVOKE payload, got {tag!r}")
        return cls(
            client_id=client_id,
            last_sequence=tc,
            last_chain=hc,
            operation=op,
            retry=retry,
        )

    def seal(self, key: AeadKey) -> bytes:
        return auth_encrypt(self.encode(), key, associated_data=_INVOKE_AD)

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "InvokePayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_INVOKE_AD))


@dataclass(frozen=True)
class ReplyPayload:
    """Plaintext content of a REPLY message."""

    sequence: int             # t
    chain: bytes              # h
    result: bytes             # r, canonically serialized
    stable_sequence: int      # q
    previous_chain: bytes     # h'c — echo of the client's hc

    def encode(self) -> bytes:
        return serde.encode(
            [
                "REPLY",
                self.sequence,
                self.chain,
                self.result,
                self.stable_sequence,
                self.previous_chain,
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "ReplyPayload":
        tag, t, h, r, q, prev = serde.decode(data)
        if tag != "REPLY":
            raise InvalidReply(f"expected REPLY payload, got {tag!r}")
        return cls(
            sequence=t, chain=h, result=r, stable_sequence=q, previous_chain=prev
        )

    def seal(self, key: AeadKey) -> bytes:
        return auth_encrypt(self.encode(), key, associated_data=_REPLY_AD)

    @classmethod
    def unseal(cls, box: bytes, key: AeadKey) -> "ReplyPayload":
        return cls.decode(auth_decrypt(box, key, associated_data=_REPLY_AD))


# ----------------------------------------------------------- overhead probes


def invoke_metadata_overhead(operation: bytes, key: AeadKey) -> int:
    """Bytes an LCM INVOKE adds over an encrypted bare operation.

    The paper measured 45 bytes with its compact binary framing
    (Sec. 6.3); our self-describing serde framing is a little larger but
    equally *constant* in the operation size — the property Fig. 4 relies
    on.  The baseline is a bare operation under the same AEAD, so the
    constant 28-byte AEAD expansion cancels out.
    """
    from repro.crypto.hashing import GENESIS_HASH

    payload = InvokePayload(
        client_id=1, last_sequence=0, last_chain=GENESIS_HASH, operation=operation
    )
    bare = auth_encrypt(operation, key, associated_data=_INVOKE_AD)
    return len(payload.seal(key)) - len(bare)


def reply_metadata_overhead(result: bytes, key: AeadKey) -> int:
    """Bytes an LCM REPLY adds over an encrypted bare result."""
    from repro.crypto.hashing import GENESIS_HASH

    payload = ReplyPayload(
        sequence=1,
        chain=GENESIS_HASH,
        result=result,
        stable_sequence=0,
        previous_chain=GENESIS_HASH,
    )
    bare = auth_encrypt(result, key, associated_data=_REPLY_AD)
    return len(payload.seal(key)) - len(bare)
