"""Server migration (Sec. 4.6.2): move ``T`` to a different physical TEE.

The origin context takes over the admin's role and bootstraps the target:

1. target server starts ``T'``; it finds either no state or a blob sealed
   under a *foreign* sealing key, so it stays unprovisioned;
2. origin emits a challenge nonce; target attests against it (the quote
   binds a fresh DH public key);
3. origin verifies the quote — it has prior knowledge of the LCM
   measurement because it *is* an LCM context, so it checks the target runs
   the same program on a genuine TEE — and exports
   ``(kP, kC, kA, s, V)`` through the DH channel;
4. target installs the state, seals it under *its own* platform's sealing
   key, and resumes; origin permanently stops serving.

No trusted party participates; the untrusted hosts merely ferry messages —
they cannot read or forge the bundle, and feeding the export to a
non-genuine "enclave" fails at quote verification.

Completely transparent to clients: their ``(tc, hc)`` still verify against
the migrated ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.attestation import QuoteVerifier
from repro.crypto.dh import PUBLIC_KEY_BYTES
from repro.errors import MigrationError


def migrate(origin_host, target_host, quote_verifier: QuoteVerifier) -> None:
    """Run the migration handshake between two server hosts.

    ``origin_host`` must run a provisioned LCM context; ``target_host``
    must run a fresh (unprovisioned) one on a *different* platform.  The
    ``quote_verifier`` is the attestation-group verification material the
    origin uses to check the target's quote.

    Raises :class:`~repro.errors.MigrationError` on a broken handshake and
    propagates :class:`~repro.errors.AttestationFailure` if the target is
    not a genuine LCM enclave.
    """
    if not origin_host.enclave.running:
        raise MigrationError("origin enclave is not running")
    if not target_host.enclave.running:
        target_host.start()

    status = target_host.enclave.ecall("status", None)
    if status["provisioned"]:
        raise MigrationError("target context is already provisioned")

    # Step 2: challenge/attest.  The untrusted hosts relay these values.
    nonce = origin_host.enclave.ecall("migration_challenge", None)
    report = target_host.enclave.ecall("attest", nonce)
    quote = target_host.platform.quote(report)

    # Step 3: origin verifies and exports over the bound DH channel.
    export = origin_host.enclave.ecall(
        "migration_export", {"quote": quote, "verifier": quote_verifier}
    )

    # Step 4: target imports and reseals under its own platform key.
    imported = target_host.enclave.ecall("migration_import", export)
    if imported is not True:
        raise MigrationError("target refused the migration bundle")


@dataclass
class _SessionEntry:
    """One cached (host pair -> enclave DH publics) association."""

    host_a: Any
    host_b: Any
    public_a: bytes  # host_a's enclave public from the handshake quote
    public_b: bytes


class HandoffSessionCache:
    """Reuse the mutually attested handoff channel across reshard plans.

    The ~25 ms cost of :func:`migrate_keys` is dominated by the four
    2048-bit DH operations of the mutual attestation.  Both enclaves
    already cache the derived channel keyed by the peer's DH public (see
    ``LcmContext._handoff_sessions``); this cache is the *untrusted*
    half — it remembers which publics a given (source, target) host pair
    attested with, so a later plan over the same pair can name the
    session instead of re-running the handshake.

    Rekeying is nonce-fresh by construction: a generation bump
    (recovery) or a rebalance replaces the host object, the identity
    match below fails, and the next handoff runs a full handshake with
    fresh DH keys on both sides.  An epoch restart wipes the enclave's
    volatile session — probed with ``handoff_session_check`` *before*
    any key leaves the source — and likewise falls back to a handshake.
    Entries are symmetric: the A->B handshake also serves B->A (the
    compensation direction), with independent per-direction sequence
    numbers kept inside the enclaves.
    """

    #: Entry bound: a generation bump or removal replaces the host
    #: object, leaving its entry unreachable by identity lookup — the
    #: oldest entries are evicted so long-lived elastic clusters neither
    #: pin dead host graphs nor degrade the linear identity scan.
    MAX_ENTRIES = 64

    def __init__(self) -> None:
        self.entries: list[_SessionEntry] = []
        self.hits = 0
        self.handshakes = 0

    def lookup(self, source, target) -> tuple[bytes, bytes] | None:
        """``(source_public, target_public)`` for a cached pair, either
        orientation, or ``None``."""
        for entry in self.entries:
            if entry.host_a is source and entry.host_b is target:
                return entry.public_a, entry.public_b
            if entry.host_b is source and entry.host_a is target:
                return entry.public_b, entry.public_a
        return None

    def store(self, source, target, source_public: bytes, target_public: bytes) -> None:
        self.drop(source, target)
        while len(self.entries) >= self.MAX_ENTRIES:
            self.entries.pop(0)
        self.entries.append(
            _SessionEntry(source, target, source_public, target_public)
        )

    def drop(self, source, target) -> None:
        self.entries = [
            entry
            for entry in self.entries
            if not (
                (entry.host_a is source and entry.host_b is target)
                or (entry.host_b is source and entry.host_a is target)
            )
        ]


def migrate_keys(
    source_host,
    target_host,
    quote_verifier: QuoteVerifier,
    arcs,
    *,
    sessions: HandoffSessionCache | None = None,
) -> int:
    """Hand the keys on ``arcs`` from one *live* group to another.

    The elastic-resharding counterpart of :func:`migrate`: both contexts
    are provisioned and keep serving afterwards; only the service-state
    entries whose ring position falls on one of the ``[lo, hi)`` arc
    intervals move.  The handshake is mutually attested — each side
    challenges the other and verifies its quote before trusting anything
    — because unlike whole-context migration the receiver is a live group
    whose state an untrusted host must not be able to inject into:

    1. source emits a challenge; target attests against it (the quote
       binds a fresh DH public key), and emits its own challenge;
    2. source attests against the target's challenge the same way;
    3. source verifies the target's quote, removes the arc keys from its
       state as a sequenced, chained handoff operation, and seals them to
       the attested DH channel;
    4. target verifies the source's quote, opens the bundle over the same
       channel, and installs the items as its own sequenced operation.

    Both sides chain their half of the handoff into their audit history,
    so the moved items are bound into *two* hash chains and any
    tampering, replay, or post-handoff rollback is detected by the usual
    client verification.  Returns the number of keys moved.

    Raises :class:`~repro.errors.MigrationError` on a broken handshake
    and propagates attestation/authentication failures from the contexts.
    """
    for host, role in ((source_host, "source"), (target_host, "target")):
        if not host.enclave.running:
            raise MigrationError(f"{role} enclave is not running")
    if sessions is not None:
        cached = sessions.lookup(source_host, target_host)
        if cached is not None:
            source_public, target_public = cached
            # both enclaves must still hold the session (epoch restarts
            # wipe volatile memory) — probe before any key leaves the
            # source, because a failed import cannot be retried after the
            # export already sequenced the keys out of the state
            if source_host.enclave.ecall(
                "handoff_session_check", target_public
            ) and target_host.enclave.ecall(
                "handoff_session_check", source_public
            ):
                sessions.hits += 1
                export = source_host.enclave.ecall(
                    "handoff_export",
                    {"session_peer": target_public, "arcs": arcs},
                )
                installed = target_host.enclave.ecall(
                    "handoff_import",
                    {"session_peer": source_public, "bundle": export["bundle"]},
                )
                return _check_installed(installed, export["moved"])
            sessions.drop(source_host, target_host)
    source_nonce = source_host.enclave.ecall("handoff_challenge", None)
    target_report = target_host.enclave.ecall("attest", source_nonce)
    target_quote = target_host.platform.quote(target_report)
    target_nonce = target_host.enclave.ecall("handoff_challenge", None)
    source_report = source_host.enclave.ecall("attest", target_nonce)
    source_quote = source_host.platform.quote(source_report)
    export = source_host.enclave.ecall(
        "handoff_export",
        {"quote": target_quote, "verifier": quote_verifier, "arcs": arcs},
    )
    installed = target_host.enclave.ecall(
        "handoff_import",
        {
            "quote": source_quote,
            "verifier": quote_verifier,
            "bundle": export["bundle"],
        },
    )
    if sessions is not None:
        sessions.handshakes += 1
        sessions.store(
            source_host,
            target_host,
            source_quote.user_data[16 : 16 + PUBLIC_KEY_BYTES],
            target_quote.user_data[16 : 16 + PUBLIC_KEY_BYTES],
        )
    return _check_installed(installed, export["moved"])


def _check_installed(installed: int, moved: int) -> int:
    if installed != moved:
        raise MigrationError(
            f"target installed {installed} of {moved} handed-off keys"
        )
    return installed
