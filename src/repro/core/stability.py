"""Operation stability (Sec. 3.2.2, 4.5; Definitions 1 and 2).

The trusted context maintains a map ``V`` with, per client ``i``:

``ta``  sequence number of the last operation *acknowledged* by ``Ci``
        (T learns of the acknowledgement from the ``tc`` field of Ci's
        next INVOKE);
``t``   sequence number of Ci's last operation;
``h``   hash-chain value after Ci's last operation;
``r``   serialized result of Ci's last operation (the Sec. 4.6.1 retry
        extension stores it so a lost REPLY can be reproduced).

``majority-stable(V)`` returns "the largest acknowledged sequence number in
V that is less than or equal to more than n/2 sequence numbers in V": an
operation with sequence number ``q`` is known to have been observed by
client ``j`` once ``ta_j >= q`` (by completing its operation ``ta_j``,
``Cj`` observed the whole history prefix up to ``ta_j``).

:class:`StabilityTracker` is the client-side mirror: it records each
completed operation's sequence number and lets applications ask which of
*their* operations are stable among a majority (and therefore linearizable
— "any subsequence of a history that contains only operations that are
stable among a majority is linearizable", Sec. 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import GENESIS_HASH
from repro.errors import ConfigurationError


@dataclass(slots=True)
class ClientEntry:
    """One row of the protocol-state map ``V``."""

    acknowledged: int = 0          # ta
    last_sequence: int = 0         # t
    last_chain: bytes = GENESIS_HASH  # h
    last_result: bytes = b""       # r (retry extension)

    def to_wire(self) -> list:
        return [self.acknowledged, self.last_sequence, self.last_chain, self.last_result]

    @classmethod
    def from_wire(cls, data: list) -> "ClientEntry":
        ta, t, h, r = data
        return cls(acknowledged=ta, last_sequence=t, last_chain=h, last_result=r)


def stable_with_quorum(entries: dict[int, ClientEntry], quorum: int) -> int:
    """Largest sequence number acknowledged by at least ``quorum`` clients.

    With ``quorum == len(entries)`` this is full stability (Definition 1
    w.r.t. all clients); with a majority quorum it is Definition 2.
    """
    if not entries:
        return 0
    if not 1 <= quorum <= len(entries):
        raise ConfigurationError(
            f"quorum {quorum} out of range for {len(entries)} clients"
        )
    acknowledged = [entry.acknowledged for entry in entries.values()]
    acknowledged.sort(reverse=True)
    return acknowledged[quorum - 1]


def majority_quorum(n: int) -> int:
    """Smallest integer strictly greater than n/2."""
    return n // 2 + 1


def majority_stable(entries: dict[int, ClientEntry]) -> int:
    """``majority-stable(V)`` from Alg. 2 (Definition 2)."""
    if not entries:
        return 0
    return stable_with_quorum(entries, majority_quorum(len(entries)))


def argmax_entry(entries: dict[int, ClientEntry]) -> tuple[int, ClientEntry]:
    """``argmax(V)``: the client whose last operation has the highest
    sequence number — used during recovery to rederive ``(t, h)``
    (Sec. 4.4)."""
    if not entries:
        raise ConfigurationError("V is empty")
    client_id = max(entries, key=lambda i: entries[i].last_sequence)
    return client_id, entries[client_id]


@dataclass
class StabilityTracker:
    """Client-side record of own operations and their stability status.

    ``observe(sequence, stable_sequence)`` is called for every completed
    operation (and for stability updates piggybacked on later replies).
    """

    own_sequences: list[int] = field(default_factory=list)
    stable_sequence: int = 0

    def observe(self, sequence: int | None, stable_sequence: int) -> None:
        if sequence is not None:
            self.own_sequences.append(sequence)
        # stable sequence numbers never decrease (Sec. 3.2.2)
        self.stable_sequence = max(self.stable_sequence, stable_sequence)

    def is_stable(self, sequence: int) -> bool:
        """Is the operation with this sequence number stable among a majority?"""
        return sequence <= self.stable_sequence

    def pending(self) -> list[int]:
        """Own operations not yet known to be majority-stable."""
        return [seq for seq in self.own_sequences if seq > self.stable_sequence]

    def all_stable(self) -> bool:
        return not self.pending()
