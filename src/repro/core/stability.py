"""Operation stability (Sec. 3.2.2, 4.5; Definitions 1 and 2).

The trusted context maintains a map ``V`` with, per client ``i``:

``ta``  sequence number of the last operation *acknowledged* by ``Ci``
        (T learns of the acknowledgement from the ``tc`` field of Ci's
        next INVOKE);
``t``   sequence number of Ci's last operation;
``h``   hash-chain value after Ci's last operation;
``r``   serialized result of Ci's last operation (the Sec. 4.6.1 retry
        extension stores it so a lost REPLY can be reproduced).

``majority-stable(V)`` returns "the largest acknowledged sequence number in
V that is less than or equal to more than n/2 sequence numbers in V": an
operation with sequence number ``q`` is known to have been observed by
client ``j`` once ``ta_j >= q`` (by completing its operation ``ta_j``,
``Cj`` observed the whole history prefix up to ``ta_j``).

:class:`StabilityTracker` is the client-side mirror: it records each
completed operation's sequence number and lets applications ask which of
*their* operations are stable among a majority (and therefore linearizable
— "any subsequence of a history that contains only operations that are
stable among a majority is linearizable", Sec. 3.2.2).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from dataclasses import dataclass, field

from repro.crypto.hashing import GENESIS_HASH
from repro.errors import ConfigurationError


@dataclass(slots=True)
class ClientEntry:
    """One row of the protocol-state map ``V``."""

    acknowledged: int = 0          # ta
    last_sequence: int = 0         # t
    last_chain: bytes = GENESIS_HASH  # h
    last_result: bytes = b""       # r (retry extension)

    def to_wire(self) -> list:
        return [self.acknowledged, self.last_sequence, self.last_chain, self.last_result]

    @classmethod
    def from_wire(cls, data: list) -> "ClientEntry":
        ta, t, h, r = data
        return cls(acknowledged=ta, last_sequence=t, last_chain=h, last_result=r)


class PackedRows:
    """``V`` as parallel packed columns instead of a dict of row objects.

    The batched invoke fast path hands the whole table to the native
    backend in one call: client ids, acknowledged markers and sequence
    numbers live in ``array('q')`` columns (machine int64, directly
    addressable from C through the buffer protocol), hash-chain values in
    one contiguous bytearray of 32-byte cells, and results — variable
    length, never read by the verification pass — as a plain list of
    bytes.  ``acks`` mirrors the acknowledged column in sorted order so
    ``majority-stable(V)`` stays one index per operation, exactly like
    the sorted-list mirror the dict representation kept.

    Rows are ordered by client id; ``slot`` maps a client id to its row
    index.  Membership events (insert/remove/replace) re-pack the
    columns — they are rare and small — while the per-operation path
    mutates a row's cells in place.

    Sequence numbers and acknowledged markers beyond int64 would overflow
    the columns; the protocol assigns them incrementally from zero, so the
    bound is unreachable in practice (client ids outside the range never
    enter ``V`` — an unknown id is rejected before any row is written).
    """

    CHAIN_BYTES = 32

    __slots__ = ("ids", "ack", "seq", "chains", "results", "slot", "acks")

    def __init__(self) -> None:
        self.ids = array("q")
        self.ack = array("q")
        self.seq = array("q")
        self.chains = bytearray()
        self.results: list[bytes] = []
        self.slot: dict[int, int] = {}
        self.acks = array("q")

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self.slot

    def client_ids(self) -> list[int]:
        """All client ids, ascending (rows are stored in id order)."""
        return self.ids.tolist()

    def entry(self, client_id: int) -> ClientEntry | None:
        """A snapshot :class:`ClientEntry` for one row (slow paths only;
        mutations go through the packed columns, not the snapshot)."""
        slot = self.slot.get(client_id)
        if slot is None:
            return None
        return ClientEntry(
            acknowledged=self.ack[slot],
            last_sequence=self.seq[slot],
            last_chain=self.chain_at(slot),
            last_result=self.results[slot],
        )

    def chain_at(self, slot: int) -> bytes:
        start = slot * self.CHAIN_BYTES
        return bytes(self.chains[start : start + self.CHAIN_BYTES])

    def to_entries(self) -> dict[int, ClientEntry]:
        """The dict-of-rows view (migration export, checkers, tests)."""
        return {
            client_id: self.entry(client_id)  # type: ignore[misc]
            for client_id in self.ids
        }

    def argmax(self) -> tuple[int, int, bytes]:
        """``argmax(V)``: (client id, sequence, chain) of the row with the
        highest last sequence number (recovery, Sec. 4.4)."""
        if not self.ids:
            raise ConfigurationError("V is empty")
        seq = self.seq
        top = max(range(len(seq)), key=seq.__getitem__)
        return self.ids[top], seq[top], self.chain_at(top)

    def stable(self, quorum: int) -> int:
        """``majority-stable(V)`` from the sorted acknowledged mirror."""
        acks = self.acks
        if not acks:
            return 0
        return acks[len(acks) - quorum]

    # ---------------------------------------------------------- membership

    def replace(self, entries: dict[int, ClientEntry]) -> None:
        """Adopt a whole new table (provision / restore / migration)."""
        self.ids = array("q", sorted(entries))
        self.ack = array("q", (entries[i].acknowledged for i in self.ids))
        self.seq = array("q", (entries[i].last_sequence for i in self.ids))
        chains = bytearray()
        results = []
        for client_id in self.ids:
            entry = entries[client_id]
            chain = entry.last_chain
            if len(chain) != self.CHAIN_BYTES:
                raise ConfigurationError(
                    f"client {client_id} chain value is {len(chain)} bytes; "
                    f"V rows hold {self.CHAIN_BYTES}-byte hash-chain values"
                )
            chains += chain
            results.append(entry.last_result)
        self.chains = chains
        self.results = results
        self.slot = {client_id: i for i, client_id in enumerate(self.ids)}
        self.acks = array("q", sorted(self.ack))

    def insert(self, client_id: int, entry: ClientEntry | None = None) -> None:
        """Add one row (admin join); rows stay packed in id order."""
        if client_id in self.slot:
            raise ConfigurationError(f"client {client_id} already has a row")
        entry = entry if entry is not None else ClientEntry()
        position = bisect_left(self.ids, client_id)
        self.ids.insert(position, client_id)
        self.ack.insert(position, entry.acknowledged)
        self.seq.insert(position, entry.last_sequence)
        self.chains[
            position * self.CHAIN_BYTES : position * self.CHAIN_BYTES
        ] = entry.last_chain
        self.results.insert(position, entry.last_result)
        self.slot = {cid: i for i, cid in enumerate(self.ids)}
        insort(self.acks, entry.acknowledged)

    def remove(self, client_id: int) -> None:
        """Drop one row (admin leave)."""
        position = self.slot.pop(client_id, None)
        if position is None:
            raise ConfigurationError(f"client {client_id} has no row")
        del self.acks[bisect_left(self.acks, self.ack[position])]
        del self.ids[position]
        del self.ack[position]
        del self.seq[position]
        del self.chains[
            position * self.CHAIN_BYTES : (position + 1) * self.CHAIN_BYTES
        ]
        del self.results[position]
        self.slot = {cid: i for i, cid in enumerate(self.ids)}


def stable_frontier(acknowledged: list[int], quorum: int) -> int:
    """Largest sequence number at or below ``quorum`` of the given acks.

    The raw-integer core of ``majority-stable(V)``: sort the acknowledged
    markers and take the ``quorum``-th largest.  Unlike
    :func:`stable_with_quorum` this tolerates fewer than ``quorum``
    supporters by returning 0 (nothing is stable yet) — the streaming
    verifier calls it per audit log, where a freshly forked log may have
    arbitrarily few supporting clients.
    """
    if quorum < 1:
        raise ConfigurationError(f"quorum {quorum} must be at least 1")
    if len(acknowledged) < quorum:
        return 0
    ordered = sorted(acknowledged, reverse=True)
    return ordered[quorum - 1]


def stable_with_quorum(entries: dict[int, ClientEntry], quorum: int) -> int:
    """Largest sequence number acknowledged by at least ``quorum`` clients.

    With ``quorum == len(entries)`` this is full stability (Definition 1
    w.r.t. all clients); with a majority quorum it is Definition 2.
    """
    if not entries:
        return 0
    if not 1 <= quorum <= len(entries):
        raise ConfigurationError(
            f"quorum {quorum} out of range for {len(entries)} clients"
        )
    return stable_frontier(
        [entry.acknowledged for entry in entries.values()], quorum
    )


def majority_quorum(n: int) -> int:
    """Smallest integer strictly greater than n/2."""
    return n // 2 + 1


def majority_stable(entries: dict[int, ClientEntry]) -> int:
    """``majority-stable(V)`` from Alg. 2 (Definition 2)."""
    if not entries:
        return 0
    return stable_with_quorum(entries, majority_quorum(len(entries)))


def argmax_entry(entries: dict[int, ClientEntry]) -> tuple[int, ClientEntry]:
    """``argmax(V)``: the client whose last operation has the highest
    sequence number — used during recovery to rederive ``(t, h)``
    (Sec. 4.4)."""
    if not entries:
        raise ConfigurationError("V is empty")
    client_id = max(entries, key=lambda i: entries[i].last_sequence)
    return client_id, entries[client_id]


@dataclass
class StabilityTracker:
    """Client-side record of own operations and their stability status.

    ``observe(sequence, stable_sequence)`` is called for every completed
    operation (and for stability updates piggybacked on later replies).
    """

    own_sequences: list[int] = field(default_factory=list)
    stable_sequence: int = 0

    def observe(self, sequence: int | None, stable_sequence: int) -> None:
        if sequence is not None:
            self.own_sequences.append(sequence)
        # stable sequence numbers never decrease (Sec. 3.2.2)
        self.stable_sequence = max(self.stable_sequence, stable_sequence)

    def is_stable(self, sequence: int) -> bool:
        """Is the operation with this sequence number stable among a majority?"""
        return sequence <= self.stable_sequence

    def pending(self) -> list[int]:
        """Own operations not yet known to be majority-stable."""
        return [seq for seq in self.own_sequences if seq > self.stable_sequence]

    def all_stable(self) -> bool:
        return not self.pending()
