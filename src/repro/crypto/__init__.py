"""Cryptographic substrate for the LCM reproduction.

The paper uses AES-GCM-128 for authenticated encryption and SHA-256 for the
operation hash chain (Sec. 5.2).  This package provides stdlib-only
equivalents with the same contracts:

- :mod:`repro.crypto.aead` — authenticated encryption with associated data
  (encrypt-then-MAC over a SHA-256 counter-mode keystream).
- :mod:`repro.crypto.hashing` — collision-resistant hashing and the
  ``hash(h || o || t || i)`` chain construction.
- :mod:`repro.crypto.keys` — the three-key hierarchy (kP, kS, kC) and
  deterministic key derivation.
- :mod:`repro.crypto.attestation` — reports, quotes and an EPID-style group
  signature model used by the TEE platform.
"""

from repro.crypto.aead import AeadKey, auth_decrypt, auth_encrypt
from repro.crypto.hashing import GENESIS_HASH, HashChain, secure_hash
from repro.crypto.keys import KeyPurpose, derive_key, generate_key

__all__ = [
    "AeadKey",
    "auth_encrypt",
    "auth_decrypt",
    "GENESIS_HASH",
    "HashChain",
    "secure_hash",
    "KeyPurpose",
    "derive_key",
    "generate_key",
]
