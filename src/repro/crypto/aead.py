"""Authenticated encryption with associated data (AEAD).

The paper protects every protocol message and every stored state blob with
AES-GCM-128 (``auth-encrypt`` / ``auth-decrypt`` in Sec. 4.1).  The standard
library has no AES-GCM, so we build an AEAD with the same *contract* from
primitives it does have:

- confidentiality: XOR with a SHA-256 counter-mode keystream derived from
  (key, nonce);
- integrity + authenticity: HMAC-SHA-256 over (nonce, associated data,
  ciphertext), truncated to 16 bytes to match GCM's tag size.

Tampering with a single bit of ciphertext, tag, nonce, or associated data
makes :func:`auth_decrypt` raise :class:`~repro.errors.AuthenticationFailure`
— exactly the behaviour Alg. 1/2 rely on ("auth-decrypt may also signal an
error; this is equivalent to an assert FALSE statement", Sec. 4.2.5).

Wire layout of a sealed box::

    nonce (12 bytes) || ciphertext (len(plaintext)) || tag (16 bytes)

so the constant ciphertext expansion is 28 bytes, comparable to GCM's
12-byte IV + 16-byte tag.

Implementation notes on the hot path (the wire format above is pinned by
golden-vector tests and unchanged):

- :class:`AeadKey` derives its encrypt/MAC subkeys and the HMAC key
  schedule once at construction instead of on every box;
- the keystream is produced in whole 32-byte blocks with one-shot SHA-256
  calls and a single ``join``, and XORed against the payload as one big
  integer rather than byte by byte;
- a small bounded cache keeps recently generated keystreams keyed by
  (subkey, nonce).  In this in-process simulation every box is encrypted
  by one party and decrypted by another within the same interpreter, so
  the decrypt side's keystream is a cache hit.  Reuse is safe because the
  cached bytes are only ever applied to the same (key, nonce) pair that
  produced them.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AuthenticationFailure, ConfigurationError

try:  # optional vector XOR for large payloads; the image bakes numpy in
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

KEY_SIZE = 16  # bytes; matches the paper's 128-bit keys
NONCE_SIZE = 12
TAG_SIZE = 16
OVERHEAD = NONCE_SIZE + TAG_SIZE

_BLOCK = hashlib.sha256().digest_size

_sha256 = hashlib.sha256
_join = b"".join

#: Precomputed big-endian counter suffixes for the common keystream lengths
#: (4096 blocks = 128 KiB); longer streams fall back to generating counters.
_COUNTERS = tuple(counter.to_bytes(8, "big") for counter in range(4096))

#: Recently generated keystreams, keyed by (enc subkey, nonce).  Bounded by
#: entry count and total bytes; evicted FIFO.
_KS_CACHE: dict[tuple[bytes, bytes], bytes] = {}
_KS_CACHE_MAX_ENTRIES = 256
_KS_CACHE_MAX_BYTES = 4 * 1024 * 1024
_ks_cache_bytes = 0


def _keystream(
    key: bytes,
    nonce: bytes,
    length: int,
    base: "hashlib._Hash | None" = None,
    cache: bool = True,
) -> bytes:
    """Generate ``length`` bytes of SHA-256 counter-mode keystream.

    ``base`` is an optional SHA-256 state already fed with
    ``b"lcm-ctr" + key`` (cached per :class:`AeadKey`); cloning it per
    block skips re-hashing the constant prefix and yields identical bytes.
    ``cache=False`` skips storing the stream (for boxes that are never
    decrypted by an in-process peer, e.g. sealed state sections).
    """
    global _ks_cache_bytes
    if length <= 0:
        return b""
    nblocks = -(-length // _BLOCK)
    cache_key = (key, nonce)
    cached = _KS_CACHE.get(cache_key)
    if cached is not None and len(cached) >= length:
        return cached[:length] if len(cached) != length else cached
    if nblocks <= len(_COUNTERS):
        counters = _COUNTERS[:nblocks]
    else:
        counters = [counter.to_bytes(8, "big") for counter in range(nblocks)]
    if base is not None:
        seeded = base.copy()
        seeded.update(nonce)
        clone = seeded.copy
        blocks = []
        append = blocks.append
        for counter in counters:
            block = clone()
            block.update(counter)
            append(block.digest())
        stream = _join(blocks)
    else:
        prefix = b"lcm-ctr" + key + nonce
        stream = _join([_sha256(prefix + counter).digest() for counter in counters])
    if cache and len(stream) <= _KS_CACHE_MAX_BYTES:
        if cached is not None:
            _ks_cache_bytes -= len(cached)
        _KS_CACHE[cache_key] = stream
        _ks_cache_bytes += len(stream)
        while (
            len(_KS_CACHE) > _KS_CACHE_MAX_ENTRIES
            or _ks_cache_bytes > _KS_CACHE_MAX_BYTES
        ) and len(_KS_CACHE) > 1:
            # evict oldest-first; the just-inserted entry is newest, and the
            # >1 guard means it is never evicted before its decrypt-side hit
            oldest = next(iter(_KS_CACHE))
            _ks_cache_bytes -= len(_KS_CACHE.pop(oldest))
    return stream[:length] if len(stream) != length else stream


#: Above this size numpy's vectorised byte XOR beats the big-int route.
_NP_XOR_THRESHOLD = 256


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR ``data`` against ``stream[:len(data)]`` in one vector operation."""
    length = len(data)
    if _np is not None and length >= _NP_XOR_THRESHOLD:
        a = _np.frombuffer(data, dtype=_np.uint8)
        b = _np.frombuffer(stream, dtype=_np.uint8, count=length)
        return (a ^ b).tobytes()
    if len(stream) != length:
        stream = stream[:length]
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(length, "big")


#: Fresh-nonce pool: one os.urandom syscall buys 512 nonces.  The bytes are
#: CSPRNG output either way; buffering them only amortises the syscall.
#: ``list.pop`` is atomic under the GIL (two threads never receive the same
#: nonce; a racing refill merely adds extra fresh nonces), and the pid guard
#: discards the pool in forked children so a child never replays nonces the
#: parent also hands out — nonce reuse under one key would be a two-time pad.
_NONCE_POOL: list[bytes] = []
_nonce_pid = 0


def _fresh_nonce() -> bytes:
    global _nonce_pid
    pid = os.getpid()
    if pid != _nonce_pid:
        _NONCE_POOL.clear()
        _nonce_pid = pid
    try:
        return _NONCE_POOL.pop()
    except IndexError:
        chunk = os.urandom(NONCE_SIZE * 512)
        _NONCE_POOL.extend(
            chunk[i : i + NONCE_SIZE] for i in range(0, len(chunk), NONCE_SIZE)
        )
        return _NONCE_POOL.pop()


def _hmac_pad_states(key: bytes) -> tuple["hashlib._Hash", "hashlib._Hash"]:
    """SHA-256 states pre-fed with the HMAC inner/outer pads for ``key``.

    Cloning these per MAC skips the per-call key schedule; the digests are
    byte-identical to ``hmac.new(key, payload, sha256)``.
    """
    padded = key + b"\x00" * (64 - len(key))
    inner = _sha256(bytes(b ^ 0x36 for b in padded))
    outer = _sha256(bytes(b ^ 0x5C for b in padded))
    return inner, outer


def _tag_for(key: "AeadKey", nonce, associated_data: bytes, ciphertext) -> bytes:
    """Truncated ``HMAC-SHA-256(mac_key, len(ad) || ad || nonce || ct)``.

    Byte-identical to ``hmac.new(mac_key, framed, sha256)`` (test-pinned),
    built from cloned pad states instead of a per-call key schedule.  The
    associated-data strings are a handful of protocol constants, so the
    inner state pre-fed with ``len(ad) || ad`` is cached per key and only
    the nonce and ciphertext are hashed per call.
    """
    inners = key._mac_inners
    seeded = inners.get(associated_data)
    if seeded is None:
        seeded = key._mac_pads[0].copy()
        seeded.update(len(associated_data).to_bytes(8, "big") + associated_data)
        inners[associated_data] = seeded
    mac = seeded.copy()
    mac.update(nonce)
    mac.update(ciphertext)
    tag = key._mac_pads[1].copy()
    tag.update(mac.digest())
    return tag.digest()[:TAG_SIZE]


@dataclass(frozen=True)
class AeadKey:
    """A 128-bit symmetric key with independent encrypt/MAC subkeys.

    The subkeys are derived from the root key material, so two
    :class:`AeadKey` objects built from the same bytes are interchangeable —
    a property the protocol uses when the sealing key is re-derived after a
    restart (Sec. 4.4).  Derivation happens once at construction; the HMAC
    key schedule is likewise precomputed and cloned per MAC.
    """

    material: bytes
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ConfigurationError(
                f"AEAD keys must be {KEY_SIZE} bytes, got {len(self.material)}"
            )
        object.__setattr__(
            self, "_enc_key", hashlib.sha256(b"lcm-enc" + self.material).digest()
        )
        object.__setattr__(
            self, "_mac_key", hashlib.sha256(b"lcm-mac" + self.material).digest()
        )
        object.__setattr__(self, "_mac_pads", _hmac_pad_states(self._mac_key))
        object.__setattr__(self, "_mac_inners", {})
        object.__setattr__(
            self, "_ctr_base", hashlib.sha256(b"lcm-ctr" + self._enc_key)
        )

    @classmethod
    def generate(
        cls, label: str = "", rng: Callable[[int], bytes] | None = None
    ) -> "AeadKey":
        """Generate a fresh random key (uses the OS CSPRNG by default)."""
        material = rng(KEY_SIZE) if rng is not None else os.urandom(KEY_SIZE)
        return cls(material=material, label=label)

    def __reduce__(self):
        # The derived-state caches hold live hashlib objects, which cannot
        # be pickled/copied; rebuild from the key material instead (two
        # AeadKeys from the same bytes are interchangeable by design).
        return (AeadKey, (self.material, self.label))

    def __deepcopy__(self, _memo) -> "AeadKey":
        return AeadKey(self.material, label=self.label)

    def hex(self) -> str:
        return self.material.hex()

    def __repr__(self) -> str:  # never leak key material in logs
        suffix = f" label={self.label!r}" if self.label else ""
        return f"<AeadKey{suffix}>"


def auth_encrypt(
    plaintext: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
    nonce: bytes | None = None,
) -> bytes:
    """Encrypt and authenticate ``plaintext`` under ``key``.

    ``associated_data`` is authenticated but not encrypted (used by the
    protocol to bind message type tags to ciphertexts).  A caller may pin the
    nonce for deterministic tests; production callers leave it ``None``.
    """
    if nonce is None:
        nonce = _fresh_nonce()
    elif len(nonce) != NONCE_SIZE:
        raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    stream = _keystream(key._enc_key, nonce, len(plaintext), key._ctr_base)
    ciphertext = _xor_bytes(plaintext, stream)
    tag = _tag_for(key, nonce, associated_data, ciphertext)
    return nonce + ciphertext + tag


def auth_decrypt(
    box: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
) -> bytes:
    """Verify and decrypt a box produced by :func:`auth_encrypt`.

    Raises :class:`~repro.errors.AuthenticationFailure` on any tampering or
    on use of the wrong key.  This is the protocol's tamper-evidence
    primitive; it must never silently return corrupted plaintext.
    """
    if len(box) < OVERHEAD:
        raise AuthenticationFailure("ciphertext too short to be authentic")
    view = memoryview(box)  # avoid copying the ciphertext slice twice
    nonce = bytes(view[:NONCE_SIZE])
    ciphertext = view[NONCE_SIZE:-TAG_SIZE]
    tag = bytes(view[-TAG_SIZE:])
    expected = _tag_for(key, nonce, associated_data, ciphertext)
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationFailure("MAC verification failed")
    stream = _keystream(key._enc_key, nonce, len(ciphertext), key._ctr_base)
    return _xor_bytes(ciphertext, stream)


def stream_encrypt(
    plaintext: bytes, key: AeadKey, *, nonce: bytes | None = None
) -> bytes:
    """Encrypt WITHOUT authentication: returns ``nonce || ciphertext``.

    Confidentiality only — the caller MUST cover the returned box with an
    external MAC (:func:`mac_tag`) before trusting :func:`stream_decrypt`
    output.  The trusted context uses this for sealed-state sections whose
    integrity the manifest tag provides; protocol messages keep the full
    AEAD.  Keystreams are not cached: these boxes are only decrypted on
    restore, never by an in-process peer.
    """
    if nonce is None:
        nonce = _fresh_nonce()
    elif len(nonce) != NONCE_SIZE:
        raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    stream = _keystream(
        key._enc_key, nonce, len(plaintext), key._ctr_base, cache=False
    )
    return nonce + _xor_bytes(plaintext, stream)


def stream_decrypt(box: bytes, key: AeadKey) -> bytes:
    """Inverse of :func:`stream_encrypt`.  No integrity check — only call
    after the box was authenticated externally (manifest tag)."""
    if len(box) < NONCE_SIZE:
        raise AuthenticationFailure("stream box shorter than its nonce")
    nonce = box[:NONCE_SIZE]
    ciphertext = box[NONCE_SIZE:]
    stream = _keystream(
        key._enc_key, nonce, len(ciphertext), key._ctr_base, cache=False
    )
    return _xor_bytes(ciphertext, stream)


def mac_tag(data: bytes, key: AeadKey, *, associated_data: bytes = b"") -> bytes:
    """Standalone 16-byte authentication tag over ``data`` (no encryption).

    Used by the trusted context to bind the independently sealed sections of
    its state blob into one atomic unit.  Domain separation from box tags is
    by the associated-data value: callers must use an ``associated_data``
    string never passed to :func:`auth_encrypt`/:func:`auth_decrypt`, since
    the MAC framing is the same with an empty nonce.
    """
    return _tag_for(key, b"", associated_data, data)


def verify_mac_tag(
    tag: bytes, data: bytes, key: AeadKey, *, associated_data: bytes = b""
) -> bool:
    """Constant-time check of a :func:`mac_tag` tag."""
    return hmac.compare_digest(tag, _tag_for(key, b"", associated_data, data))
