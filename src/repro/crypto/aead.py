"""Authenticated encryption with associated data (AEAD).

The paper protects every protocol message and every stored state blob with
AES-GCM-128 (``auth-encrypt`` / ``auth-decrypt`` in Sec. 4.1).  The standard
library has no AES-GCM, so we build an AEAD with the same *contract* from
primitives it does have:

- confidentiality: XOR with a SHA-256 counter-mode keystream derived from
  (key, nonce);
- integrity + authenticity: HMAC-SHA-256 over (nonce, associated data,
  ciphertext), truncated to 16 bytes to match GCM's tag size.

Tampering with a single bit of ciphertext, tag, nonce, or associated data
makes :func:`auth_decrypt` raise :class:`~repro.errors.AuthenticationFailure`
— exactly the behaviour Alg. 1/2 rely on ("auth-decrypt may also signal an
error; this is equivalent to an assert FALSE statement", Sec. 4.2.5).

Wire layout of a sealed box::

    nonce (12 bytes) || ciphertext (len(plaintext)) || tag (16 bytes)

so the constant ciphertext expansion is 28 bytes, comparable to GCM's
12-byte IV + 16-byte tag.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import os
from dataclasses import dataclass, field

from repro.errors import AuthenticationFailure, ConfigurationError

KEY_SIZE = 16  # bytes; matches the paper's 128-bit keys
NONCE_SIZE = 12
TAG_SIZE = 16
OVERHEAD = NONCE_SIZE + TAG_SIZE

_BLOCK = hashlib.sha256().digest_size


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of SHA-256 counter-mode keystream."""
    out = bytearray()
    for counter in itertools.count():
        if len(out) >= length:
            break
        block = hashlib.sha256(
            b"lcm-ctr" + key + nonce + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
    return bytes(out[:length])


def _mac(key: bytes, nonce: bytes, associated_data: bytes, ciphertext: bytes) -> bytes:
    payload = (
        len(associated_data).to_bytes(8, "big")
        + associated_data
        + nonce
        + ciphertext
    )
    return hmac.new(key, payload, hashlib.sha256).digest()[:TAG_SIZE]


@dataclass(frozen=True)
class AeadKey:
    """A 128-bit symmetric key with independent encrypt/MAC subkeys.

    The subkeys are derived from the root key material, so two
    :class:`AeadKey` objects built from the same bytes are interchangeable —
    a property the protocol uses when the sealing key is re-derived after a
    restart (Sec. 4.4).
    """

    material: bytes
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ConfigurationError(
                f"AEAD keys must be {KEY_SIZE} bytes, got {len(self.material)}"
            )

    @classmethod
    def generate(cls, label: str = "", rng: "os.urandom.__class__ | None" = None) -> "AeadKey":
        """Generate a fresh random key (uses the OS CSPRNG by default)."""
        material = rng(KEY_SIZE) if rng is not None else os.urandom(KEY_SIZE)
        return cls(material=material, label=label)

    @property
    def _enc_key(self) -> bytes:
        return hashlib.sha256(b"lcm-enc" + self.material).digest()

    @property
    def _mac_key(self) -> bytes:
        return hashlib.sha256(b"lcm-mac" + self.material).digest()

    def hex(self) -> str:
        return self.material.hex()

    def __repr__(self) -> str:  # never leak key material in logs
        suffix = f" label={self.label!r}" if self.label else ""
        return f"<AeadKey{suffix}>"


def auth_encrypt(
    plaintext: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
    nonce: bytes | None = None,
) -> bytes:
    """Encrypt and authenticate ``plaintext`` under ``key``.

    ``associated_data`` is authenticated but not encrypted (used by the
    protocol to bind message type tags to ciphertexts).  A caller may pin the
    nonce for deterministic tests; production callers leave it ``None``.
    """
    if nonce is None:
        nonce = os.urandom(NONCE_SIZE)
    elif len(nonce) != NONCE_SIZE:
        raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    stream = _keystream(key._enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = _mac(key._mac_key, nonce, associated_data, ciphertext)
    return nonce + ciphertext + tag


def auth_decrypt(
    box: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
) -> bytes:
    """Verify and decrypt a box produced by :func:`auth_encrypt`.

    Raises :class:`~repro.errors.AuthenticationFailure` on any tampering or
    on use of the wrong key.  This is the protocol's tamper-evidence
    primitive; it must never silently return corrupted plaintext.
    """
    if len(box) < OVERHEAD:
        raise AuthenticationFailure("ciphertext too short to be authentic")
    nonce = box[:NONCE_SIZE]
    ciphertext = box[NONCE_SIZE:-TAG_SIZE]
    tag = box[-TAG_SIZE:]
    expected = _mac(key._mac_key, nonce, associated_data, ciphertext)
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationFailure("MAC verification failed")
    stream = _keystream(key._enc_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
