"""Authenticated encryption with associated data (AEAD).

The paper protects every protocol message and every stored state blob with
AES-GCM-128 (``auth-encrypt`` / ``auth-decrypt`` in Sec. 4.1).  The standard
library has no AES-GCM, so we build an AEAD with the same *contract* from
primitives it does have:

- confidentiality: XOR with a SHA-256 counter-mode keystream derived from
  (key, nonce);
- integrity + authenticity: HMAC-SHA-256 over (nonce, associated data,
  ciphertext), truncated to 16 bytes to match GCM's tag size.

Tampering with a single bit of ciphertext, tag, nonce, or associated data
makes :func:`auth_decrypt` raise :class:`~repro.errors.AuthenticationFailure`
— exactly the behaviour Alg. 1/2 rely on ("auth-decrypt may also signal an
error; this is equivalent to an assert FALSE statement", Sec. 4.2.5).

Wire layout of a sealed box::

    nonce (12 bytes) || ciphertext (len(plaintext)) || tag (16 bytes)

so the constant ciphertext expansion is 28 bytes, comparable to GCM's
12-byte IV + 16-byte tag.

Implementation notes on the hot path (the wire format above is pinned by
golden-vector tests and unchanged):

- :class:`AeadKey` derives its encrypt/MAC subkeys and the HMAC key
  schedule once at construction instead of on every box;
- the keystream is produced in whole 32-byte blocks through the pluggable
  block-loop backend of :mod:`repro.crypto.fastpath` (compiled C when
  available, hashlib otherwise), and XORed against the payload as one big
  integer or numpy vector rather than byte by byte;
- a small bounded cache keeps recently generated keystreams keyed by
  (subkey, nonce).  In this in-process simulation every box is encrypted
  by one party and decrypted by another within the same interpreter, so
  the decrypt side's keystream is a cache hit.  Reuse is safe because the
  cached bytes are only ever applied to the same (key, nonce) pair that
  produced them;
- :func:`auth_encrypt_batch` / :func:`auth_decrypt_batch` process a whole
  invoke batch in one pass: a single backend call generates the keystream
  for every box (one concatenated counter table), one vector XOR covers
  the joined payloads, and the MACs are emitted/verified with the per-key
  pad states shared across the batch.  Each box's wire bytes are
  byte-identical to the per-box functions given the same (key, nonce,
  plaintext, associated data).

Batch tamper contract: :func:`auth_decrypt_batch` verifies **every** MAC
before releasing any plaintext, and a single tampered box rejects the
whole batch (the raised error names the first offending index).  The
trusted context relies on this all-or-nothing property: no operation from
a batch containing a forged message is ever executed.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto import fastpath as _fastpath
from repro.errors import AuthenticationFailure, ConfigurationError

try:  # optional vector XOR for large payloads; the image bakes numpy in
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

KEY_SIZE = 16  # bytes; matches the paper's 128-bit keys
NONCE_SIZE = 12
TAG_SIZE = 16
OVERHEAD = NONCE_SIZE + TAG_SIZE

_BLOCK = hashlib.sha256().digest_size

_sha256 = hashlib.sha256
_join = b"".join

#: Recently generated keystreams, keyed by (enc subkey, nonce).  Bounded by
#: entry count and total bytes; evicted FIFO.
_KS_CACHE: dict[tuple[bytes, bytes], bytes] = {}
_KS_CACHE_MAX_ENTRIES = 256
_KS_CACHE_MAX_BYTES = 4 * 1024 * 1024
_ks_cache_bytes = 0


def _cache_store(cache_key: tuple[bytes, bytes], stream: bytes) -> None:
    """Insert one generated keystream, evicting oldest-first past the caps.

    Eviction frees an extra eighth of the entry budget in one sweep so a
    full cache pays the scan once per ~32 inserts instead of per insert.
    """
    global _ks_cache_bytes
    if len(stream) > _KS_CACHE_MAX_BYTES:
        return
    cache = _KS_CACHE
    previous = cache.get(cache_key)
    if previous is not None:
        _ks_cache_bytes -= len(previous)
    cache[cache_key] = stream
    _ks_cache_bytes += len(stream)
    if len(cache) > _KS_CACHE_MAX_ENTRIES or _ks_cache_bytes > _KS_CACHE_MAX_BYTES:
        # evict oldest-first down to 7/8 of the caps; the just-inserted
        # entry is newest, and the >1 guard means it is never evicted
        # before its decrypt-side hit
        entry_floor = _KS_CACHE_MAX_ENTRIES - _KS_CACHE_MAX_ENTRIES // 8
        byte_floor = _KS_CACHE_MAX_BYTES - _KS_CACHE_MAX_BYTES // 8
        while (
            len(cache) > entry_floor or _ks_cache_bytes > byte_floor
        ) and len(cache) > 1:
            # the threaded execution backend seals from worker threads;
            # another thread may evict the same entry between the iter and
            # the pop, so both steps tolerate a concurrent mutation
            try:
                oldest = next(iter(cache))
                _ks_cache_bytes -= len(cache.pop(oldest))
            except (KeyError, RuntimeError, StopIteration):
                break


class NonceSequence:
    """Deterministic per-context nonce chain for enclave-sealed boxes.

    ``nonce_i = SHA-256(seed || i.to_bytes(8, "big"))[:NONCE_SIZE]`` — the
    exact derivation the C fast path applies inside
    ``lcm_invoke_batch_reply``, so a batch of replies sealed by either
    side of the backend seam carries byte-identical nonces.  The 32-byte
    seed is drawn once from platform randomness when the enclave context
    starts; the counter then advances without further entropy draws,
    which keeps worker-thread sealing off the shared process nonce pool
    (and therefore keeps the ``serial`` and ``threaded`` execution
    backends, and every fastpath backend, emitting identical wire bytes).
    """

    __slots__ = ("seed", "counter")

    def __init__(self, seed: bytes, start: int = 0) -> None:
        if len(seed) != 32:
            raise ConfigurationError(
                f"nonce sequence seeds are 32 bytes, got {len(seed)}"
            )
        self.seed = seed
        self.counter = start

    def next(self) -> bytes:
        counter = self.counter
        self.counter = counter + 1
        return _sha256(
            self.seed + counter.to_bytes(8, "big")
        ).digest()[:NONCE_SIZE]

    def take(self, count: int) -> list[bytes]:
        """``count`` consecutive nonces (one reply batch)."""
        seed = self.seed
        counter = self.counter
        self.counter = counter + count
        return [
            _sha256(seed + (counter + i).to_bytes(8, "big")).digest()[:NONCE_SIZE]
            for i in range(count)
        ]


def _generate_stream(key: "AeadKey", nonce: bytes, nblocks: int) -> bytes:
    """``nblocks`` fresh keystream blocks through the fastpath backend."""
    backend = _fastpath.BACKEND
    if backend.native:
        return backend.blocks(key._ctr_prefix + nonce, nblocks)
    seeded = key._ctr_base.copy()
    seeded.update(nonce)
    return backend.blocks(key._ctr_prefix + nonce, nblocks, seeded=seeded)


def _keystream(
    key: "AeadKey",
    nonce: bytes,
    length: int,
    cache: bool = True,
) -> bytes:
    """``length`` bytes of SHA-256 counter-mode keystream for one box.

    The block loop itself runs in the selected
    :mod:`~repro.crypto.fastpath` backend; every backend produces the
    same bytes (``SHA-256(b"lcm-ctr" || enc_key || nonce || counter)``
    per 32-byte block).  ``cache=False`` skips storing the stream (for
    boxes that are never decrypted by an in-process peer, e.g. sealed
    state sections).
    """
    if length <= 0:
        return b""
    cache_key = (key._enc_key, nonce)
    cached = _KS_CACHE.get(cache_key)
    if cached is not None and len(cached) >= length:
        return cached[:length] if len(cached) != length else cached
    stream = _generate_stream(key, nonce, -(-length // _BLOCK))
    if cache:
        _cache_store(cache_key, stream)
    return stream[:length] if len(stream) != length else stream


def _keystreams(
    key: "AeadKey",
    nonces: list[bytes],
    lengths: list[int],
    cache: bool = True,
) -> list[bytes]:
    """Per-box keystreams for a batch, generating every cache miss in one
    backend call over a single concatenated counter table."""
    enc_key = key._enc_key
    streams: list[bytes | None] = []
    miss_slots: list[int] = []
    for nonce, length in zip(nonces, lengths):
        cached = _KS_CACHE.get((enc_key, nonce)) if length else b""
        if cached is not None and len(cached) >= length:
            streams.append(cached)
        else:
            streams.append(None)
            miss_slots.append(len(streams) - 1)
    if miss_slots:
        prefix = key._ctr_prefix
        counts = [-(-lengths[slot] // _BLOCK) for slot in miss_slots]
        joined = _fastpath.BACKEND.blocks_many(
            [prefix + nonces[slot] for slot in miss_slots], counts
        )
        offset = 0
        for slot, nblocks in zip(miss_slots, counts):
            stream = joined[offset : offset + nblocks * _BLOCK]
            offset += nblocks * _BLOCK
            streams[slot] = stream
            if cache:
                _cache_store((enc_key, nonces[slot]), stream)
    return streams


#: Above this size numpy's vectorised byte XOR beats the big-int route.
_NP_XOR_THRESHOLD = 256


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR ``data`` against ``stream[:len(data)]`` in one vector operation."""
    length = len(data)
    if _np is not None and length >= _NP_XOR_THRESHOLD:
        a = _np.frombuffer(data, dtype=_np.uint8)
        b = _np.frombuffer(stream, dtype=_np.uint8, count=length)
        return (a ^ b).tobytes()
    if len(stream) != length:
        stream = stream[:length]
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(length, "big")


#: Fresh-nonce pool: one os.urandom syscall buys 512 nonces.  The bytes are
#: CSPRNG output either way; buffering them only amortises the syscall.
#: ``list.pop`` is atomic under the GIL (two threads never receive the same
#: nonce; a racing refill merely adds extra fresh nonces), and the pid guard
#: discards the pool in forked children so a child never replays nonces the
#: parent also hands out — nonce reuse under one key would be a two-time pad.
_NONCE_POOL: list[bytes] = []
_nonce_pid = 0


def _refill_pool(minimum: int) -> None:
    """Top the pool up to at least ``minimum`` nonces, discarding it
    first if this process is a fork (see the pool comment above)."""
    global _nonce_pid
    pid = os.getpid()
    if pid != _nonce_pid:
        _NONCE_POOL.clear()
        _nonce_pid = pid
    while len(_NONCE_POOL) < minimum:
        chunk = os.urandom(NONCE_SIZE * 512)
        _NONCE_POOL.extend(
            chunk[i : i + NONCE_SIZE] for i in range(0, len(chunk), NONCE_SIZE)
        )


def _fresh_nonce() -> bytes:
    if os.getpid() != _nonce_pid or not _NONCE_POOL:
        _refill_pool(1)
    return _NONCE_POOL.pop()


def _fresh_nonces(count: int) -> list[bytes]:
    """``count`` pool nonces in one slice (the batch paths' fast path)."""
    if os.getpid() != _nonce_pid or len(_NONCE_POOL) < count:
        _refill_pool(count)
    taken = _NONCE_POOL[-count:] if count else []
    del _NONCE_POOL[len(_NONCE_POOL) - count :]
    return taken


def _hmac_pad_states(key: bytes) -> tuple["hashlib._Hash", "hashlib._Hash"]:
    """SHA-256 states pre-fed with the HMAC inner/outer pads for ``key``.

    Cloning these per MAC skips the per-call key schedule; the digests are
    byte-identical to ``hmac.new(key, payload, sha256)``.
    """
    padded = key + b"\x00" * (64 - len(key))
    inner = _sha256(bytes(b ^ 0x36 for b in padded))
    outer = _sha256(bytes(b ^ 0x5C for b in padded))
    return inner, outer


def _tag_for(key: "AeadKey", nonce, associated_data: bytes, ciphertext) -> bytes:
    """Truncated ``HMAC-SHA-256(mac_key, len(ad) || ad || nonce || ct)``.

    Byte-identical to ``hmac.new(mac_key, framed, sha256)`` (test-pinned),
    built from cloned pad states instead of a per-call key schedule.  The
    associated-data strings are a handful of protocol constants, so the
    inner state pre-fed with ``len(ad) || ad`` is cached per key and only
    the nonce and ciphertext are hashed per call.
    """
    inners = key._mac_inners
    seeded = inners.get(associated_data)
    if seeded is None:
        seeded = key._mac_pads[0].copy()
        seeded.update(len(associated_data).to_bytes(8, "big") + associated_data)
        inners[associated_data] = seeded
    mac = seeded.copy()
    mac.update(nonce)
    mac.update(ciphertext)
    tag = key._mac_pads[1].copy()
    tag.update(mac.digest())
    return tag.digest()[:TAG_SIZE]


def _mac_frame(key: "AeadKey", associated_data: bytes) -> bytes:
    """Cached ``len(ad) || ad`` framing prefix for batch MAC passes."""
    frame = key._mac_frames.get(associated_data)
    if frame is None:
        frame = len(associated_data).to_bytes(8, "big") + associated_data
        key._mac_frames[associated_data] = frame
    return frame


def _tags_for_batch(
    key: "AeadKey", associated_data: bytes, segments: list
) -> list[bytes]:
    """Truncated tags over ``frame || segment`` for every segment.

    ``segment`` is the contiguous ``nonce || ciphertext`` run of one box,
    so the digests equal :func:`_tag_for` byte for byte.  One backend
    call emits the whole batch when the compiled backend is active; the
    fallback shares the pre-fed inner states exactly like
    :func:`_tag_for`.
    """
    hmac_tags = _fastpath.BACKEND.hmac_tags
    if hmac_tags is not None:
        frame = _mac_frame(key, associated_data)
        return [
            digest[:TAG_SIZE]
            for digest in hmac_tags(key._mac_key, frame, segments)
        ]
    inners = key._mac_inners
    seeded = inners.get(associated_data)
    if seeded is None:
        seeded = key._mac_pads[0].copy()
        seeded.update(_mac_frame(key, associated_data))
        inners[associated_data] = seeded
    clone = seeded.copy
    outer = key._mac_pads[1].copy
    tags = []
    for segment in segments:
        mac = clone()
        mac.update(segment)
        tag = outer()
        tag.update(mac.digest())
        tags.append(tag.digest()[:TAG_SIZE])
    return tags


@dataclass(frozen=True)
class AeadKey:
    """A 128-bit symmetric key with independent encrypt/MAC subkeys.

    The subkeys are derived from the root key material, so two
    :class:`AeadKey` objects built from the same bytes are interchangeable —
    a property the protocol uses when the sealing key is re-derived after a
    restart (Sec. 4.4).  Derivation happens once at construction; the HMAC
    key schedule is likewise precomputed and cloned per MAC.
    """

    material: bytes
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ConfigurationError(
                f"AEAD keys must be {KEY_SIZE} bytes, got {len(self.material)}"
            )
        object.__setattr__(
            self, "_enc_key", hashlib.sha256(b"lcm-enc" + self.material).digest()
        )
        object.__setattr__(
            self, "_mac_key", hashlib.sha256(b"lcm-mac" + self.material).digest()
        )
        object.__setattr__(self, "_mac_pads", _hmac_pad_states(self._mac_key))
        object.__setattr__(self, "_mac_inners", {})
        object.__setattr__(self, "_mac_frames", {})
        object.__setattr__(self, "_ctr_prefix", b"lcm-ctr" + self._enc_key)
        object.__setattr__(
            self, "_ctr_base", hashlib.sha256(b"lcm-ctr" + self._enc_key)
        )

    @classmethod
    def generate(
        cls, label: str = "", rng: Callable[[int], bytes] | None = None
    ) -> "AeadKey":
        """Generate a fresh random key (uses the OS CSPRNG by default)."""
        material = rng(KEY_SIZE) if rng is not None else os.urandom(KEY_SIZE)
        return cls(material=material, label=label)

    def __reduce__(self):
        # The derived-state caches hold live hashlib objects, which cannot
        # be pickled/copied; rebuild from the key material instead (two
        # AeadKeys from the same bytes are interchangeable by design).
        return (AeadKey, (self.material, self.label))

    def __deepcopy__(self, _memo) -> "AeadKey":
        return AeadKey(self.material, label=self.label)

    def hex(self) -> str:
        return self.material.hex()

    def __repr__(self) -> str:  # never leak key material in logs
        suffix = f" label={self.label!r}" if self.label else ""
        return f"<AeadKey{suffix}>"


def auth_encrypt(
    plaintext: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
    nonce: bytes | None = None,
) -> bytes:
    """Encrypt and authenticate ``plaintext`` under ``key``.

    ``associated_data`` is authenticated but not encrypted (used by the
    protocol to bind message type tags to ciphertexts).  A caller may pin the
    nonce for deterministic tests; production callers leave it ``None``.
    """
    if nonce is None:
        nonce = _fresh_nonce()
    elif len(nonce) != NONCE_SIZE:
        raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    backend = _fastpath.BACKEND
    if backend.native:
        # inlined CBackend.seal_box: one Python frame per box (this runs
        # four times per protocol round trip)
        frame = key._mac_frames.get(associated_data)
        if frame is None:
            frame = _mac_frame(key, associated_data)
        ffi = backend._ffi
        size = len(plaintext)
        out = bytearray(OVERHEAD + size)
        backend._lib.lcm_seal_box(
            key._enc_key, key._mac_key, nonce,
            frame, len(frame),
            plaintext if type(plaintext) is bytes else ffi.from_buffer(plaintext),
            size,
            ffi.from_buffer(out),
        )
        return bytes(out)
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = _xor_bytes(plaintext, stream)
    tag = _tag_for(key, nonce, associated_data, ciphertext)
    return nonce + ciphertext + tag


def auth_encrypt_batch(
    plaintexts: list[bytes],
    key: AeadKey,
    *,
    associated_data: bytes = b"",
    nonces: list[bytes] | None = None,
) -> list[bytes]:
    """Encrypt a whole batch of boxes under one key in one crypto pass.

    Semantically equivalent to ``[auth_encrypt(p, key, ...) for p in
    plaintexts]`` — per-box wire bytes are identical given the same
    nonces — but the keystream for every box is generated in a single
    backend call over one concatenated counter table, the payloads are
    XORed as one joined buffer, and the MAC pass shares its pad states
    across the batch.  ``nonces`` pins the per-box nonces for tests;
    production callers leave it ``None`` (fresh pool nonces).
    """
    count = len(plaintexts)
    if nonces is None:
        nonces = _fresh_nonces(count)
    else:
        if len(nonces) != count:
            raise ConfigurationError(
                f"{count} plaintexts but {len(nonces)} nonces"
            )
        for nonce in nonces:
            if len(nonce) != NONCE_SIZE:
                raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    if not count:
        return []
    seal_boxes = _fastpath.BACKEND.seal_boxes
    if seal_boxes is not None:
        return seal_boxes(
            key._enc_key,
            key._mac_key,
            nonces,
            _mac_frame(key, associated_data),
            plaintexts,
        )
    lengths = [len(plaintext) for plaintext in plaintexts]
    streams = _keystreams(key, nonces, lengths)
    total = sum(lengths)
    joined_ct = _xor_bytes(
        _join(plaintexts),
        _join(
            stream[:length] if len(stream) != length else stream
            for stream, length in zip(streams, lengths)
        ),
    ) if total else b""
    segments = []  # nonce || ciphertext, the box minus its tag
    offset = 0
    for nonce, length in zip(nonces, lengths):
        segments.append(nonce + joined_ct[offset : offset + length])
        offset += length
    tags = _tags_for_batch(key, associated_data, segments)
    return [segment + tag for segment, tag in zip(segments, tags)]


def auth_decrypt(
    box: bytes,
    key: AeadKey,
    *,
    associated_data: bytes = b"",
) -> bytes:
    """Verify and decrypt a box produced by :func:`auth_encrypt`.

    Raises :class:`~repro.errors.AuthenticationFailure` on any tampering or
    on use of the wrong key.  This is the protocol's tamper-evidence
    primitive; it must never silently return corrupted plaintext.
    """
    if len(box) < OVERHEAD:
        raise AuthenticationFailure("ciphertext too short to be authentic")
    backend = _fastpath.BACKEND
    if backend.native:
        # inlined CBackend.open_box (the length guard ran above)
        frame = key._mac_frames.get(associated_data)
        if frame is None:
            frame = _mac_frame(key, associated_data)
        ffi = backend._ffi
        size = len(box)
        out = bytearray(size - OVERHEAD)
        ok = backend._lib.lcm_open_box(
            key._enc_key, key._mac_key,
            frame, len(frame),
            box if type(box) is bytes else ffi.from_buffer(box),
            size,
            ffi.from_buffer(out),
        )
        if ok != 0:
            raise AuthenticationFailure("MAC verification failed")
        return bytes(out)
    view = memoryview(box)  # avoid copying the ciphertext slice twice
    nonce = bytes(view[:NONCE_SIZE])
    ciphertext = view[NONCE_SIZE:-TAG_SIZE]
    tag = bytes(view[-TAG_SIZE:])
    expected = _tag_for(key, nonce, associated_data, ciphertext)
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationFailure("MAC verification failed")
    stream = _keystream(key, nonce, len(ciphertext))
    return _xor_bytes(ciphertext, stream)


def auth_decrypt_batch(
    boxes: list[bytes],
    key: AeadKey,
    *,
    associated_data: bytes = b"",
) -> list[bytes]:
    """Verify and decrypt a batch of boxes in one crypto pass.

    All-or-nothing: every MAC is verified **before** any plaintext is
    produced, and a single forged/tampered box raises
    :class:`~repro.errors.AuthenticationFailure` (naming the first bad
    index) for the whole batch.  Callers that want per-box rejection use
    :func:`auth_decrypt` per box; the trusted context deliberately wants
    the batch semantics (no operation from a batch containing a forged
    message executes).
    """
    if not boxes:
        return []
    open_boxes = _fastpath.BACKEND.open_boxes
    if open_boxes is not None:
        plaintexts, bad = open_boxes(
            key._enc_key, key._mac_key, _mac_frame(key, associated_data), boxes
        )
        if plaintexts is None:
            if len(boxes[bad]) < OVERHEAD:
                raise AuthenticationFailure(
                    f"box {bad} of batch too short to be authentic"
                )
            raise AuthenticationFailure(
                f"MAC verification failed for box {bad} of batch"
            )
        return plaintexts
    views = []
    for index, box in enumerate(boxes):
        if len(box) < OVERHEAD:
            raise AuthenticationFailure(
                f"box {index} of batch too short to be authentic"
            )
        views.append(memoryview(box))
    segments = [view[:-TAG_SIZE] for view in views]
    expected = _tags_for_batch(key, associated_data, segments)
    bad = -1
    compare = hmac.compare_digest
    for index, (view, tag) in enumerate(zip(views, expected)):
        # constant-time per box; scan every box before failing so the
        # error index leaks nothing an attacker does not already control
        if not compare(view[-TAG_SIZE:], tag) and bad < 0:
            bad = index
    if bad >= 0:
        raise AuthenticationFailure(
            f"MAC verification failed for box {bad} of batch"
        )
    nonces = [bytes(view[:NONCE_SIZE]) for view in views]
    lengths = [len(view) - OVERHEAD for view in views]
    streams = _keystreams(key, nonces, lengths)
    joined_pt = _xor_bytes(
        _join(view[NONCE_SIZE:-TAG_SIZE] for view in views),
        _join(
            stream[:length] if len(stream) != length else stream
            for stream, length in zip(streams, lengths)
        ),
    ) if any(lengths) else b""
    plaintexts = []
    offset = 0
    for length in lengths:
        plaintexts.append(joined_pt[offset : offset + length])
        offset += length
    return plaintexts


def stream_encrypt(
    plaintext: bytes, key: AeadKey, *, nonce: bytes | None = None
) -> bytes:
    """Encrypt WITHOUT authentication: returns ``nonce || ciphertext``.

    Confidentiality only — the caller MUST cover the returned box with an
    external MAC (:func:`mac_tag`) before trusting :func:`stream_decrypt`
    output.  The trusted context uses this for sealed-state sections whose
    integrity the manifest tag provides; protocol messages keep the full
    AEAD.  Keystreams are not cached: these boxes are only decrypted on
    restore, never by an in-process peer.
    """
    if nonce is None:
        nonce = _fresh_nonce()
    elif len(nonce) != NONCE_SIZE:
        raise ConfigurationError(f"nonce must be {NONCE_SIZE} bytes")
    backend = _fastpath.BACKEND
    if backend.native:
        size = len(plaintext)
        out = bytearray(NONCE_SIZE + size)
        backend._lib.lcm_stream_box(
            key._enc_key, nonce,
            plaintext if type(plaintext) is bytes
            else backend._ffi.from_buffer(plaintext),
            size,
            backend._ffi.from_buffer(out),
        )
        return bytes(out)
    stream = _keystream(key, nonce, len(plaintext), cache=False)
    return nonce + _xor_bytes(plaintext, stream)


def stream_decrypt(box: bytes, key: AeadKey) -> bytes:
    """Inverse of :func:`stream_encrypt`.  No integrity check — only call
    after the box was authenticated externally (manifest tag)."""
    if len(box) < NONCE_SIZE:
        raise AuthenticationFailure("stream box shorter than its nonce")
    nonce = box[:NONCE_SIZE]
    ciphertext = box[NONCE_SIZE:]
    stream = _keystream(key, nonce, len(ciphertext), cache=False)
    return _xor_bytes(ciphertext, stream)


def mac_tag(data: bytes, key: AeadKey, *, associated_data: bytes = b"") -> bytes:
    """Standalone 16-byte authentication tag over ``data`` (no encryption).

    Used by the trusted context to bind the independently sealed sections of
    its state blob into one atomic unit.  Domain separation from box tags is
    by the associated-data value: callers must use an ``associated_data``
    string never passed to :func:`auth_encrypt`/:func:`auth_decrypt`, since
    the MAC framing is the same with an empty nonce.
    """
    return _tag_for(key, b"", associated_data, data)


def verify_mac_tag(
    tag: bytes, data: bytes, key: AeadKey, *, associated_data: bytes = b""
) -> bool:
    """Constant-time check of a :func:`mac_tag` tag."""
    return hmac.compare_digest(tag, _tag_for(key, b"", associated_data, data))
