"""Remote attestation: reports, quotes and verification (Sec. 2.2, 5.1.2).

SGX remote attestation convinces a remote client that a specific program
``P`` (identified by its *measurement*, a hash of code + initial data) runs
inside a genuine TEE.  The flow modelled here follows the paper's
description:

1. the client sends a challenge (nonce) to the enclave;
2. the enclave produces a *report*: measurement, developer identity, user
   data (containing the nonce), MACed with a platform *report key* that only
   enclaves on the same platform can obtain;
3. the *quoting enclave* verifies the report MAC and replaces it with a
   signature under a platform group key (EPID), producing a *quote*;
4. the client verifies the quote against the group's public verification
   material and checks that the measurement and nonce match.

We model the EPID group signature as an HMAC under a group secret shared by
all genuine platforms, with verification material handed to clients by the
(out-of-band trusted) infrastructure.  This preserves the property the
protocol needs: only a genuine platform can produce a quote for a given
measurement, and the quote does not identify *which* platform signed.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.errors import AttestationFailure

_REPORT_TAG = b"lcm-report"
_QUOTE_TAG = b"lcm-quote"


def measure_program(program_code: bytes, developer: str = "") -> bytes:
    """Compute an enclave measurement (SIGSTRUCT-style hash of code+identity)."""
    return hashlib.sha256(
        b"lcm-measurement" + len(program_code).to_bytes(8, "big") + program_code
        + developer.encode()
    ).digest()


@dataclass(frozen=True)
class Report:
    """Local attestation report produced inside an enclave.

    ``user_data`` carries the challenge nonce (and, optionally, extra
    enclave-chosen bytes such as a state digest — Sec. 5.1.2 notes that
    developers may include custom values).
    """

    measurement: bytes
    developer: str
    user_data: bytes
    mac: bytes

    def payload(self) -> bytes:
        return (
            _REPORT_TAG
            + self.measurement
            + self.developer.encode()
            + len(self.user_data).to_bytes(4, "big")
            + self.user_data
        )


@dataclass(frozen=True)
class Quote:
    """A signed report: output of the quoting enclave, verified by clients."""

    measurement: bytes
    developer: str
    user_data: bytes
    signature: bytes

    def payload(self) -> bytes:
        return (
            _QUOTE_TAG
            + self.measurement
            + self.developer.encode()
            + len(self.user_data).to_bytes(4, "big")
            + self.user_data
        )


class EpidGroup:
    """The EPID attestation group: platform-side secret + verification side.

    All genuine platforms share ``_group_secret`` (installed at manufacture
    time); the verification material is distributed to relying parties.  A
    signature proves "some genuine platform signed this" without revealing
    which one — which is all LCM's bootstrap needs.
    """

    def __init__(self, seed: bytes | None = None) -> None:
        self._group_secret = seed if seed is not None else os.urandom(32)

    def sign(self, payload: bytes) -> bytes:
        return hmac.new(self._group_secret, payload, hashlib.sha256).digest()

    def verify(self, payload: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(payload), signature)

    def verifier(self) -> "QuoteVerifier":
        return QuoteVerifier(self)


def make_report(
    measurement: bytes, developer: str, user_data: bytes, report_key: bytes
) -> Report:
    """Create a MACed report (runs conceptually inside the attested enclave)."""
    partial = Report(measurement, developer, user_data, mac=b"")
    mac = hmac.new(report_key, partial.payload(), hashlib.sha256).digest()
    return Report(measurement, developer, user_data, mac=mac)


def verify_report(report: Report, report_key: bytes) -> bool:
    """Quoting-enclave-side report check (same platform report key)."""
    expected = hmac.new(report_key, report.payload(), hashlib.sha256).digest()
    return hmac.compare_digest(report.mac, expected)


class QuotingEnclave:
    """The special enclave that converts reports into quotes (Sec. 5.1.2)."""

    def __init__(self, report_key: bytes, group: EpidGroup) -> None:
        self._report_key = report_key
        self._group = group

    def quote(self, report: Report) -> Quote:
        if not verify_report(report, self._report_key):
            raise AttestationFailure("report MAC invalid: not from this platform")
        partial = Quote(report.measurement, report.developer, report.user_data, b"")
        signature = self._group.sign(partial.payload())
        return Quote(report.measurement, report.developer, report.user_data, signature)


class QuoteVerifier:
    """Relying-party verification of quotes against the EPID group."""

    def __init__(self, group: EpidGroup) -> None:
        self._group = group

    def verify(
        self,
        quote: Quote,
        *,
        expected_measurement: bytes,
        nonce: bytes,
    ) -> None:
        """Check signature, measurement and challenge freshness.

        Raises :class:`~repro.errors.AttestationFailure` on any mismatch —
        the admin aborts bootstrapping in that case (Sec. 4.3).
        """
        if not self._group.verify(quote.payload(), quote.signature):
            raise AttestationFailure("quote signature invalid (not a genuine TEE)")
        if quote.measurement != expected_measurement:
            raise AttestationFailure(
                "measurement mismatch: enclave is not running the expected program"
            )
        if not quote.user_data.startswith(nonce):
            raise AttestationFailure("stale or mismatched attestation challenge")
