"""Finite-field Diffie-Hellman for TEE secure channels.

The paper relies on "a secure channel provided by the TEE" twice: the admin
injects ``kC``/``kP`` into ``T`` during bootstrapping (Sec. 4.3), and the
origin context injects ``kP`` into the target during migration
(Sec. 4.6.2).  In both cases the channel key must be bound to an *attested*
enclave, otherwise the malicious host could interpose.

We implement textbook DH over the RFC 3526 2048-bit MODP group (group 14)
using Python's native big integers, and bind the enclave's ephemeral public
key into the attestation quote's user data.  The shared secret is hashed
into a 128-bit AEAD key.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.crypto.aead import AeadKey
from repro.crypto.keys import derive_key

# RFC 3526, group 14 (2048-bit MODP).
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2
PUBLIC_KEY_BYTES = 256


@dataclass(frozen=True)
class DhKeyPair:
    """An ephemeral DH keypair.  ``secret`` never leaves its owner."""

    secret: int
    public: int

    @classmethod
    def generate(cls, rng_bytes: bytes | None = None) -> "DhKeyPair":
        raw = rng_bytes if rng_bytes is not None else os.urandom(32)
        secret = int.from_bytes(hashlib.sha256(b"lcm-dh" + raw).digest(), "big")
        # clamp into [2, p-2]
        secret = 2 + secret % (MODP_2048_PRIME - 4)
        return cls(secret=secret, public=pow(GENERATOR, secret, MODP_2048_PRIME))

    def public_bytes(self) -> bytes:
        return self.public.to_bytes(PUBLIC_KEY_BYTES, "big")

    def shared_key(self, peer_public: int | bytes, label: str = "dh-channel") -> AeadKey:
        """Derive the AEAD channel key from the DH shared secret."""
        if isinstance(peer_public, (bytes, bytearray)):
            peer_public = public_from_bytes(bytes(peer_public))
        shared = pow(peer_public, self.secret, MODP_2048_PRIME)
        return derive_key(
            shared.to_bytes(PUBLIC_KEY_BYTES, "big"), b"lcm-channel", label=label
        )


def public_from_bytes(data: bytes) -> int:
    """Parse and sanity-check a serialized public key."""
    value = int.from_bytes(data, "big")
    if not 2 <= value <= MODP_2048_PRIME - 2:
        raise ValueError("DH public key out of range")
    return value
