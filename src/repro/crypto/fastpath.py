"""Pluggable fast keystream / MAC backend for the AEAD hot path.

The ROADMAP identifies the SHA-256-CTR block loop as the invoke hot
path's floor: every 32-byte keystream block costs one hashlib state
clone, one update and one digest (~0.3-0.5 µs of Python/C boundary
overhead per block), and every HMAC tag costs two more clones.  This
module concentrates that loop behind a small backend interface so the
primitive can be swapped without touching the wire format:

``c``
    A cffi-compiled C block loop (SHA-256 compression function plus CTR
    and HMAC drivers).  Compiled once into ``_fastpath_build/`` next to
    this module and reused across processes; needs ``cffi`` and a C
    compiler at first import.
``python-batch``
    Pure Python, hashlib-copy-minimizing batch variant: one locals-bound
    loop over all blocks of all boxes in a batch, one ``join``.
``python``
    The reference per-box block loop (the PR 1 implementation).

Every backend produces **byte-identical** keystreams and tags — the
golden-vector tests run against whichever backend is active, and
``tests/crypto/test_fastpath.py`` cross-checks the backends against each
other.  Selection happens at import: the accelerated backend when it is
buildable, else ``python-batch``; the ``REPRO_FASTPATH`` environment
variable (or :func:`select_backend` at runtime) overrides.

A keystream block is ``SHA-256(b"lcm-ctr" || enc_key || nonce ||
counter_8be)`` (see :mod:`repro.crypto.aead`); backends receive the
51-byte prefix ``b"lcm-ctr" || enc_key || nonce`` and a block count.
"""

from __future__ import annotations

import array
import hashlib
from itertools import accumulate, chain
import os
import pathlib
import shutil
from typing import Callable

from repro.errors import ConfigurationError

_sha256 = hashlib.sha256
_join = b"".join

#: Big-endian counter suffixes for the common stream lengths (128 KiB);
#: longer streams generate counters on the fly.
_COUNTERS = tuple(counter.to_bytes(8, "big") for counter in range(4096))

_ENV_VAR = "REPRO_FASTPATH"


def _counters(nblocks: int):
    if nblocks <= len(_COUNTERS):
        return _COUNTERS[:nblocks]
    return [counter.to_bytes(8, "big") for counter in range(nblocks)]


class PythonBackend:
    """Reference per-box block loop (pure Python + hashlib)."""

    name = "python"
    #: True for the compiled backend (callers may skip building hashlib
    #: seed states when the backend ignores them).
    native = False
    #: Optional accelerated primitives; ``None`` means the caller keeps
    #: its own hashlib path (see aead._tag_for).
    hmac3: Callable[[bytes, bytes, bytes, bytes], bytes] | None = None
    sha256_oneshot: Callable[[bytes], bytes] | None = None
    #: Fused whole-box AEAD primitives (keystream + XOR + MAC in one C
    #: call); ``None`` means the AEAD layer composes them from the block
    #: loop and hashlib instead.
    seal_box = None
    open_box = None
    seal_boxes = None
    open_boxes = None
    sha256_many: Callable[[list], list[bytes]] | None = None
    chain_extend: Callable[[bytes, bytes, int, int], bytes] | None = None

    def blocks(self, prefix: bytes, nblocks: int, *, seeded=None) -> bytes:
        """``nblocks * 32`` keystream bytes for one (key, nonce).

        ``seeded`` is an optional SHA-256 state already fed with
        ``prefix`` (cached per key+nonce by the caller); cloning it per
        block skips re-hashing the constant bytes.
        """
        if seeded is None:
            seeded = _sha256(prefix)
        clone = seeded.copy
        blocks = []
        append = blocks.append
        for counter in _counters(nblocks):
            block = clone()
            block.update(counter)
            append(block.digest())
        return _join(blocks)

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        """Concatenated keystreams for a batch of (prefix, count) spans."""
        return _join(
            self.blocks(prefix, count)
            for prefix, count in zip(prefixes, counts)
        )

    # The batch HMAC pass: the C backend computes tags for a whole invoke
    # batch in one native call; the pure-Python backends amortize the
    # expensive part instead — the HMAC key schedule and the framed inner
    # state are built once per (key, frame) and *cloned* per segment, so
    # each additional tag costs two hash updates and two finalizations
    # rather than a full ``hmac.new`` (byte-identical, test-pinned).

    #: (mac_key, frame) -> SHA-256 states (inner pre-fed with pads+frame,
    #: outer pre-fed with pads); tiny — a handful of protocol constants
    #: per key — but bounded anyway, evicted FIFO.
    _HMAC_STATE_CACHE_MAX = 64

    def __init__(self) -> None:
        self._hmac_states: dict[tuple[bytes, bytes], tuple] = {}

    def _hmac_seeds(self, key: bytes, frame: bytes):
        cached = self._hmac_states.get((key, frame))
        if cached is not None:
            return cached
        padded = key + b"\x00" * (64 - len(key))
        inner = _sha256(bytes(b ^ 0x36 for b in padded))
        inner.update(frame)
        outer = _sha256(bytes(b ^ 0x5C for b in padded))
        if len(self._hmac_states) >= self._HMAC_STATE_CACHE_MAX:
            self._hmac_states.pop(next(iter(self._hmac_states)))
        self._hmac_states[(key, frame)] = (inner, outer)
        return inner, outer

    def hmac_tags(self, key: bytes, frame: bytes, segments: list) -> list[bytes]:
        """Full ``HMAC-SHA256(key, frame || segment)`` digests for every
        segment, sharing one key schedule across the batch."""
        inner, outer = self._hmac_seeds(key, frame)
        clone = inner.copy
        outer_clone = outer.copy
        tags = []
        append = tags.append
        for segment in segments:
            mac = clone()
            mac.update(segment)
            tag = outer_clone()
            tag.update(mac.digest())
            append(tag.digest())
        return tags


class BatchPythonBackend(PythonBackend):
    """Hashlib-copy-minimizing batch variant.

    The per-box entry point is identical to :class:`PythonBackend`; the
    batch entry runs one locals-bound loop over every block of every box
    and emits a single ``join``, so the Python interpreter executes one
    frame for the whole batch instead of one per box.
    """

    name = "python-batch"

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        sha256 = _sha256
        counters = _COUNTERS
        blocks: list[bytes] = []
        append = blocks.append
        for prefix, count in zip(prefixes, counts):
            clone = sha256(prefix).copy
            for counter in counters[:count]:
                block = clone()
                block.update(counter)
                append(block.digest())
            if count > len(counters):  # beyond the precomputed table
                for extra in range(len(counters), count):
                    block = clone()
                    block.update(extra.to_bytes(8, "big"))
                    append(block.digest())
        return _join(blocks)


# --------------------------------------------------------------------- C

_CDEF = """
void lcm_ctr_keystream(const unsigned char *prefix, size_t prefix_len,
                       unsigned long long first_counter,
                       unsigned long long nblocks, unsigned char *out);
void lcm_ctr_keystream_batch(const unsigned char *prefixes,
                             size_t prefix_len,
                             const unsigned long long *counts,
                             size_t nboxes, unsigned char *out);
void lcm_hmac_sha256_3(const unsigned char *key, size_t keylen,
                       const unsigned char *p1, size_t n1,
                       const unsigned char *p2, size_t n2,
                       const unsigned char *p3, size_t n3,
                       unsigned char *out);
void lcm_hmac_tags(const unsigned char *key, size_t keylen,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *segs,
                   const unsigned long long *offsets,
                   size_t n, unsigned char *out);
void lcm_sha256_oneshot(const unsigned char *data, size_t n,
                        unsigned char *out);
void lcm_sha256_batch(const unsigned char *data,
                      const unsigned long long *offsets, size_t n,
                      unsigned char *out);
void lcm_chain_extend(const unsigned char *prev, size_t prev_len,
                      const unsigned char *op, size_t op_len,
                      unsigned long long sequence,
                      unsigned long long client_id,
                      unsigned char *out);
void lcm_seal_box(const unsigned char *enc_key, const unsigned char *mac_key,
                  const unsigned char *nonce,
                  const unsigned char *frame, size_t frame_len,
                  const unsigned char *pt, size_t pt_len,
                  unsigned char *out);
void lcm_stream_box(const unsigned char *enc_key,
                    const unsigned char *nonce,
                    const unsigned char *pt, size_t pt_len,
                    unsigned char *out);
int lcm_open_box(const unsigned char *enc_key, const unsigned char *mac_key,
                 const unsigned char *frame, size_t frame_len,
                 const unsigned char *box, size_t box_len,
                 unsigned char *out_pt);
void lcm_seal_boxes(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonces,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *joined_pt,
                    const unsigned long long *offsets, size_t n,
                    unsigned char *out);
int lcm_open_boxes(const unsigned char *enc_key,
                   const unsigned char *mac_key,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *joined_boxes,
                   const unsigned long long *offsets, size_t n,
                   unsigned char *out_pt);
"""

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef struct {
    uint32_t state[8];
    uint64_t nbytes;
    uint8_t buf[64];
    size_t buflen;
} sha_ctx;

static const uint32_t K[64] = {
    0x428a2f98,0x71374491,0xb5c0fbcf,0xe9b5dba5,0x3956c25b,0x59f111f1,
    0x923f82a4,0xab1c5ed5,0xd807aa98,0x12835b01,0x243185be,0x550c7dc3,
    0x72be5d74,0x80deb1fe,0x9bdc06a7,0xc19bf174,0xe49b69c1,0xefbe4786,
    0x0fc19dc6,0x240ca1cc,0x2de92c6f,0x4a7484aa,0x5cb0a9dc,0x76f988da,
    0x983e5152,0xa831c66d,0xb00327c8,0xbf597fc7,0xc6e00bf3,0xd5a79147,
    0x06ca6351,0x14292967,0x27b70a85,0x2e1b2138,0x4d2c6dfc,0x53380d13,
    0x650a7354,0x766a0abb,0x81c2c92e,0x92722c85,0xa2bfe8a1,0xa81a664b,
    0xc24b8b70,0xc76c51a3,0xd192e819,0xd6990624,0xf40e3585,0x106aa070,
    0x19a4c116,0x1e376c08,0x2748774c,0x34b0bcb5,0x391c0cb3,0x4ed8aa4a,
    0x5b9cca4f,0x682e6ff3,0x748f82ee,0x78a5636f,0x84c87814,0x8cc70208,
    0x90befffa,0xa4506ceb,0xbef9a3f7,0xc67178f2
};

#define ROTR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void sha_compress_portable(uint32_t *s, const uint8_t *p)
{
    uint32_t w[64];
    uint32_t a, b, c, d, e, f, g, h;
    int i;
    for (i = 0; i < 16; i++)
        w[i] = ((uint32_t)p[4 * i] << 24) | ((uint32_t)p[4 * i + 1] << 16)
             | ((uint32_t)p[4 * i + 2] << 8) | (uint32_t)p[4 * i + 3];
    for (i = 16; i < 64; i++) {
        uint32_t s0 = ROTR(w[i - 15], 7) ^ ROTR(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = ROTR(w[i - 2], 17) ^ ROTR(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    a = s[0]; b = s[1]; c = s[2]; d = s[3];
    e = s[4]; f = s[5]; g = s[6]; h = s[7];
    for (i = 0; i < 64; i++) {
        uint32_t S1 = ROTR(e, 6) ^ ROTR(e, 11) ^ ROTR(e, 25);
        uint32_t ch = (e & f) ^ ((~e) & g);
        uint32_t t1 = h + S1 + ch + K[i] + w[i];
        uint32_t S0 = ROTR(a, 2) ^ ROTR(a, 13) ^ ROTR(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    s[0] += a; s[1] += b; s[2] += c; s[3] += d;
    s[4] += e; s[5] += f; s[6] += g; s[7] += h;
}

/* SHA-NI path: the hot machines hashlib (OpenSSL) runs on execute one
   round quartet per instruction; matching it is what makes this backend
   faster than the stdlib per-block loop rather than merely equal. */
#if defined(__x86_64__) && defined(__GNUC__)
#define LCM_HAVE_SHA_NI 1
#include <immintrin.h>

__attribute__((target("sha,sse4.1,ssse3")))
static void sha_compress_ni(uint32_t *s, const uint8_t *p)
{
    __m128i state0, state1, abef_save, cdgh_save, tmp;
    __m128i msgs[4];
    const __m128i mask =
        _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
    int i;

    tmp    = _mm_loadu_si128((const __m128i *)&s[0]);   /* DCBA */
    state1 = _mm_loadu_si128((const __m128i *)&s[4]);   /* HGFE */
    tmp    = _mm_shuffle_epi32(tmp, 0xB1);              /* CDAB */
    state1 = _mm_shuffle_epi32(state1, 0x1B);           /* EFGH */
    state0 = _mm_alignr_epi8(tmp, state1, 8);           /* ABEF */
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);        /* CDGH */
    abef_save = state0;
    cdgh_save = state1;

    for (i = 0; i < 4; i++)
        msgs[i] = _mm_shuffle_epi8(
            _mm_loadu_si128((const __m128i *)(p + 16 * i)), mask);

    for (i = 0; i < 16; i++) {
        __m128i kv = _mm_loadu_si128((const __m128i *)&K[4 * i]);
        __m128i msg = _mm_add_epi32(msgs[i & 3], kv);
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
        if (i >= 3 && i < 15) {
            /* schedule message quad i+1 into the slot of quad i-3 */
            __m128i t = _mm_alignr_epi8(msgs[i & 3], msgs[(i - 1) & 3], 4);
            __m128i nxt =
                _mm_sha256msg1_epu32(msgs[(i - 3) & 3], msgs[(i - 2) & 3]);
            nxt = _mm_add_epi32(nxt, t);
            msgs[(i - 3) & 3] = _mm_sha256msg2_epu32(nxt, msgs[i & 3]);
        }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    tmp    = _mm_shuffle_epi32(state0, 0x1B);           /* FEBA */
    state1 = _mm_shuffle_epi32(state1, 0xB1);           /* DCHG */
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);        /* DCBA */
    state1 = _mm_alignr_epi8(state1, tmp, 8);           /* HGFE */
    _mm_storeu_si128((__m128i *)&s[0], state0);
    _mm_storeu_si128((__m128i *)&s[4], state1);
}
#endif

static void (*sha_compress)(uint32_t *, const uint8_t *) = 0;

__attribute__((constructor))
static void lcm_pick_compress(void)
{
#ifdef LCM_HAVE_SHA_NI
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
        sha_compress = sha_compress_ni;
        return;
    }
#endif
    sha_compress = sha_compress_portable;
}

static void sha_init(sha_ctx *c)
{
    c->state[0] = 0x6a09e667; c->state[1] = 0xbb67ae85;
    c->state[2] = 0x3c6ef372; c->state[3] = 0xa54ff53a;
    c->state[4] = 0x510e527f; c->state[5] = 0x9b05688c;
    c->state[6] = 0x1f83d9ab; c->state[7] = 0x5be0cd19;
    c->nbytes = 0;
    c->buflen = 0;
}

static void sha_update(sha_ctx *c, const uint8_t *d, size_t n)
{
    c->nbytes += n;
    if (c->buflen) {
        size_t take = 64 - c->buflen;
        if (take > n) take = n;
        memcpy(c->buf + c->buflen, d, take);
        c->buflen += take;
        d += take;
        n -= take;
        if (c->buflen == 64) {
            sha_compress(c->state, c->buf);
            c->buflen = 0;
        }
    }
    while (n >= 64) {
        sha_compress(c->state, d);
        d += 64;
        n -= 64;
    }
    if (n) {
        memcpy(c->buf, d, n);
        c->buflen = n;
    }
}

static void sha_final(sha_ctx *c, uint8_t *out)
{
    uint64_t bits = c->nbytes * 8;
    size_t i;
    uint8_t pad = 0x80;
    sha_update(c, &pad, 1);
    {
        static const uint8_t zeros[64] = {0};
        size_t fill = (c->buflen <= 56) ? 56 - c->buflen : 120 - c->buflen;
        /* sha_update counts these bytes into nbytes, but `bits` was
           latched before padding, so the length word stays correct */
        sha_update(c, zeros, fill);
    }
    {
        uint8_t len[8];
        for (i = 0; i < 8; i++)
            len[i] = (uint8_t)(bits >> (56 - 8 * i));
        sha_update(c, len, 8);
    }
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(c->state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(c->state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(c->state[i] >> 8);
        out[4 * i + 3] = (uint8_t)(c->state[i]);
    }
}

static void store_be32x8(const uint32_t *state, uint8_t *out)
{
    int i;
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(state[i] >> 8);
        out[4 * i + 3] = (uint8_t)(state[i]);
    }
}

static const uint32_t SHA_IV[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19
};

void lcm_ctr_keystream(const unsigned char *prefix, size_t prefix_len,
                       unsigned long long first_counter,
                       unsigned long long nblocks, unsigned char *out)
{
    size_t message_len = prefix_len + 8;
    unsigned long long i;

    if (message_len < 64) {
        /* the message (prefix || counter) plus padding spans at most two
           compression blocks with fixed layout: patch the counter bytes
           in place and skip the generic buffered-update machinery */
        uint8_t b1[64], b2[64];
        uint64_t bits = (uint64_t)message_len * 8;
        int two_blocks = message_len > 55;
        int b;
        memset(b1, 0, 64);
        memcpy(b1, prefix, prefix_len);
        b1[message_len] = 0x80;
        if (two_blocks) {
            memset(b2, 0, 64);
            for (b = 0; b < 8; b++)
                b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        } else {
            for (b = 0; b < 8; b++)
                b1[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        }
        for (i = 0; i < nblocks; i++) {
            uint32_t state[8];
            unsigned long long value = first_counter + i;
            for (b = 0; b < 8; b++)
                b1[prefix_len + b] = (uint8_t)(value >> (56 - 8 * b));
            memcpy(state, SHA_IV, sizeof state);
            sha_compress(state, b1);
            if (two_blocks)
                sha_compress(state, b2);
            store_be32x8(state, out + 32 * i);
        }
        return;
    }

    {
        sha_ctx seeded, block;
        uint8_t counter[8];
        sha_init(&seeded);
        sha_update(&seeded, prefix, prefix_len);
        for (i = 0; i < nblocks; i++) {
            unsigned long long value = first_counter + i;
            int b;
            for (b = 0; b < 8; b++)
                counter[b] = (uint8_t)(value >> (56 - 8 * b));
            block = seeded;
            sha_update(&block, counter, 8);
            sha_final(&block, out + 32 * i);
        }
    }
}

void lcm_ctr_keystream_batch(const unsigned char *prefixes,
                             size_t prefix_len,
                             const unsigned long long *counts,
                             size_t nboxes, unsigned char *out)
{
    size_t box;
    for (box = 0; box < nboxes; box++) {
        lcm_ctr_keystream(prefixes + box * prefix_len, prefix_len, 0,
                          counts[box], out);
        out += 32 * counts[box];
    }
}

void lcm_hmac_sha256_3(const unsigned char *key, size_t keylen,
                       const unsigned char *p1, size_t n1,
                       const unsigned char *p2, size_t n2,
                       const unsigned char *p3, size_t n3,
                       unsigned char *out)
{
    uint8_t pad[64], inner[32];
    sha_ctx c;
    size_t i;
    /* keys longer than the block size would need pre-hashing; the AEAD
       only ever passes 32-byte derived subkeys */
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_init(&c);
    sha_update(&c, pad, 64);
    if (n1) sha_update(&c, p1, n1);
    if (n2) sha_update(&c, p2, n2);
    if (n3) sha_update(&c, p3, n3);
    sha_final(&c, inner);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_init(&c);
    sha_update(&c, pad, 64);
    sha_update(&c, inner, 32);
    sha_final(&c, out);
}

void lcm_sha256_oneshot(const unsigned char *data, size_t n,
                        unsigned char *out)
{
    sha_ctx c;
    sha_init(&c);
    sha_update(&c, data, n);
    sha_final(&c, out);
}

/* hash(len8(prev) || prev || len8(op) || op || seq8 || cid8) — the LCM
   hash-chain step with its injective field framing built C-side, so one
   crossing replaces four int.to_bytes and a five-way concat. */
void lcm_chain_extend(const unsigned char *prev, size_t prev_len,
                      const unsigned char *op, size_t op_len,
                      unsigned long long sequence,
                      unsigned long long client_id,
                      unsigned char *out)
{
    sha_ctx c;
    uint8_t word[8];
    int b;
    sha_init(&c);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)((uint64_t)prev_len >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_update(&c, prev, prev_len);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)((uint64_t)op_len >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_update(&c, op, op_len);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)(sequence >> (56 - 8 * b));
    sha_update(&c, word, 8);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)(client_id >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_final(&c, out);
}

/* SHA-256 of every segment of a joined buffer in one call (amortizes
   the Python/C crossing across a batch of digests). */
void lcm_sha256_batch(const unsigned char *data,
                      const unsigned long long *offsets, size_t n,
                      unsigned char *out)
{
    size_t i;
    sha_ctx c;
    for (i = 0; i < n; i++) {
        sha_init(&c);
        sha_update(&c, data + offsets[i],
                   (size_t)(offsets[i + 1] - offsets[i]));
        sha_final(&c, out + 32 * i);
    }
}

/* ---- fused AEAD box primitives -------------------------------------- */

/* Direct-mapped in-process keystream cache, mirroring the AEAD layer's
   Python-side cache: in this simulation every box is sealed by one party
   and opened by another inside the same interpreter, so the opener's
   keystream is a cache hit.  Reuse is safe because a slot only answers
   for the exact (enc_key, nonce) pair that filled it, and the stream for
   a pair is deterministic.  All calls run under the GIL, so no locking. */
#define KS_SLOTS 512
#define KS_MAX_STREAM 1024

typedef struct {
    uint8_t key[32];
    uint8_t nonce[12];
    uint32_t nbytes;
    uint8_t valid;
    uint8_t stream[KS_MAX_STREAM];
} ks_slot;

static ks_slot ks_cache[KS_SLOTS];

static size_t ks_index(const unsigned char *nonce)
{
    uint32_t v;
    memcpy(&v, nonce, 4);
    return v % KS_SLOTS;
}

/* Generate nblocks keystream blocks for (enc_key, nonce) into out. */
static void ctr_blocks(const unsigned char *enc_key,
                       const unsigned char *nonce,
                       size_t nblocks, unsigned char *out)
{
    uint8_t b1[64], b2[64];
    uint64_t counter;
    int b;
    memset(b1, 0, 64);
    memcpy(b1, "lcm-ctr", 7);
    memcpy(b1 + 7, enc_key, 32);
    memcpy(b1 + 39, nonce, 12);
    b1[59] = 0x80;
    memset(b2, 0, 64);
    {
        uint64_t bits = 59 * 8;
        for (b = 0; b < 8; b++)
            b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
    }
    for (counter = 0; counter < nblocks; counter++) {
        uint32_t state[8];
        for (b = 0; b < 8; b++)
            b1[51 + b] = (uint8_t)(counter >> (56 - 8 * b));
        memcpy(state, SHA_IV, sizeof state);
        sha_compress(state, b1);
        sha_compress(state, b2);
        store_be32x8(state, out + 32 * counter);
    }
}

/* XOR `in` with the SHA-256-CTR keystream for (enc_key, nonce) into
   `out`, going through the keystream cache for in-process pairs. */
static void ctr_xor(const unsigned char *enc_key, const unsigned char *nonce,
                    const unsigned char *in, size_t len, unsigned char *out)
{
    size_t k;

    if (!len)
        return;
    if (len <= KS_MAX_STREAM) {
        ks_slot *slot = &ks_cache[ks_index(nonce)];
        if (!(slot->valid && slot->nbytes >= len
              && !memcmp(slot->nonce, nonce, 12)
              && !memcmp(slot->key, enc_key, 32))) {
            size_t nblocks = (len + 31) / 32;
            ctr_blocks(enc_key, nonce, nblocks, slot->stream);
            memcpy(slot->key, enc_key, 32);
            memcpy(slot->nonce, nonce, 12);
            slot->nbytes = (uint32_t)(nblocks * 32);
            slot->valid = 1;
        }
        for (k = 0; k < len; k++)
            out[k] = in[k] ^ slot->stream[k];
        return;
    }
    {
        /* oversized payload: stream block by block, uncached */
        uint8_t block[32];
        uint8_t b1[64], b2[64];
        uint64_t counter = 0;
        size_t off = 0;
        int b;
        memset(b1, 0, 64);
        memcpy(b1, "lcm-ctr", 7);
        memcpy(b1 + 7, enc_key, 32);
        memcpy(b1 + 39, nonce, 12);
        b1[59] = 0x80;
        memset(b2, 0, 64);
        {
            uint64_t bits = 59 * 8;
            for (b = 0; b < 8; b++)
                b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        }
        while (off < len) {
            uint32_t state[8];
            size_t take = len - off < 32 ? len - off : 32;
            for (b = 0; b < 8; b++)
                b1[51 + b] = (uint8_t)(counter >> (56 - 8 * b));
            memcpy(state, SHA_IV, sizeof state);
            sha_compress(state, b1);
            sha_compress(state, b2);
            store_be32x8(state, block);
            for (k = 0; k < take; k++)
                out[off + k] = in[off + k] ^ block[k];
            off += take;
            counter++;
        }
    }
}

static void hmac_pad_states(const unsigned char *key, size_t keylen,
                            uint32_t *ipad_state, uint32_t *opad_state)
{
    uint8_t pad[64];
    size_t i;
    memcpy(ipad_state, SHA_IV, 32);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_compress(ipad_state, pad);
    memcpy(opad_state, SHA_IV, 32);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_compress(opad_state, pad);
}

static void derive_tag16(const uint32_t *ipad_state, const uint32_t *opad_state,
                         const unsigned char *frame, size_t frame_len,
                         const unsigned char *seg, size_t seg_len,
                         unsigned char *out16)
{
    uint8_t inner[32], full[32];
    sha_ctx c;
    memcpy(c.state, ipad_state, 32);
    c.nbytes = 64;
    c.buflen = 0;
    sha_update(&c, frame, frame_len);
    sha_update(&c, seg, seg_len);
    sha_final(&c, inner);
    memcpy(c.state, opad_state, 32);
    c.nbytes = 64;
    c.buflen = 0;
    sha_update(&c, inner, 32);
    sha_final(&c, full);
    memcpy(out16, full, 16);
}

static int tag16_differs(const unsigned char *a, const unsigned char *b)
{
    unsigned char acc = 0;
    int i;
    for (i = 0; i < 16; i++)
        acc |= a[i] ^ b[i];
    return acc != 0;
}

/* out = nonce(12) || ciphertext(pt_len): confidentiality only, for the
   sections whose integrity the manifest tag provides */
void lcm_stream_box(const unsigned char *enc_key,
                    const unsigned char *nonce,
                    const unsigned char *pt, size_t pt_len,
                    unsigned char *out)
{
    memcpy(out, nonce, 12);
    ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
}

/* out = nonce(12) || ciphertext(pt_len) || tag(16) */
void lcm_seal_box(const unsigned char *enc_key, const unsigned char *mac_key,
                  const unsigned char *nonce,
                  const unsigned char *frame, size_t frame_len,
                  const unsigned char *pt, size_t pt_len,
                  unsigned char *out)
{
    uint32_t ipad_state[8], opad_state[8];
    memcpy(out, nonce, 12);
    ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 out, 12 + pt_len, out + 12 + pt_len);
}

/* Returns 0 and writes box_len-28 plaintext bytes, or -1 on a bad MAC
   (nothing written). */
int lcm_open_box(const unsigned char *enc_key, const unsigned char *mac_key,
                 const unsigned char *frame, size_t frame_len,
                 const unsigned char *box, size_t box_len,
                 unsigned char *out_pt)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char tag[16];
    if (box_len < 28)
        return -1;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 box, box_len - 16, tag);
    if (tag16_differs(tag, box + box_len - 16))
        return -1;
    ctr_xor(enc_key, box, box + 12, box_len - 28, out_pt);
    return 0;
}

/* Batch seal: offsets[i]..offsets[i+1] delimit plaintext i inside
   joined_pt; boxes are emitted back to back into out. */
void lcm_seal_boxes(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonces,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *joined_pt,
                    const unsigned long long *offsets, size_t n,
                    unsigned char *out)
{
    uint32_t ipad_state[8], opad_state[8];
    size_t i;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const unsigned char *pt = joined_pt + offsets[i];
        size_t pt_len = (size_t)(offsets[i + 1] - offsets[i]);
        const unsigned char *nonce = nonces + 12 * i;
        memcpy(out, nonce, 12);
        ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     out, 12 + pt_len, out + 12 + pt_len);
        out += pt_len + 28;
    }
}

/* Batch open, all-or-nothing: every tag is verified before any byte of
   plaintext is produced.  Returns 0 on success, -(i+1) when box i is the
   first bad one (every box is still scanned).  offsets delimit whole
   boxes inside joined_boxes. */
int lcm_open_boxes(const unsigned char *enc_key,
                   const unsigned char *mac_key,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *joined_boxes,
                   const unsigned long long *offsets, size_t n,
                   unsigned char *out_pt)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char tag[16];
    long long bad = -1;
    size_t i;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const unsigned char *box = joined_boxes + offsets[i];
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        if (box_len < 28) {
            if (bad < 0)
                bad = (long long)i;
            continue;
        }
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     box, box_len - 16, tag);
        if (tag16_differs(tag, box + box_len - 16) && bad < 0)
            bad = (long long)i;
    }
    if (bad >= 0)
        return (int)(-bad - 1);
    for (i = 0; i < n; i++) {
        const unsigned char *box = joined_boxes + offsets[i];
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        ctr_xor(enc_key, box, box + 12, box_len - 28, out_pt);
        out_pt += box_len - 28;
    }
    return 0;
}

/* One call, many tags: HMAC-SHA-256 over (frame || seg_i) for every
   segment, sharing the pad-block compressions across the batch.  The
   inner/outer key-pad states are computed once; each tag then resumes
   from the saved state with nbytes pre-set to the pad block's 64. */
void lcm_hmac_tags(const unsigned char *key, size_t keylen,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *segs,
                   const unsigned long long *offsets,
                   size_t n, unsigned char *out)
{
    uint8_t pad[64], inner_digest[32];
    uint32_t ipad_state[8], opad_state[8];
    sha_ctx c;
    size_t i, t;

    memcpy(ipad_state, SHA_IV, sizeof ipad_state);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_compress(ipad_state, pad);
    memcpy(opad_state, SHA_IV, sizeof opad_state);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_compress(opad_state, pad);

    for (t = 0; t < n; t++) {
        const unsigned char *seg = segs + offsets[t];
        size_t seg_len = (size_t)(offsets[t + 1] - offsets[t]);
        memcpy(c.state, ipad_state, sizeof ipad_state);
        c.nbytes = 64;
        c.buflen = 0;
        sha_update(&c, frame, frame_len);
        sha_update(&c, seg, seg_len);
        sha_final(&c, inner_digest);
        memcpy(c.state, opad_state, sizeof opad_state);
        c.nbytes = 64;
        c.buflen = 0;
        sha_update(&c, inner_digest, 32);
        sha_final(&c, out + 32 * t);
    }
}
"""

_BUILD_DIR = pathlib.Path(__file__).resolve().with_name("_fastpath_build")


class CBackend:
    """cffi-compiled CTR/HMAC block loops (byte-identical to hashlib)."""

    name = "c"
    native = True

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib
        self.hmac3 = self._hmac3
        self.hmac_tags = self._hmac_tags
        self.sha256_oneshot = self._sha256_oneshot
        self.sha256_many = self._sha256_many
        self.chain_extend = self._chain_extend
        self.seal_box = self._seal_box
        self.open_box = self._open_box
        self.seal_boxes = self._seal_boxes
        self.open_boxes = self._open_boxes

    def blocks(self, prefix: bytes, nblocks: int, *, seeded=None) -> bytes:
        out = bytearray(nblocks * 32)
        self._lib.lcm_ctr_keystream(
            prefix, len(prefix), 0, nblocks, self._ffi.from_buffer(out)
        )
        return bytes(out)

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        joined = _join(prefixes)
        plen = len(prefixes[0]) if prefixes else 0
        out = bytearray(32 * sum(counts))
        counts_arr = array.array("Q", counts)
        self._lib.lcm_ctr_keystream_batch(
            joined,
            plen,
            self._ffi.from_buffer("unsigned long long[]", counts_arr),
            len(counts),
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _hmac3(self, key: bytes, p1, p2, p3) -> bytes:
        ffi = self._ffi
        out = bytearray(32)
        self._lib.lcm_hmac_sha256_3(
            key, len(key),
            ffi.from_buffer(p1), len(p1),
            ffi.from_buffer(p2), len(p2),
            ffi.from_buffer(p3), len(p3),
            ffi.from_buffer(out),
        )
        return bytes(out)

    def _hmac_tags(self, key: bytes, frame: bytes, segments: list) -> list[bytes]:
        """HMAC-SHA-256 digests of ``frame || segment`` per segment,
        computed in one C call with the key-pad compressions shared."""
        count = len(segments)
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, segments)))
        )
        segs = _join(segments)
        out = bytearray(32 * count)
        self._lib.lcm_hmac_tags(
            key, len(key),
            frame, len(frame),
            segs,
            self._ffi.from_buffer("unsigned long long[]", offsets),
            count,
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        return [view[start : start + 32] for start in range(0, 32 * count, 32)]

    def _sha256_oneshot(self, data: bytes) -> bytes:
        out = bytearray(32)
        self._lib.lcm_sha256_oneshot(
            self._ffi.from_buffer(data), len(data), self._ffi.from_buffer(out)
        )
        return bytes(out)

    def _chain_extend(
        self, previous: bytes, operation: bytes, sequence: int, client_id: int
    ) -> bytes:
        """One hash-chain step (framing + SHA-256) in a single C call.

        Raises OverflowError for field values outside 64 bits, exactly
        like the Python framing's ``int.to_bytes(8, "big")``.
        """
        out = bytearray(32)
        self._lib.lcm_chain_extend(
            previous, len(previous),
            operation, len(operation),
            sequence, client_id,
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _sha256_many(self, segments: list) -> list[bytes]:
        """SHA-256 digests of every segment in one C call."""
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, segments)))
        )
        out = bytearray(32 * len(segments))
        self._lib.lcm_sha256_batch(
            _join(segments),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(segments),
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        return [view[start : start + 32] for start in range(0, len(view), 32)]

    def _seal_box(
        self, enc_key: bytes, mac_key: bytes, nonce: bytes,
        frame: bytes, plaintext,
    ) -> bytes:
        """Whole AEAD box (nonce || ct || tag) in one C call."""
        size = len(plaintext)
        out = bytearray(28 + size)
        if type(plaintext) is not bytes:  # cffi takes bytes pointers directly
            plaintext = self._ffi.from_buffer(plaintext)
        self._lib.lcm_seal_box(
            enc_key, mac_key, nonce,
            frame, len(frame),
            plaintext, size,
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _open_box(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, box
    ) -> bytes | None:
        """Verify-and-decrypt in one C call; None on a bad MAC."""
        size = len(box)
        if size < 28:
            return None
        out = bytearray(size - 28)
        if type(box) is not bytes:
            box = self._ffi.from_buffer(box)
        ok = self._lib.lcm_open_box(
            enc_key, mac_key,
            frame, len(frame),
            box, size,
            self._ffi.from_buffer(out),
        )
        return bytes(out) if ok == 0 else None

    def _seal_boxes(
        self, enc_key: bytes, mac_key: bytes, nonces: list[bytes],
        frame: bytes, plaintexts: list,
    ) -> list[bytes]:
        """A whole batch of AEAD boxes in one C call."""
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, plaintexts)))
        )
        out = bytearray(offsets[-1] + 28 * len(plaintexts))
        self._lib.lcm_seal_boxes(
            enc_key, mac_key,
            _join(nonces),
            frame, len(frame),
            _join(plaintexts),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(plaintexts),
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        boxes = []
        cursor = 0
        for index in range(len(plaintexts)):
            size = offsets[index + 1] - offsets[index] + 28
            boxes.append(view[cursor : cursor + size])
            cursor += size
        return boxes

    def _open_boxes(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, boxes: list
    ) -> "tuple[list[bytes] | None, int]":
        """Batch verify-then-decrypt in one C call.

        Returns ``(plaintexts, -1)`` on success or ``(None, index)`` with
        the first bad box's index; MAC verification of every box happens
        before any plaintext is produced (all-or-nothing).
        """
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, boxes)))
        )
        for index, box in enumerate(boxes):
            if len(box) < 28:
                return None, index
        out = bytearray(offsets[-1] - 28 * len(boxes))
        status = self._lib.lcm_open_boxes(
            enc_key, mac_key,
            frame, len(frame),
            _join(boxes),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(boxes),
            self._ffi.from_buffer(out),
        )
        if status != 0:
            return None, -status - 1
        view = bytes(out)
        plaintexts = []
        cursor = 0
        for index in range(len(boxes)):
            size = offsets[index + 1] - offsets[index] - 28
            plaintexts.append(view[cursor : cursor + size])
            cursor += size
        return plaintexts, -1


def _load_compiled(modname: str):
    import importlib.util

    for candidate in sorted(_BUILD_DIR.glob(modname + "*.so")):
        spec = importlib.util.spec_from_file_location(modname, candidate)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    return None


def _build_c_backend() -> CBackend | None:
    """Compile (or load the cached) C module; None when unavailable."""
    try:
        import cffi
    except ImportError:
        return None
    digest = hashlib.sha256((_CDEF + _C_SOURCE).encode()).hexdigest()[:12]
    modname = f"_lcm_fastpath_{digest}"
    try:
        _BUILD_DIR.mkdir(exist_ok=True)
        module = _load_compiled(modname)
        if module is None:
            ffibuilder = cffi.FFI()
            ffibuilder.cdef(_CDEF)
            ffibuilder.set_source(
                modname, _C_SOURCE, extra_compile_args=["-O3"]
            )
            # compile in a per-pid scratch dir, then publish the .so with an
            # atomic rename so concurrent test processes never observe a
            # half-written module
            scratch = _BUILD_DIR / f"tmp-{os.getpid()}"
            so_path = pathlib.Path(
                ffibuilder.compile(tmpdir=str(scratch), verbose=False)
            )
            os.replace(so_path, _BUILD_DIR / so_path.name)
            shutil.rmtree(scratch, ignore_errors=True)
            for stale in _BUILD_DIR.glob("_lcm_fastpath_*.so"):
                if not stale.name.startswith(modname):
                    stale.unlink(missing_ok=True)
            module = _load_compiled(modname)
        if module is None:
            return None
        return CBackend(module.ffi, module.lib)
    except Exception:  # no compiler / broken toolchain: fall back silently
        return None


# ------------------------------------------------------------- selection

_BACKENDS: dict[str, object] = {}
_c_attempted = False


def _get_backend(name: str):
    global _c_attempted
    backend = _BACKENDS.get(name)
    if backend is not None:
        return backend
    if name == "python":
        backend = PythonBackend()
    elif name == "python-batch":
        backend = BatchPythonBackend()
    elif name == "c":
        if _c_attempted:
            return None
        _c_attempted = True
        backend = _build_c_backend()
        if backend is None:
            return None
    else:
        raise ConfigurationError(
            f"unknown fastpath backend {name!r} "
            "(expected 'c', 'python-batch' or 'python')"
        )
    _BACKENDS[name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of the backends that can actually be instantiated here."""
    names = ["python", "python-batch"]
    if _get_backend("c") is not None:
        names.insert(0, "c")
    return names


def select_backend(name: str | None = None):
    """Install (and return) the active backend.

    ``name=None`` applies the default policy: the accelerated C backend
    when it is buildable, else the hashlib-copy-minimizing batch
    variant.  Requesting ``"c"`` explicitly when it cannot be built
    raises :class:`~repro.errors.ConfigurationError` instead of silently
    degrading.
    """
    global BACKEND
    if name is None:
        backend = _get_backend("c") or _get_backend("python-batch")
    else:
        backend = _get_backend(name)
        if backend is None:
            raise ConfigurationError(
                f"fastpath backend {name!r} is unavailable "
                "(cffi or a C compiler is missing)"
            )
    BACKEND = backend
    return backend


def active_backend():
    """The backend the AEAD currently generates keystreams with."""
    return BACKEND


#: Selected at import; the REPRO_FASTPATH environment variable pins a
#: specific backend (e.g. ``REPRO_FASTPATH=python`` for a pure-stdlib
#: run, or ``=c`` to fail loudly when the compiled backend is missing).
BACKEND = select_backend(os.environ.get(_ENV_VAR) or None)
