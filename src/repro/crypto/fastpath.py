"""Pluggable fast keystream / MAC backend for the AEAD hot path.

The ROADMAP identifies the SHA-256-CTR block loop as the invoke hot
path's floor: every 32-byte keystream block costs one hashlib state
clone, one update and one digest (~0.3-0.5 µs of Python/C boundary
overhead per block), and every HMAC tag costs two more clones.  This
module concentrates that loop behind a small backend interface so the
primitive can be swapped without touching the wire format:

``c``
    A cffi-compiled C block loop (SHA-256 compression function plus CTR
    and HMAC drivers).  Compiled once into ``_fastpath_build/`` next to
    this module and reused across processes; needs ``cffi`` and a C
    compiler at first import.
``python-batch``
    Pure Python, hashlib-copy-minimizing batch variant: one locals-bound
    loop over all blocks of all boxes in a batch, one ``join``.
``python``
    The reference per-box block loop (the PR 1 implementation).

Every backend produces **byte-identical** keystreams and tags — the
golden-vector tests run against whichever backend is active, and
``tests/crypto/test_fastpath.py`` cross-checks the backends against each
other.  Selection happens at import: the accelerated backend when it is
buildable, else ``python-batch``; the ``REPRO_FASTPATH`` environment
variable (or :func:`select_backend` at runtime) overrides.

A keystream block is ``SHA-256(b"lcm-ctr" || enc_key || nonce ||
counter_8be)`` (see :mod:`repro.crypto.aead`); backends receive the
51-byte prefix ``b"lcm-ctr" || enc_key || nonce`` and a block count.
"""

from __future__ import annotations

import array
import hashlib
from itertools import accumulate, chain
import os
import pathlib
import shutil
import threading
from typing import Callable

from repro.errors import ConfigurationError

_sha256 = hashlib.sha256
_join = b"".join

#: Big-endian counter suffixes for the common stream lengths (128 KiB);
#: longer streams generate counters on the fly.
_COUNTERS = tuple(counter.to_bytes(8, "big") for counter in range(4096))

_ENV_VAR = "REPRO_FASTPATH"


def _counters(nblocks: int):
    if nblocks <= len(_COUNTERS):
        return _COUNTERS[:nblocks]
    return [counter.to_bytes(8, "big") for counter in range(nblocks)]


class PythonBackend:
    """Reference per-box block loop (pure Python + hashlib)."""

    name = "python"
    #: True for the compiled backend (callers may skip building hashlib
    #: seed states when the backend ignores them).
    native = False
    #: Optional accelerated primitives; ``None`` means the caller keeps
    #: its own hashlib path (see aead._tag_for).
    hmac3: Callable[[bytes, bytes, bytes, bytes], bytes] | None = None
    sha256_oneshot: Callable[[bytes], bytes] | None = None
    #: Fused whole-box AEAD primitives (keystream + XOR + MAC in one C
    #: call); ``None`` means the AEAD layer composes them from the block
    #: loop and hashlib instead.
    seal_box = None
    open_box = None
    seal_boxes = None
    open_boxes = None
    sha256_many: Callable[[list], list[bytes]] | None = None
    chain_extend: Callable[[bytes, bytes, int, int], bytes] | None = None
    #: Fused protocol codecs (whole-message or whole-batch field codec +
    #: AEAD in one C call); ``None`` means the message layer and the
    #: trusted context run their per-field Python paths instead.
    seal_invoke = None
    open_reply = None
    seal_invoke_batch = None
    open_reply_batch = None
    invoke_batch_open = None
    invoke_batch_reply = None

    def blocks(self, prefix: bytes, nblocks: int, *, seeded=None) -> bytes:
        """``nblocks * 32`` keystream bytes for one (key, nonce).

        ``seeded`` is an optional SHA-256 state already fed with
        ``prefix`` (cached per key+nonce by the caller); cloning it per
        block skips re-hashing the constant bytes.
        """
        if seeded is None:
            seeded = _sha256(prefix)
        clone = seeded.copy
        blocks = []
        append = blocks.append
        for counter in _counters(nblocks):
            block = clone()
            block.update(counter)
            append(block.digest())
        return _join(blocks)

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        """Concatenated keystreams for a batch of (prefix, count) spans."""
        return _join(
            self.blocks(prefix, count)
            for prefix, count in zip(prefixes, counts)
        )

    # The batch HMAC pass: the C backend computes tags for a whole invoke
    # batch in one native call; the pure-Python backends amortize the
    # expensive part instead — the HMAC key schedule and the framed inner
    # state are built once per (key, frame) and *cloned* per segment, so
    # each additional tag costs two hash updates and two finalizations
    # rather than a full ``hmac.new`` (byte-identical, test-pinned).

    #: (mac_key, frame) -> SHA-256 states (inner pre-fed with pads+frame,
    #: outer pre-fed with pads); tiny — a handful of protocol constants
    #: per key — but bounded anyway, evicted FIFO.
    _HMAC_STATE_CACHE_MAX = 64

    def __init__(self) -> None:
        self._hmac_states: dict[tuple[bytes, bytes], tuple] = {}

    def _hmac_seeds(self, key: bytes, frame: bytes):
        cached = self._hmac_states.get((key, frame))
        if cached is not None:
            return cached
        padded = key + b"\x00" * (64 - len(key))
        inner = _sha256(bytes(b ^ 0x36 for b in padded))
        inner.update(frame)
        outer = _sha256(bytes(b ^ 0x5C for b in padded))
        if len(self._hmac_states) >= self._HMAC_STATE_CACHE_MAX:
            self._hmac_states.pop(next(iter(self._hmac_states)))
        self._hmac_states[(key, frame)] = (inner, outer)
        return inner, outer

    def hmac_tags(self, key: bytes, frame: bytes, segments: list) -> list[bytes]:
        """Full ``HMAC-SHA256(key, frame || segment)`` digests for every
        segment, sharing one key schedule across the batch."""
        inner, outer = self._hmac_seeds(key, frame)
        clone = inner.copy
        outer_clone = outer.copy
        tags = []
        append = tags.append
        for segment in segments:
            mac = clone()
            mac.update(segment)
            tag = outer_clone()
            tag.update(mac.digest())
            append(tag.digest())
        return tags


class BatchPythonBackend(PythonBackend):
    """Hashlib-copy-minimizing batch variant.

    The per-box entry point is identical to :class:`PythonBackend`; the
    batch entry runs one locals-bound loop over every block of every box
    and emits a single ``join``, so the Python interpreter executes one
    frame for the whole batch instead of one per box.
    """

    name = "python-batch"

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        sha256 = _sha256
        counters = _COUNTERS
        blocks: list[bytes] = []
        append = blocks.append
        for prefix, count in zip(prefixes, counts):
            clone = sha256(prefix).copy
            for counter in counters[:count]:
                block = clone()
                block.update(counter)
                append(block.digest())
            if count > len(counters):  # beyond the precomputed table
                for extra in range(len(counters), count):
                    block = clone()
                    block.update(extra.to_bytes(8, "big"))
                    append(block.digest())
        return _join(blocks)


# --------------------------------------------------------------------- C

_CDEF = """
void lcm_ctr_keystream(const unsigned char *prefix, size_t prefix_len,
                       unsigned long long first_counter,
                       unsigned long long nblocks, unsigned char *out);
void lcm_ctr_keystream_batch(const unsigned char *prefixes,
                             size_t prefix_len,
                             const unsigned long long *counts,
                             size_t nboxes, unsigned char *out);
void lcm_hmac_sha256_3(const unsigned char *key, size_t keylen,
                       const unsigned char *p1, size_t n1,
                       const unsigned char *p2, size_t n2,
                       const unsigned char *p3, size_t n3,
                       unsigned char *out);
void lcm_hmac_tags(const unsigned char *key, size_t keylen,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *segs,
                   const unsigned long long *offsets,
                   size_t n, unsigned char *out);
void lcm_sha256_oneshot(const unsigned char *data, size_t n,
                        unsigned char *out);
void lcm_sha256_batch(const unsigned char *data,
                      const unsigned long long *offsets, size_t n,
                      unsigned char *out);
void lcm_chain_extend(const unsigned char *prev, size_t prev_len,
                      const unsigned char *op, size_t op_len,
                      unsigned long long sequence,
                      unsigned long long client_id,
                      unsigned char *out);
void lcm_seal_box(const unsigned char *enc_key, const unsigned char *mac_key,
                  const unsigned char *nonce,
                  const unsigned char *frame, size_t frame_len,
                  const unsigned char *pt, size_t pt_len,
                  unsigned char *out);
void lcm_stream_box(const unsigned char *enc_key,
                    const unsigned char *nonce,
                    const unsigned char *pt, size_t pt_len,
                    unsigned char *out);
int lcm_open_box(const unsigned char *enc_key, const unsigned char *mac_key,
                 const unsigned char *frame, size_t frame_len,
                 const unsigned char *box, size_t box_len,
                 unsigned char *out_pt);
void lcm_seal_boxes(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonces,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *joined_pt,
                    const unsigned long long *offsets, size_t n,
                    unsigned char *out);
int lcm_open_boxes(const unsigned char *enc_key,
                   const unsigned char *mac_key,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *joined_boxes,
                   const unsigned long long *offsets, size_t n,
                   unsigned char *out_pt);
int lcm_seal_invoke(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonce,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *prefix, size_t prefix_len,
                    long long tc,
                    const unsigned char *hc, size_t hc_len,
                    const unsigned char *op, size_t op_len,
                    long long cid, int retry,
                    unsigned char *out);
long long lcm_open_reply(const unsigned char *enc_key,
                         const unsigned char *mac_key,
                         const unsigned char *frame, size_t frame_len,
                         const unsigned char *prefix, size_t prefix_len,
                         const unsigned char *box, size_t box_len,
                         unsigned char *out_pt, long long *meta);
int lcm_seal_invoke_batch(const unsigned char *enc_key,
                          const unsigned char *mac_key,
                          const unsigned char *frame, size_t frame_len,
                          const unsigned char *prefix, size_t prefix_len,
                          const unsigned char *nonces,
                          const long long *tcs,
                          const unsigned char *hcs,
                          const unsigned long long *hc_offsets,
                          const unsigned char *ops,
                          const unsigned long long *op_offsets,
                          const long long *cids,
                          const unsigned char *retries,
                          size_t n,
                          unsigned char *out_boxes);
long long lcm_open_reply_batch(const unsigned char *enc_key,
                               const unsigned char *mac_key,
                               const unsigned char *frame, size_t frame_len,
                               const unsigned char *prefix, size_t prefix_len,
                               const unsigned char *joined_boxes,
                               const unsigned long long *offsets, size_t n,
                               unsigned char *out_pt,
                               long long *meta);
long long lcm_invoke_batch_open(const unsigned char *enc_key,
                                const unsigned char *mac_key,
                                const unsigned char *frame, size_t frame_len,
                                const unsigned char *prefix, size_t prefix_len,
                                const unsigned char *joined_boxes,
                                const unsigned long long *offsets, size_t n,
                                unsigned char *out_pt,
                                long long *meta,
                                unsigned char *chains_out,
                                const long long *row_ids, size_t nrows,
                                long long *row_ack, long long *row_seq,
                                unsigned char *row_chains,
                                long long *acks,
                                long long quorum,
                                long long *sequence_io,
                                unsigned char *chain_io);
int lcm_invoke_batch_reply(const unsigned char *enc_key,
                           const unsigned char *mac_key,
                           const unsigned char *frame, size_t frame_len,
                           const unsigned char *prefix, size_t prefix_len,
                           const long long *meta, size_t n,
                           const unsigned char *chains,
                           const unsigned char *pt_in,
                           const unsigned char *results,
                           const unsigned long long *result_offsets,
                           const unsigned char *nonce_seed,
                           unsigned long long nonce_counter,
                           unsigned char *out_boxes,
                           unsigned char *out_rows,
                           unsigned char *out_manifests);
"""

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    uint32_t state[8];
    uint64_t nbytes;
    uint8_t buf[64];
    size_t buflen;
} sha_ctx;

static const uint32_t K[64] = {
    0x428a2f98,0x71374491,0xb5c0fbcf,0xe9b5dba5,0x3956c25b,0x59f111f1,
    0x923f82a4,0xab1c5ed5,0xd807aa98,0x12835b01,0x243185be,0x550c7dc3,
    0x72be5d74,0x80deb1fe,0x9bdc06a7,0xc19bf174,0xe49b69c1,0xefbe4786,
    0x0fc19dc6,0x240ca1cc,0x2de92c6f,0x4a7484aa,0x5cb0a9dc,0x76f988da,
    0x983e5152,0xa831c66d,0xb00327c8,0xbf597fc7,0xc6e00bf3,0xd5a79147,
    0x06ca6351,0x14292967,0x27b70a85,0x2e1b2138,0x4d2c6dfc,0x53380d13,
    0x650a7354,0x766a0abb,0x81c2c92e,0x92722c85,0xa2bfe8a1,0xa81a664b,
    0xc24b8b70,0xc76c51a3,0xd192e819,0xd6990624,0xf40e3585,0x106aa070,
    0x19a4c116,0x1e376c08,0x2748774c,0x34b0bcb5,0x391c0cb3,0x4ed8aa4a,
    0x5b9cca4f,0x682e6ff3,0x748f82ee,0x78a5636f,0x84c87814,0x8cc70208,
    0x90befffa,0xa4506ceb,0xbef9a3f7,0xc67178f2
};

#define ROTR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void sha_compress_portable(uint32_t *s, const uint8_t *p)
{
    uint32_t w[64];
    uint32_t a, b, c, d, e, f, g, h;
    int i;
    for (i = 0; i < 16; i++)
        w[i] = ((uint32_t)p[4 * i] << 24) | ((uint32_t)p[4 * i + 1] << 16)
             | ((uint32_t)p[4 * i + 2] << 8) | (uint32_t)p[4 * i + 3];
    for (i = 16; i < 64; i++) {
        uint32_t s0 = ROTR(w[i - 15], 7) ^ ROTR(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = ROTR(w[i - 2], 17) ^ ROTR(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    a = s[0]; b = s[1]; c = s[2]; d = s[3];
    e = s[4]; f = s[5]; g = s[6]; h = s[7];
    for (i = 0; i < 64; i++) {
        uint32_t S1 = ROTR(e, 6) ^ ROTR(e, 11) ^ ROTR(e, 25);
        uint32_t ch = (e & f) ^ ((~e) & g);
        uint32_t t1 = h + S1 + ch + K[i] + w[i];
        uint32_t S0 = ROTR(a, 2) ^ ROTR(a, 13) ^ ROTR(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    s[0] += a; s[1] += b; s[2] += c; s[3] += d;
    s[4] += e; s[5] += f; s[6] += g; s[7] += h;
}

/* SHA-NI path: the hot machines hashlib (OpenSSL) runs on execute one
   round quartet per instruction; matching it is what makes this backend
   faster than the stdlib per-block loop rather than merely equal. */
#if defined(__x86_64__) && defined(__GNUC__)
#define LCM_HAVE_SHA_NI 1
#include <immintrin.h>

__attribute__((target("sha,sse4.1,ssse3")))
static void sha_compress_ni(uint32_t *s, const uint8_t *p)
{
    __m128i state0, state1, abef_save, cdgh_save, tmp;
    __m128i msgs[4];
    const __m128i mask =
        _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
    int i;

    tmp    = _mm_loadu_si128((const __m128i *)&s[0]);   /* DCBA */
    state1 = _mm_loadu_si128((const __m128i *)&s[4]);   /* HGFE */
    tmp    = _mm_shuffle_epi32(tmp, 0xB1);              /* CDAB */
    state1 = _mm_shuffle_epi32(state1, 0x1B);           /* EFGH */
    state0 = _mm_alignr_epi8(tmp, state1, 8);           /* ABEF */
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);        /* CDGH */
    abef_save = state0;
    cdgh_save = state1;

    for (i = 0; i < 4; i++)
        msgs[i] = _mm_shuffle_epi8(
            _mm_loadu_si128((const __m128i *)(p + 16 * i)), mask);

    for (i = 0; i < 16; i++) {
        __m128i kv = _mm_loadu_si128((const __m128i *)&K[4 * i]);
        __m128i msg = _mm_add_epi32(msgs[i & 3], kv);
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
        if (i >= 3 && i < 15) {
            /* schedule message quad i+1 into the slot of quad i-3 */
            __m128i t = _mm_alignr_epi8(msgs[i & 3], msgs[(i - 1) & 3], 4);
            __m128i nxt =
                _mm_sha256msg1_epu32(msgs[(i - 3) & 3], msgs[(i - 2) & 3]);
            nxt = _mm_add_epi32(nxt, t);
            msgs[(i - 3) & 3] = _mm_sha256msg2_epu32(nxt, msgs[i & 3]);
        }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    tmp    = _mm_shuffle_epi32(state0, 0x1B);           /* FEBA */
    state1 = _mm_shuffle_epi32(state1, 0xB1);           /* DCHG */
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);        /* DCBA */
    state1 = _mm_alignr_epi8(state1, tmp, 8);           /* HGFE */
    _mm_storeu_si128((__m128i *)&s[0], state0);
    _mm_storeu_si128((__m128i *)&s[4], state1);
}
#endif

static void (*sha_compress)(uint32_t *, const uint8_t *) = 0;

__attribute__((constructor))
static void lcm_pick_compress(void)
{
#ifdef LCM_HAVE_SHA_NI
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
        sha_compress = sha_compress_ni;
        return;
    }
#endif
    sha_compress = sha_compress_portable;
}

static void sha_init(sha_ctx *c)
{
    c->state[0] = 0x6a09e667; c->state[1] = 0xbb67ae85;
    c->state[2] = 0x3c6ef372; c->state[3] = 0xa54ff53a;
    c->state[4] = 0x510e527f; c->state[5] = 0x9b05688c;
    c->state[6] = 0x1f83d9ab; c->state[7] = 0x5be0cd19;
    c->nbytes = 0;
    c->buflen = 0;
}

static void sha_update(sha_ctx *c, const uint8_t *d, size_t n)
{
    c->nbytes += n;
    if (c->buflen) {
        size_t take = 64 - c->buflen;
        if (take > n) take = n;
        memcpy(c->buf + c->buflen, d, take);
        c->buflen += take;
        d += take;
        n -= take;
        if (c->buflen == 64) {
            sha_compress(c->state, c->buf);
            c->buflen = 0;
        }
    }
    while (n >= 64) {
        sha_compress(c->state, d);
        d += 64;
        n -= 64;
    }
    if (n) {
        memcpy(c->buf, d, n);
        c->buflen = n;
    }
}

static void sha_final(sha_ctx *c, uint8_t *out)
{
    uint64_t bits = c->nbytes * 8;
    size_t i;
    uint8_t pad = 0x80;
    sha_update(c, &pad, 1);
    {
        static const uint8_t zeros[64] = {0};
        size_t fill = (c->buflen <= 56) ? 56 - c->buflen : 120 - c->buflen;
        /* sha_update counts these bytes into nbytes, but `bits` was
           latched before padding, so the length word stays correct */
        sha_update(c, zeros, fill);
    }
    {
        uint8_t len[8];
        for (i = 0; i < 8; i++)
            len[i] = (uint8_t)(bits >> (56 - 8 * i));
        sha_update(c, len, 8);
    }
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(c->state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(c->state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(c->state[i] >> 8);
        out[4 * i + 3] = (uint8_t)(c->state[i]);
    }
}

static void store_be32x8(const uint32_t *state, uint8_t *out)
{
    int i;
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(state[i] >> 8);
        out[4 * i + 3] = (uint8_t)(state[i]);
    }
}

static const uint32_t SHA_IV[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19
};

void lcm_ctr_keystream(const unsigned char *prefix, size_t prefix_len,
                       unsigned long long first_counter,
                       unsigned long long nblocks, unsigned char *out)
{
    size_t message_len = prefix_len + 8;
    unsigned long long i;

    if (message_len < 64) {
        /* the message (prefix || counter) plus padding spans at most two
           compression blocks with fixed layout: patch the counter bytes
           in place and skip the generic buffered-update machinery */
        uint8_t b1[64], b2[64];
        uint64_t bits = (uint64_t)message_len * 8;
        int two_blocks = message_len > 55;
        int b;
        memset(b1, 0, 64);
        memcpy(b1, prefix, prefix_len);
        b1[message_len] = 0x80;
        if (two_blocks) {
            memset(b2, 0, 64);
            for (b = 0; b < 8; b++)
                b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        } else {
            for (b = 0; b < 8; b++)
                b1[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        }
        for (i = 0; i < nblocks; i++) {
            uint32_t state[8];
            unsigned long long value = first_counter + i;
            for (b = 0; b < 8; b++)
                b1[prefix_len + b] = (uint8_t)(value >> (56 - 8 * b));
            memcpy(state, SHA_IV, sizeof state);
            sha_compress(state, b1);
            if (two_blocks)
                sha_compress(state, b2);
            store_be32x8(state, out + 32 * i);
        }
        return;
    }

    {
        sha_ctx seeded, block;
        uint8_t counter[8];
        sha_init(&seeded);
        sha_update(&seeded, prefix, prefix_len);
        for (i = 0; i < nblocks; i++) {
            unsigned long long value = first_counter + i;
            int b;
            for (b = 0; b < 8; b++)
                counter[b] = (uint8_t)(value >> (56 - 8 * b));
            block = seeded;
            sha_update(&block, counter, 8);
            sha_final(&block, out + 32 * i);
        }
    }
}

void lcm_ctr_keystream_batch(const unsigned char *prefixes,
                             size_t prefix_len,
                             const unsigned long long *counts,
                             size_t nboxes, unsigned char *out)
{
    size_t box;
    for (box = 0; box < nboxes; box++) {
        lcm_ctr_keystream(prefixes + box * prefix_len, prefix_len, 0,
                          counts[box], out);
        out += 32 * counts[box];
    }
}

void lcm_hmac_sha256_3(const unsigned char *key, size_t keylen,
                       const unsigned char *p1, size_t n1,
                       const unsigned char *p2, size_t n2,
                       const unsigned char *p3, size_t n3,
                       unsigned char *out)
{
    uint8_t pad[64], inner[32];
    sha_ctx c;
    size_t i;
    /* keys longer than the block size would need pre-hashing; the AEAD
       only ever passes 32-byte derived subkeys */
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_init(&c);
    sha_update(&c, pad, 64);
    if (n1) sha_update(&c, p1, n1);
    if (n2) sha_update(&c, p2, n2);
    if (n3) sha_update(&c, p3, n3);
    sha_final(&c, inner);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_init(&c);
    sha_update(&c, pad, 64);
    sha_update(&c, inner, 32);
    sha_final(&c, out);
}

void lcm_sha256_oneshot(const unsigned char *data, size_t n,
                        unsigned char *out)
{
    sha_ctx c;
    sha_init(&c);
    sha_update(&c, data, n);
    sha_final(&c, out);
}

/* hash(len8(prev) || prev || len8(op) || op || seq8 || cid8) — the LCM
   hash-chain step with its injective field framing built C-side, so one
   crossing replaces four int.to_bytes and a five-way concat. */
void lcm_chain_extend(const unsigned char *prev, size_t prev_len,
                      const unsigned char *op, size_t op_len,
                      unsigned long long sequence,
                      unsigned long long client_id,
                      unsigned char *out)
{
    sha_ctx c;
    uint8_t word[8];
    int b;
    sha_init(&c);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)((uint64_t)prev_len >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_update(&c, prev, prev_len);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)((uint64_t)op_len >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_update(&c, op, op_len);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)(sequence >> (56 - 8 * b));
    sha_update(&c, word, 8);
    for (b = 0; b < 8; b++)
        word[b] = (uint8_t)(client_id >> (56 - 8 * b));
    sha_update(&c, word, 8);
    sha_final(&c, out);
}

/* SHA-256 of every segment of a joined buffer in one call (amortizes
   the Python/C crossing across a batch of digests). */
void lcm_sha256_batch(const unsigned char *data,
                      const unsigned long long *offsets, size_t n,
                      unsigned char *out)
{
    size_t i;
    sha_ctx c;
    for (i = 0; i < n; i++) {
        sha_init(&c);
        sha_update(&c, data + offsets[i],
                   (size_t)(offsets[i + 1] - offsets[i]));
        sha_final(&c, out + 32 * i);
    }
}

/* ---- fused AEAD box primitives -------------------------------------- */

/* Direct-mapped in-process keystream cache, mirroring the AEAD layer's
   Python-side cache: in this simulation every box is sealed by one party
   and opened by another inside the same interpreter, so the opener's
   keystream is a cache hit.  Reuse is safe because a slot only answers
   for the exact (enc_key, nonce) pair that filled it, and the stream for
   a pair is deterministic.  cffi releases the GIL around these calls and
   the threaded execution backend runs them concurrently, so the cache is
   thread-local: a lazily allocated per-thread table (a __thread array of
   this size could exhaust the static TLS block when the module is
   dlopened; a __thread pointer cannot).  Allocation failure falls back
   to uncached streaming. */
#define KS_SLOTS 512
#define KS_MAX_STREAM 1024

typedef struct {
    uint8_t key[32];
    uint8_t nonce[12];
    uint32_t nbytes;
    uint8_t valid;
    uint8_t stream[KS_MAX_STREAM];
} ks_slot;

static __thread ks_slot *ks_cache_tls = 0;

static ks_slot *ks_cache_get(void)
{
    if (!ks_cache_tls)
        ks_cache_tls = (ks_slot *)calloc(KS_SLOTS, sizeof(ks_slot));
    return ks_cache_tls;
}

static size_t ks_index(const unsigned char *nonce)
{
    uint32_t v;
    memcpy(&v, nonce, 4);
    return v % KS_SLOTS;
}

/* Generate nblocks keystream blocks for (enc_key, nonce) into out. */
static void ctr_blocks(const unsigned char *enc_key,
                       const unsigned char *nonce,
                       size_t nblocks, unsigned char *out)
{
    uint8_t b1[64], b2[64];
    uint64_t counter;
    int b;
    memset(b1, 0, 64);
    memcpy(b1, "lcm-ctr", 7);
    memcpy(b1 + 7, enc_key, 32);
    memcpy(b1 + 39, nonce, 12);
    b1[59] = 0x80;
    memset(b2, 0, 64);
    {
        uint64_t bits = 59 * 8;
        for (b = 0; b < 8; b++)
            b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
    }
    for (counter = 0; counter < nblocks; counter++) {
        uint32_t state[8];
        for (b = 0; b < 8; b++)
            b1[51 + b] = (uint8_t)(counter >> (56 - 8 * b));
        memcpy(state, SHA_IV, sizeof state);
        sha_compress(state, b1);
        sha_compress(state, b2);
        store_be32x8(state, out + 32 * counter);
    }
}

/* XOR `in` with the SHA-256-CTR keystream for (enc_key, nonce) into
   `out`, going through the keystream cache for in-process pairs. */
static void ctr_xor(const unsigned char *enc_key, const unsigned char *nonce,
                    const unsigned char *in, size_t len, unsigned char *out)
{
    size_t k;

    if (!len)
        return;
    if (len <= KS_MAX_STREAM) {
        ks_slot *cache = ks_cache_get();
        if (cache) {
            ks_slot *slot = &cache[ks_index(nonce)];
            if (!(slot->valid && slot->nbytes >= len
                  && !memcmp(slot->nonce, nonce, 12)
                  && !memcmp(slot->key, enc_key, 32))) {
                size_t nblocks = (len + 31) / 32;
                ctr_blocks(enc_key, nonce, nblocks, slot->stream);
                memcpy(slot->key, enc_key, 32);
                memcpy(slot->nonce, nonce, 12);
                slot->nbytes = (uint32_t)(nblocks * 32);
                slot->valid = 1;
            }
            for (k = 0; k < len; k++)
                out[k] = in[k] ^ slot->stream[k];
            return;
        }
        {
            uint8_t stream[KS_MAX_STREAM];
            ctr_blocks(enc_key, nonce, (len + 31) / 32, stream);
            for (k = 0; k < len; k++)
                out[k] = in[k] ^ stream[k];
        }
        return;
    }
    {
        /* oversized payload: stream block by block, uncached */
        uint8_t block[32];
        uint8_t b1[64], b2[64];
        uint64_t counter = 0;
        size_t off = 0;
        int b;
        memset(b1, 0, 64);
        memcpy(b1, "lcm-ctr", 7);
        memcpy(b1 + 7, enc_key, 32);
        memcpy(b1 + 39, nonce, 12);
        b1[59] = 0x80;
        memset(b2, 0, 64);
        {
            uint64_t bits = 59 * 8;
            for (b = 0; b < 8; b++)
                b2[56 + b] = (uint8_t)(bits >> (56 - 8 * b));
        }
        while (off < len) {
            uint32_t state[8];
            size_t take = len - off < 32 ? len - off : 32;
            for (b = 0; b < 8; b++)
                b1[51 + b] = (uint8_t)(counter >> (56 - 8 * b));
            memcpy(state, SHA_IV, sizeof state);
            sha_compress(state, b1);
            sha_compress(state, b2);
            store_be32x8(state, block);
            for (k = 0; k < take; k++)
                out[off + k] = in[off + k] ^ block[k];
            off += take;
            counter++;
        }
    }
}

static void hmac_pad_states(const unsigned char *key, size_t keylen,
                            uint32_t *ipad_state, uint32_t *opad_state)
{
    uint8_t pad[64];
    size_t i;
    memcpy(ipad_state, SHA_IV, 32);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_compress(ipad_state, pad);
    memcpy(opad_state, SHA_IV, 32);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_compress(opad_state, pad);
}

static void derive_tag16(const uint32_t *ipad_state, const uint32_t *opad_state,
                         const unsigned char *frame, size_t frame_len,
                         const unsigned char *seg, size_t seg_len,
                         unsigned char *out16)
{
    uint8_t inner[32], full[32];
    sha_ctx c;
    memcpy(c.state, ipad_state, 32);
    c.nbytes = 64;
    c.buflen = 0;
    sha_update(&c, frame, frame_len);
    sha_update(&c, seg, seg_len);
    sha_final(&c, inner);
    memcpy(c.state, opad_state, 32);
    c.nbytes = 64;
    c.buflen = 0;
    sha_update(&c, inner, 32);
    sha_final(&c, full);
    memcpy(out16, full, 16);
}

static int tag16_differs(const unsigned char *a, const unsigned char *b)
{
    unsigned char acc = 0;
    int i;
    for (i = 0; i < 16; i++)
        acc |= a[i] ^ b[i];
    return acc != 0;
}

/* out = nonce(12) || ciphertext(pt_len): confidentiality only, for the
   sections whose integrity the manifest tag provides */
void lcm_stream_box(const unsigned char *enc_key,
                    const unsigned char *nonce,
                    const unsigned char *pt, size_t pt_len,
                    unsigned char *out)
{
    memcpy(out, nonce, 12);
    ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
}

/* out = nonce(12) || ciphertext(pt_len) || tag(16) */
void lcm_seal_box(const unsigned char *enc_key, const unsigned char *mac_key,
                  const unsigned char *nonce,
                  const unsigned char *frame, size_t frame_len,
                  const unsigned char *pt, size_t pt_len,
                  unsigned char *out)
{
    uint32_t ipad_state[8], opad_state[8];
    memcpy(out, nonce, 12);
    ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 out, 12 + pt_len, out + 12 + pt_len);
}

/* Returns 0 and writes box_len-28 plaintext bytes, or -1 on a bad MAC
   (nothing written). */
int lcm_open_box(const unsigned char *enc_key, const unsigned char *mac_key,
                 const unsigned char *frame, size_t frame_len,
                 const unsigned char *box, size_t box_len,
                 unsigned char *out_pt)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char tag[16];
    if (box_len < 28)
        return -1;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 box, box_len - 16, tag);
    if (tag16_differs(tag, box + box_len - 16))
        return -1;
    ctr_xor(enc_key, box, box + 12, box_len - 28, out_pt);
    return 0;
}

/* Batch seal: offsets[i]..offsets[i+1] delimit plaintext i inside
   joined_pt; boxes are emitted back to back into out. */
void lcm_seal_boxes(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonces,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *joined_pt,
                    const unsigned long long *offsets, size_t n,
                    unsigned char *out)
{
    uint32_t ipad_state[8], opad_state[8];
    size_t i;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const unsigned char *pt = joined_pt + offsets[i];
        size_t pt_len = (size_t)(offsets[i + 1] - offsets[i]);
        const unsigned char *nonce = nonces + 12 * i;
        memcpy(out, nonce, 12);
        ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     out, 12 + pt_len, out + 12 + pt_len);
        out += pt_len + 28;
    }
}

/* Batch open, all-or-nothing: every tag is verified before any byte of
   plaintext is produced.  Returns 0 on success, -(i+1) when box i is the
   first bad one (every box is still scanned).  offsets delimit whole
   boxes inside joined_boxes. */
int lcm_open_boxes(const unsigned char *enc_key,
                   const unsigned char *mac_key,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *joined_boxes,
                   const unsigned long long *offsets, size_t n,
                   unsigned char *out_pt)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char tag[16];
    long long bad = -1;
    size_t i;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const unsigned char *box = joined_boxes + offsets[i];
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        if (box_len < 28) {
            if (bad < 0)
                bad = (long long)i;
            continue;
        }
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     box, box_len - 16, tag);
        if (tag16_differs(tag, box + box_len - 16) && bad < 0)
            bad = (long long)i;
    }
    if (bad >= 0)
        return (int)(-bad - 1);
    for (i = 0; i < n; i++) {
        const unsigned char *box = joined_boxes + offsets[i];
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        ctr_xor(enc_key, box, box + 12, box_len - 28, out_pt);
        out_pt += box_len - 28;
    }
    return 0;
}

/* One call, many tags: HMAC-SHA-256 over (frame || seg_i) for every
   segment, sharing the pad-block compressions across the batch.  The
   inner/outer key-pad states are computed once; each tag then resumes
   from the saved state with nbytes pre-set to the pad block's 64. */
void lcm_hmac_tags(const unsigned char *key, size_t keylen,
                   const unsigned char *frame, size_t frame_len,
                   const unsigned char *segs,
                   const unsigned long long *offsets,
                   size_t n, unsigned char *out)
{
    uint8_t pad[64], inner_digest[32];
    uint32_t ipad_state[8], opad_state[8];
    sha_ctx c;
    size_t i, t;

    memcpy(ipad_state, SHA_IV, sizeof ipad_state);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x36;
    sha_compress(ipad_state, pad);
    memcpy(opad_state, SHA_IV, sizeof opad_state);
    for (i = 0; i < 64; i++)
        pad[i] = (i < keylen ? key[i] : 0) ^ 0x5c;
    sha_compress(opad_state, pad);

    for (t = 0; t < n; t++) {
        const unsigned char *seg = segs + offsets[t];
        size_t seg_len = (size_t)(offsets[t + 1] - offsets[t]);
        memcpy(c.state, ipad_state, sizeof ipad_state);
        c.nbytes = 64;
        c.buflen = 0;
        sha_update(&c, frame, frame_len);
        sha_update(&c, seg, seg_len);
        sha_final(&c, inner_digest);
        memcpy(c.state, opad_state, sizeof opad_state);
        c.nbytes = 64;
        c.buflen = 0;
        sha_update(&c, inner_digest, 32);
        sha_final(&c, out + 32 * t);
    }
}

/* ---- batched INVOKE/REPLY protocol codec ---------------------------- */

/* The canonical serde layout for the two protocol messages (pinned by
   the message-wire golden tests):

   INVOKE  prefix25 || i128(tc) || 'B' len8 hc || 'B' len8 op
           || 'I' i128(cid) || 'T'/'F'
   REPLY   prefix24 || i128(t) || 'B' len8 chain || 'B' len8 result
           || 'I' i128(q) || 'B' len8 prev_chain

   i128 is a 16-byte big-endian two's-complement integer; the prefixes
   (list header + verb string + leading 'I') are passed in from Python so
   this code never hard-codes serde framing bytes.  Any deviation from
   the canonical shape reports "fall back" and the generic Python codec
   takes over — nothing here extends what the wire accepts. */

static uint64_t load_be64(const unsigned char *p)
{
    uint64_t v = 0;
    int b;
    for (b = 0; b < 8; b++)
        v = (v << 8) | p[b];
    return v;
}

static void put_be64(unsigned char *p, uint64_t v)
{
    int b;
    for (b = 0; b < 8; b++)
        p[b] = (uint8_t)(v >> (56 - 8 * b));
}

/* i128 -> int64, rejecting values that need more than 64 bits. */
static int i128_to_i64(const unsigned char *p, long long *out)
{
    uint64_t hi = load_be64(p);
    uint64_t lo = load_be64(p + 8);
    if (hi == 0 && !(lo >> 63)) {
        *out = (long long)lo;
        return 0;
    }
    if (hi == 0xFFFFFFFFFFFFFFFFULL && (lo >> 63)) {
        *out = (long long)lo;
        return 0;
    }
    return -1;
}

static void i64_to_i128(long long value, unsigned char *out)
{
    memset(out, value < 0 ? 0xFF : 0x00, 8);
    put_be64(out + 8, (uint64_t)value);
}

static long long sorted_find(const long long *xs, size_t n, long long v)
{
    size_t lo = 0, hi = n;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (xs[mid] < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < n && xs[lo] == v)
        return (long long)lo;
    return -1;
}

/* Delete one occurrence of `value` and insert `fresh`, keeping the
   sorted acknowledged mirror sorted — the multiset result is identical
   to Python's del-at-bisect_left + insort. */
static void acks_replace(long long *acks, size_t n, long long value,
                         long long fresh)
{
    size_t lo = 0, hi = n;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (acks[mid] < value)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(acks + lo, acks + lo + 1, (n - lo - 1) * sizeof(long long));
    lo = 0;
    hi = n - 1;
    while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (acks[mid] <= fresh)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(acks + lo + 1, acks + lo, (n - 1 - lo) * sizeof(long long));
    acks[lo] = fresh;
}

/* nonce_i = SHA-256(seed32 || counter_8be)[:12] — the per-context
   deterministic nonce sequence (40-byte message, one padded block). */
static void derive_nonce(const unsigned char *seed, uint64_t counter,
                         unsigned char *out12)
{
    uint8_t block[64];
    uint32_t state[8];
    uint8_t digest[32];
    uint64_t bits = 40 * 8;
    memset(block, 0, 64);
    memcpy(block, seed, 32);
    put_be64(block + 32, counter);
    block[40] = 0x80;
    put_be64(block + 56, bits);
    memcpy(state, SHA_IV, sizeof state);
    sha_compress(state, block);
    store_be32x8(state, digest);
    memcpy(out12, digest, 12);
}

/* Client-side fused INVOKE codec: canonical field encode + seal in one
   call.  `out` receives prefix_len+52+hc_len+op_len+28 box bytes. */
int lcm_seal_invoke(const unsigned char *enc_key,
                    const unsigned char *mac_key,
                    const unsigned char *nonce,
                    const unsigned char *frame, size_t frame_len,
                    const unsigned char *prefix, size_t prefix_len,
                    long long tc,
                    const unsigned char *hc, size_t hc_len,
                    const unsigned char *op, size_t op_len,
                    long long cid, int retry,
                    unsigned char *out)
{
    size_t pt_len = 52 + prefix_len + hc_len + op_len;
    unsigned char *pt = (unsigned char *)malloc(pt_len);
    unsigned char *p = pt;
    uint32_t ipad_state[8], opad_state[8];
    if (!pt)
        return -1;
    memcpy(p, prefix, prefix_len);
    p += prefix_len;
    i64_to_i128(tc, p);
    p += 16;
    *p++ = 'B';
    put_be64(p, (uint64_t)hc_len);
    p += 8;
    memcpy(p, hc, hc_len);
    p += hc_len;
    *p++ = 'B';
    put_be64(p, (uint64_t)op_len);
    p += 8;
    memcpy(p, op, op_len);
    p += op_len;
    *p++ = 'I';
    i64_to_i128(cid, p);
    p += 16;
    *p++ = retry ? 'T' : 'F';
    memcpy(out, nonce, 12);
    ctr_xor(enc_key, nonce, pt, pt_len, out + 12);
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 out, 12 + pt_len, out + 12 + pt_len);
    free(pt);
    return 0;
}

/* Client-side fused REPLY open: authenticate, decrypt and parse in one
   call.  Returns 0 with meta = [t, chain_off, chain_len, result_off,
   result_len, q, prev_off, prev_len]; -1 on authentication failure
   (nothing written); -2 when the box is authentic but not canonically
   shaped (out_pt holds the plaintext; the generic codec re-parses). */
static long long open_reply_core(const unsigned char *enc_key,
                                 const uint32_t *ipad_state,
                                 const uint32_t *opad_state,
                                 const unsigned char *frame,
                                 size_t frame_len,
                                 const unsigned char *prefix,
                                 size_t prefix_len,
                                 const unsigned char *box, size_t box_len,
                                 unsigned char *out_pt, long long *meta)
{
    unsigned char tag[16];
    size_t size, pos;
    uint64_t flen;
    long long t, q;

    if (box_len < 28)
        return -1;
    derive_tag16(ipad_state, opad_state, frame, frame_len,
                 box, box_len - 16, tag);
    if (tag16_differs(tag, box + box_len - 16))
        return -1;
    size = box_len - 28;
    ctr_xor(enc_key, box, box + 12, size, out_pt);

    if (size < prefix_len + 16 + 9 + 9 + 17 + 9
        || memcmp(out_pt, prefix, prefix_len) != 0)
        return -2;
    if (i128_to_i64(out_pt + prefix_len, &t) != 0)
        return -2;
    pos = prefix_len + 16;
    if (out_pt[pos] != 'B')
        return -2;
    flen = load_be64(out_pt + pos + 1);
    pos += 9;
    if (flen > size - pos)
        return -2;
    meta[1] = (long long)pos;
    meta[2] = (long long)flen;
    pos += (size_t)flen;
    if (size - pos < 9 || out_pt[pos] != 'B')
        return -2;
    flen = load_be64(out_pt + pos + 1);
    pos += 9;
    if (flen > size - pos)
        return -2;
    meta[3] = (long long)pos;
    meta[4] = (long long)flen;
    pos += (size_t)flen;
    if (size - pos < 17 + 9 || out_pt[pos] != 'I')
        return -2;
    if (i128_to_i64(out_pt + pos + 1, &q) != 0)
        return -2;
    pos += 17;
    if (out_pt[pos] != 'B')
        return -2;
    flen = load_be64(out_pt + pos + 1);
    pos += 9;
    if (flen != size - pos)
        return -2;
    meta[6] = (long long)pos;
    meta[7] = (long long)flen;
    meta[0] = t;
    meta[5] = q;
    return 0;
}

long long lcm_open_reply(const unsigned char *enc_key,
                         const unsigned char *mac_key,
                         const unsigned char *frame, size_t frame_len,
                         const unsigned char *prefix, size_t prefix_len,
                         const unsigned char *box, size_t box_len,
                         unsigned char *out_pt, long long *meta)
{
    uint32_t ipad_state[8], opad_state[8];
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    return open_reply_core(enc_key, ipad_state, opad_state,
                           frame, frame_len, prefix, prefix_len,
                           box, box_len, out_pt, meta);
}

/* Client-side whole-batch INVOKE seal: canonical field encode + seal
   for n independent invokes in one call (one HMAC pad derivation, one
   scratch buffer).  Box i is 80+prefix_len+hc_len+op_len bytes, written
   back to back.  Returns 0, or -1 on allocation failure. */
int lcm_seal_invoke_batch(const unsigned char *enc_key,
                          const unsigned char *mac_key,
                          const unsigned char *frame, size_t frame_len,
                          const unsigned char *prefix, size_t prefix_len,
                          const unsigned char *nonces,
                          const long long *tcs,
                          const unsigned char *hcs,
                          const unsigned long long *hc_offsets,
                          const unsigned char *ops,
                          const unsigned long long *op_offsets,
                          const long long *cids,
                          const unsigned char *retries,
                          size_t n,
                          unsigned char *out_boxes)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char *scratch;
    size_t scratch_len = 1;
    size_t i;

    for (i = 0; i < n; i++) {
        size_t pt_len = 52 + prefix_len
            + (size_t)(hc_offsets[i + 1] - hc_offsets[i])
            + (size_t)(op_offsets[i + 1] - op_offsets[i]);
        if (pt_len > scratch_len)
            scratch_len = pt_len;
    }
    scratch = (unsigned char *)malloc(scratch_len);
    if (!scratch)
        return -1;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        size_t hc_len = (size_t)(hc_offsets[i + 1] - hc_offsets[i]);
        size_t op_len = (size_t)(op_offsets[i + 1] - op_offsets[i]);
        size_t pt_len = 52 + prefix_len + hc_len + op_len;
        unsigned char *p = scratch;

        memcpy(p, prefix, prefix_len);
        p += prefix_len;
        i64_to_i128(tcs[i], p);
        p += 16;
        *p++ = 'B';
        put_be64(p, (uint64_t)hc_len);
        p += 8;
        memcpy(p, hcs + hc_offsets[i], hc_len);
        p += hc_len;
        *p++ = 'B';
        put_be64(p, (uint64_t)op_len);
        p += 8;
        memcpy(p, ops + op_offsets[i], op_len);
        p += op_len;
        *p++ = 'I';
        i64_to_i128(cids[i], p);
        p += 16;
        *p++ = retries[i] ? 'T' : 'F';
        memcpy(out_boxes, nonces + 12 * i, 12);
        ctr_xor(enc_key, nonces + 12 * i, scratch, pt_len, out_boxes + 12);
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     out_boxes, 12 + pt_len, out_boxes + 12 + pt_len);
        out_boxes += 28 + pt_len;
    }
    free(scratch);
    return 0;
}

/* Client-side whole-batch REPLY open: authenticate, decrypt and parse n
   independent replies in one call.  Plaintext i occupies
   [offsets[i]-28*i, offsets[i+1]-28*(i+1)) of out_pt; meta holds 8
   int64 per reply — [t, chain_off, chain_len, result_off, result_len,
   q, prev_off, prev_len] with offsets absolute into out_pt.  Returns 0,
   -1000-i for the first unauthentic box, or -2000-i for the first
   authentic but non-canonical one (the caller re-parses generically). */
long long lcm_open_reply_batch(const unsigned char *enc_key,
                               const unsigned char *mac_key,
                               const unsigned char *frame, size_t frame_len,
                               const unsigned char *prefix, size_t prefix_len,
                               const unsigned char *joined_boxes,
                               const unsigned long long *offsets, size_t n,
                               unsigned char *out_pt,
                               long long *meta)
{
    uint32_t ipad_state[8], opad_state[8];
    size_t i;

    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        size_t pt_base = (size_t)offsets[i] - 28 * i;
        long long *m = meta + 8 * i;
        long long status = open_reply_core(
            enc_key, ipad_state, opad_state, frame, frame_len,
            prefix, prefix_len, joined_boxes + offsets[i], box_len,
            out_pt + pt_base, m);
        if (status == -1)
            return -1000 - (long long)i;
        if (status == -2)
            return -2000 - (long long)i;
        m[1] += (long long)pt_base;
        m[3] += (long long)pt_base;
        m[6] += (long long)pt_base;
    }
    return 0;
}

/* The enclave's whole-batch INVOKE pass: authenticate and decrypt every
   box, parse every canonical INVOKE, then run the Alg. 1 verification
   loop (retry-resend, sequence, hash-chain) against the packed V-table
   *in place*, assigning global sequence numbers and extending the hash
   chain for accepted operations.

   meta holds 10 int64 per op:
     [0] status: 0 execute / 1 resend / -1 unknown client / -2 replay
         / -3 rollback / -4 fork  (phase 3 parks the retry flag here)
     [1] V slot (-1 when unknown)   [2] cid   [3] tc
     [4] op offset  [5] op len  [6] hc offset  [7] hc len
         (absolute offsets into out_pt)
     [8] assigned sequence (resend: the row's sequence)
     [9] majority-stable after this op (resend: at this position)

   Returns the count of ops processed — all n, or the index of the first
   violating op, whose meta row names the violation (earlier rows are
   already committed; the caller halts, exactly like the per-op path).
   Returns -1000-i for the first unauthentic box and -2000-i for the
   first non-canonical INVOKE, in both cases before any state is
   touched, so the caller can rerun the batch through the generic path.

   One deliberate divergence from the per-op path: V rows and the hash
   chain for *all* verified ops are committed before any operation is
   applied to the service state, so a functionality.apply that raises
   mid-batch leaves later rows already advanced (the per-op path would
   have stopped at the raiser).  The ecall aborts either way, before any
   reply or seal is produced, so nothing inconsistent is ever emitted. */
long long lcm_invoke_batch_open(const unsigned char *enc_key,
                                const unsigned char *mac_key,
                                const unsigned char *frame, size_t frame_len,
                                const unsigned char *prefix, size_t prefix_len,
                                const unsigned char *joined_boxes,
                                const unsigned long long *offsets, size_t n,
                                unsigned char *out_pt,
                                long long *meta,
                                unsigned char *chains_out,
                                const long long *row_ids, size_t nrows,
                                long long *row_ack, long long *row_seq,
                                unsigned char *row_chains,
                                long long *acks,
                                long long quorum,
                                long long *sequence_io,
                                unsigned char *chain_io)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char tag[16];
    long long bad = -1;
    size_t i;

    /* authenticate every box before any plaintext exists; a too-short
       box wins over an earlier bad MAC, matching the AEAD batch-open
       error report (short scan first, then MAC scan) */
    for (i = 0; i < n; i++) {
        if ((size_t)(offsets[i + 1] - offsets[i]) < 28)
            return -1000 - (long long)i;
    }
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const unsigned char *box = joined_boxes + offsets[i];
        size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     box, box_len - 16, tag);
        if (tag16_differs(tag, box + box_len - 16) && bad < 0)
            bad = (long long)i;
    }
    if (bad >= 0)
        return -1000 - bad;

    {
        unsigned char *pt = out_pt;
        for (i = 0; i < n; i++) {
            const unsigned char *box = joined_boxes + offsets[i];
            size_t box_len = (size_t)(offsets[i + 1] - offsets[i]);
            ctr_xor(enc_key, box, box + 12, box_len - 28, pt);
            pt += box_len - 28;
        }
    }

    /* parse every INVOKE before touching any state */
    {
        size_t pt_off = 0;
        for (i = 0; i < n; i++) {
            const unsigned char *pt = out_pt + pt_off;
            size_t size = (size_t)(offsets[i + 1] - offsets[i]) - 28;
            long long *m = meta + 10 * i;
            size_t pos;
            uint64_t hc_len, op_len;
            long long tc, cid;
            if (size < prefix_len + 52
                || memcmp(pt, prefix, prefix_len) != 0)
                return -2000 - (long long)i;
            if (i128_to_i64(pt + prefix_len, &tc) != 0 || tc < 0)
                return -2000 - (long long)i;
            pos = prefix_len + 16;
            if (pt[pos] != 'B')
                return -2000 - (long long)i;
            hc_len = load_be64(pt + pos + 1);
            pos += 9;
            if (hc_len > size - pos)
                return -2000 - (long long)i;
            m[6] = (long long)(pt_off + pos);
            m[7] = (long long)hc_len;
            pos += (size_t)hc_len;
            if (size - pos < 9 || pt[pos] != 'B')
                return -2000 - (long long)i;
            op_len = load_be64(pt + pos + 1);
            pos += 9;
            if (op_len > size - pos)
                return -2000 - (long long)i;
            m[4] = (long long)(pt_off + pos);
            m[5] = (long long)op_len;
            pos += (size_t)op_len;
            if (size - pos != 18 || pt[pos] != 'I')
                return -2000 - (long long)i;
            if (i128_to_i64(pt + pos + 1, &cid) != 0 || cid < 0)
                return -2000 - (long long)i;
            if (pt[pos + 17] == 'T')
                m[0] = 1;
            else if (pt[pos + 17] == 'F')
                m[0] = 0;
            else
                return -2000 - (long long)i;
            m[2] = cid;
            m[3] = tc;
            pt_off += size;
        }
    }

    /* Alg. 1 verification in arrival order against the live table */
    {
        long long sequence = sequence_io[0];
        for (i = 0; i < n; i++) {
            long long *m = meta + 10 * i;
            long long retry = m[0];
            long long cid = m[2], tc = m[3];
            long long slot = sorted_find(row_ids, nrows, cid);
            m[1] = slot;
            if (slot < 0) {
                m[0] = -1;
                sequence_io[0] = sequence;
                return (long long)i;
            }
            if (retry && row_ack[slot] == tc && row_seq[slot] > tc) {
                /* Sec. 4.6.1 retry: reproduce the recorded reply */
                m[0] = 1;
                m[8] = row_seq[slot];
                m[9] = acks[nrows - (size_t)quorum];
                memcpy(chains_out + 32 * i, row_chains + 32 * slot, 32);
                continue;
            }
            if (tc != row_seq[slot]) {
                m[0] = (tc < row_seq[slot]) ? -2 : -3;
                sequence_io[0] = sequence;
                return (long long)i;
            }
            if (m[7] != 32
                || memcmp(out_pt + m[6], row_chains + 32 * slot, 32) != 0) {
                m[0] = -4;
                sequence_io[0] = sequence;
                return (long long)i;
            }
            sequence += 1;
            lcm_chain_extend(chain_io, 32, out_pt + m[4], (size_t)m[5],
                             (unsigned long long)sequence,
                             (unsigned long long)cid,
                             chains_out + 32 * i);
            memcpy(chain_io, chains_out + 32 * i, 32);
            acks_replace(acks, nrows, row_ack[slot], tc);
            row_ack[slot] = tc;
            row_seq[slot] = sequence;
            memcpy(row_chains + 32 * slot, chains_out + 32 * i, 32);
            m[0] = 0;
            m[8] = sequence;
            m[9] = acks[nrows - (size_t)quorum];
        }
        sequence_io[0] = sequence;
        return (long long)n;
    }
}

/* The enclave's whole-batch REPLY pass: canonical field encode + seal
   for every reply in one call.  `meta`/`chains`/`pt_in` come from
   lcm_invoke_batch_open (hc echoes are read straight out of the decoded
   INVOKE plaintexts); `results` holds the serialized results in batch
   order; nonces are the deterministic per-context sequence.  Boxes are
   emitted back to back: box i is prefix_len+120+result_len+hc_len
   bytes.

   Each reply box is also the payload of that client's sealed V-row
   record, so the row pieces the sealed-blob assembler needs are built
   here while the box bytes are hot: per op, out_rows receives the
   61+box_len-byte blob piece

       enc_id('I'+i128 cid) || 'B'+len8(35+box_len) ||
       'L'+len8(2) || 'I'+i128(ack) || 'B'+len8(box_len) || box

   and out_manifests the 58-byte manifest piece

       enc_id || 'B'+len8(32) || sha256(blob_piece[26:])

   — byte-for-byte what the Python row-seal builder produces.  Returns
   0, or -1 on allocation failure (caller falls back). */
int lcm_invoke_batch_reply(const unsigned char *enc_key,
                           const unsigned char *mac_key,
                           const unsigned char *frame, size_t frame_len,
                           const unsigned char *prefix, size_t prefix_len,
                           const long long *meta, size_t n,
                           const unsigned char *chains,
                           const unsigned char *pt_in,
                           const unsigned char *results,
                           const unsigned long long *result_offsets,
                           const unsigned char *nonce_seed,
                           unsigned long long nonce_counter,
                           unsigned char *out_boxes,
                           unsigned char *out_rows,
                           unsigned char *out_manifests)
{
    uint32_t ipad_state[8], opad_state[8];
    unsigned char *scratch;
    size_t scratch_len = 1;
    size_t i;

    for (i = 0; i < n; i++) {
        size_t pt_len = 92 + prefix_len
            + (size_t)(result_offsets[i + 1] - result_offsets[i])
            + (size_t)meta[10 * i + 7];
        if (pt_len > scratch_len)
            scratch_len = pt_len;
    }
    scratch = (unsigned char *)malloc(scratch_len);
    if (!scratch)
        return -1;
    hmac_pad_states(mac_key, 32, ipad_state, opad_state);
    for (i = 0; i < n; i++) {
        const long long *m = meta + 10 * i;
        size_t rlen = (size_t)(result_offsets[i + 1] - result_offsets[i]);
        size_t hc_len = (size_t)m[7];
        size_t pt_len = 92 + prefix_len + rlen + hc_len;
        unsigned char *p = scratch;
        unsigned char nonce[12];

        memcpy(p, prefix, prefix_len);
        p += prefix_len;
        i64_to_i128(m[8], p);
        p += 16;
        *p++ = 'B';
        put_be64(p, 32);
        p += 8;
        memcpy(p, chains + 32 * i, 32);
        p += 32;
        *p++ = 'B';
        put_be64(p, (uint64_t)rlen);
        p += 8;
        memcpy(p, results + result_offsets[i], rlen);
        p += rlen;
        *p++ = 'I';
        i64_to_i128(m[9], p);
        p += 16;
        *p++ = 'B';
        put_be64(p, (uint64_t)hc_len);
        p += 8;
        memcpy(p, pt_in + m[6], hc_len);

        derive_nonce(nonce_seed, nonce_counter + i, nonce);
        memcpy(out_boxes, nonce, 12);
        ctr_xor(enc_key, nonce, scratch, pt_len, out_boxes + 12);
        derive_tag16(ipad_state, opad_state, frame, frame_len,
                     out_boxes, 12 + pt_len, out_boxes + 12 + pt_len);
        {
            size_t box_len = 28 + pt_len;
            unsigned char *rp = out_rows;
            unsigned char *mp = out_manifests + 58 * i;
            sha_ctx c;
            rp[0] = 'I';
            i64_to_i128(m[2], rp + 1);
            rp[17] = 'B';
            put_be64(rp + 18, (uint64_t)(35 + box_len));
            rp[26] = 'L';
            put_be64(rp + 27, 2);
            rp[35] = 'I';
            i64_to_i128(m[3], rp + 36);
            rp[52] = 'B';
            put_be64(rp + 53, (uint64_t)box_len);
            memcpy(rp + 61, out_boxes, box_len);
            memcpy(mp, rp, 17);
            mp[17] = 'B';
            put_be64(mp + 18, 32);
            sha_init(&c);
            sha_update(&c, rp + 26, 35 + box_len);
            sha_final(&c, mp + 26);
            out_rows += 61 + box_len;
        }
        out_boxes += 28 + pt_len;
    }
    free(scratch);
    return 0;
}
"""

_BUILD_DIR = pathlib.Path(__file__).resolve().with_name("_fastpath_build")


class CBackend:
    """cffi-compiled CTR/HMAC block loops (byte-identical to hashlib)."""

    name = "c"
    native = True

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib
        self.hmac3 = self._hmac3
        self.hmac_tags = self._hmac_tags
        self.sha256_oneshot = self._sha256_oneshot
        self.sha256_many = self._sha256_many
        self.chain_extend = self._chain_extend
        self.seal_box = self._seal_box
        self.open_box = self._open_box
        self.seal_boxes = self._seal_boxes
        self.open_boxes = self._open_boxes
        self.seal_invoke = self._seal_invoke
        self.open_reply = self._open_reply
        self.seal_invoke_batch = self._seal_invoke_batch
        self.open_reply_batch = self._open_reply_batch
        self.invoke_batch_open = self._invoke_batch_open
        self.invoke_batch_reply = self._invoke_batch_reply
        # Reusable per-thread argument/output buffers for the per-message
        # wrappers (seal_invoke, open_reply, invoke_batch_open/_reply):
        # allocating fresh arrays and exporting them through
        # ``ffi.from_buffer`` costs more than the C work they carry at
        # typical batch sizes, so the cdata handles are built once and
        # kept.  Thread-local because the threaded execution backend
        # seals from worker threads; each buffer is only live within one
        # wrapper call (callers consume or copy before the next call).
        self._scratch = threading.local()

    def _batch_scratch(self, count: int) -> dict:
        """Per-thread scratch sized for ``count`` messages (grown, never
        shrunk; growing replaces the arrays and their cdata together, so
        a stale handle can never alias a resized buffer)."""
        s = self._scratch.__dict__
        if s.get("cap", 0) < count:
            ffi = self._ffi
            cap = max(16, count)
            s["cap"] = cap
            s["offsets"] = array.array("Q", bytes(8 * (cap + 1)))
            s["offsets_cd"] = ffi.from_buffer("unsigned long long[]", s["offsets"])
            s["roffsets"] = array.array("Q", bytes(8 * (cap + 1)))
            s["roffsets_cd"] = ffi.from_buffer(
                "unsigned long long[]", s["roffsets"]
            )
            s["meta"] = array.array("q", bytes(80 * cap))
            s["meta_cd"] = ffi.from_buffer("long long[]", s["meta"])
            s["chains"] = bytearray(32 * cap)
            s["chains_cd"] = ffi.from_buffer(s["chains"])
            s["meta1"] = array.array("q", bytes(64))
            s["meta1_cd"] = ffi.from_buffer("long long[]", s["meta1"])
            s["seq_io"] = array.array("q", bytes(8))
            s["seq_io_cd"] = ffi.from_buffer("long long[]", s["seq_io"])
            s["chain_io"] = bytearray(32)
            s["chain_io_cd"] = ffi.from_buffer(s["chain_io"])
        return s

    def _byte_scratch(self, s: dict, key: str, size: int):
        """A per-thread output bytearray of at least ``size`` bytes plus
        its cached cdata handle (grown geometrically on demand)."""
        buf = s.get(key)
        if buf is None or len(buf) < size:
            buf = bytearray(max(1024, 2 * size))
            s[key] = buf
            s[key + "_cd"] = self._ffi.from_buffer(buf)
        return buf, s[key + "_cd"]

    def blocks(self, prefix: bytes, nblocks: int, *, seeded=None) -> bytes:
        out = bytearray(nblocks * 32)
        self._lib.lcm_ctr_keystream(
            prefix, len(prefix), 0, nblocks, self._ffi.from_buffer(out)
        )
        return bytes(out)

    def blocks_many(
        self, prefixes: list[bytes], counts: list[int], *, seeded=None
    ) -> bytes:
        joined = _join(prefixes)
        plen = len(prefixes[0]) if prefixes else 0
        out = bytearray(32 * sum(counts))
        counts_arr = array.array("Q", counts)
        self._lib.lcm_ctr_keystream_batch(
            joined,
            plen,
            self._ffi.from_buffer("unsigned long long[]", counts_arr),
            len(counts),
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _hmac3(self, key: bytes, p1, p2, p3) -> bytes:
        ffi = self._ffi
        out = bytearray(32)
        self._lib.lcm_hmac_sha256_3(
            key, len(key),
            ffi.from_buffer(p1), len(p1),
            ffi.from_buffer(p2), len(p2),
            ffi.from_buffer(p3), len(p3),
            ffi.from_buffer(out),
        )
        return bytes(out)

    def _hmac_tags(self, key: bytes, frame: bytes, segments: list) -> list[bytes]:
        """HMAC-SHA-256 digests of ``frame || segment`` per segment,
        computed in one C call with the key-pad compressions shared."""
        count = len(segments)
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, segments)))
        )
        segs = _join(segments)
        out = bytearray(32 * count)
        self._lib.lcm_hmac_tags(
            key, len(key),
            frame, len(frame),
            segs,
            self._ffi.from_buffer("unsigned long long[]", offsets),
            count,
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        return [view[start : start + 32] for start in range(0, 32 * count, 32)]

    def _sha256_oneshot(self, data: bytes) -> bytes:
        out = bytearray(32)
        self._lib.lcm_sha256_oneshot(
            self._ffi.from_buffer(data), len(data), self._ffi.from_buffer(out)
        )
        return bytes(out)

    def _chain_extend(
        self, previous: bytes, operation: bytes, sequence: int, client_id: int
    ) -> bytes:
        """One hash-chain step (framing + SHA-256) in a single C call.

        Raises OverflowError for field values outside 64 bits, exactly
        like the Python framing's ``int.to_bytes(8, "big")``.
        """
        out = bytearray(32)
        self._lib.lcm_chain_extend(
            previous, len(previous),
            operation, len(operation),
            sequence, client_id,
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _sha256_many(self, segments: list) -> list[bytes]:
        """SHA-256 digests of every segment in one C call."""
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, segments)))
        )
        out = bytearray(32 * len(segments))
        self._lib.lcm_sha256_batch(
            _join(segments),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(segments),
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        return [view[start : start + 32] for start in range(0, len(view), 32)]

    def _seal_box(
        self, enc_key: bytes, mac_key: bytes, nonce: bytes,
        frame: bytes, plaintext,
    ) -> bytes:
        """Whole AEAD box (nonce || ct || tag) in one C call."""
        size = len(plaintext)
        out = bytearray(28 + size)
        if type(plaintext) is not bytes:  # cffi takes bytes pointers directly
            plaintext = self._ffi.from_buffer(plaintext)
        self._lib.lcm_seal_box(
            enc_key, mac_key, nonce,
            frame, len(frame),
            plaintext, size,
            self._ffi.from_buffer(out),
        )
        return bytes(out)

    def _open_box(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, box
    ) -> bytes | None:
        """Verify-and-decrypt in one C call; None on a bad MAC."""
        size = len(box)
        if size < 28:
            return None
        out = bytearray(size - 28)
        if type(box) is not bytes:
            box = self._ffi.from_buffer(box)
        ok = self._lib.lcm_open_box(
            enc_key, mac_key,
            frame, len(frame),
            box, size,
            self._ffi.from_buffer(out),
        )
        return bytes(out) if ok == 0 else None

    def _seal_boxes(
        self, enc_key: bytes, mac_key: bytes, nonces: list[bytes],
        frame: bytes, plaintexts: list,
    ) -> list[bytes]:
        """A whole batch of AEAD boxes in one C call."""
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, plaintexts)))
        )
        out = bytearray(offsets[-1] + 28 * len(plaintexts))
        self._lib.lcm_seal_boxes(
            enc_key, mac_key,
            _join(nonces),
            frame, len(frame),
            _join(plaintexts),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(plaintexts),
            self._ffi.from_buffer(out),
        )
        view = bytes(out)
        boxes = []
        cursor = 0
        for index in range(len(plaintexts)):
            size = offsets[index + 1] - offsets[index] + 28
            boxes.append(view[cursor : cursor + size])
            cursor += size
        return boxes

    def _open_boxes(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, boxes: list
    ) -> "tuple[list[bytes] | None, int]":
        """Batch verify-then-decrypt in one C call.

        Returns ``(plaintexts, -1)`` on success or ``(None, index)`` with
        the first bad box's index; MAC verification of every box happens
        before any plaintext is produced (all-or-nothing).
        """
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, boxes)))
        )
        for index, box in enumerate(boxes):
            if len(box) < 28:
                return None, index
        out = bytearray(offsets[-1] - 28 * len(boxes))
        status = self._lib.lcm_open_boxes(
            enc_key, mac_key,
            frame, len(frame),
            _join(boxes),
            self._ffi.from_buffer("unsigned long long[]", offsets),
            len(boxes),
            self._ffi.from_buffer(out),
        )
        if status != 0:
            return None, -status - 1
        view = bytes(out)
        plaintexts = []
        cursor = 0
        for index in range(len(boxes)):
            size = offsets[index + 1] - offsets[index] - 28
            plaintexts.append(view[cursor : cursor + size])
            cursor += size
        return plaintexts, -1

    def _seal_invoke(
        self, enc_key: bytes, mac_key: bytes, nonce: bytes, frame: bytes,
        prefix: bytes, tc: int, hc: bytes, op: bytes, cid: int, retry: bool,
    ) -> bytes | None:
        """Canonical INVOKE encode + seal in one C call (None: fall back)."""
        size = 80 + len(prefix) + len(hc) + len(op)
        out, out_cd = self._byte_scratch(self._scratch.__dict__, "seal", size)
        status = self._lib.lcm_seal_invoke(
            enc_key, mac_key, nonce,
            frame, len(frame),
            prefix, len(prefix),
            tc, hc, len(hc), op, len(op),
            cid, 1 if retry else 0,
            out_cd,
        )
        return bytes(memoryview(out)[:size]) if status == 0 else None

    def _open_reply(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, prefix: bytes, box
    ):
        """Authenticate + decrypt + parse a REPLY in one C call.

        Returns ``(plaintext, meta)`` on a canonical parse, ``(plaintext,
        None)`` when authentic but non-canonical (generic codec
        re-parses), ``(None, None)`` on authentication failure.
        """
        size = len(box)
        if size < 28:
            return None, None
        s = self._batch_scratch(1)
        out, out_cd = self._byte_scratch(s, "ropen", size - 28)
        if type(box) is not bytes:
            box = self._ffi.from_buffer(box)
        status = self._lib.lcm_open_reply(
            enc_key, mac_key,
            frame, len(frame),
            prefix, len(prefix),
            box, size,
            out_cd,
            s["meta1_cd"],
        )
        if status == -1:
            return None, None
        if status == -2:
            return bytes(memoryview(out)[: size - 28]), None
        # callers (unseal_reply) consume meta before any further backend
        # call on this thread, so handing out the scratch array is safe
        return bytes(memoryview(out)[: size - 28]), s["meta1"]

    def _seal_invoke_batch(
        self, enc_key: bytes, mac_key: bytes, nonces: list[bytes],
        frame: bytes, prefix: bytes, items: list,
    ) -> list[bytes] | None:
        """Canonical encode + seal for a whole batch of INVOKEs in one C
        call; ``items`` holds ``(tc, hc, op, cid, retry)`` per message
        (None: fall back)."""
        ffi = self._ffi
        count = len(items)
        tcs = array.array("q", bytes(8 * count))
        cids = array.array("q", bytes(8 * count))
        retries = bytearray(count)
        hcs = []
        ops = []
        for index, (tc, hc, op, cid, retry) in enumerate(items):
            tcs[index] = tc
            cids[index] = cid
            if retry:
                retries[index] = 1
            hcs.append(hc)
            ops.append(op)
        hc_offsets = array.array(
            "Q", chain((0,), accumulate(map(len, hcs)))
        )
        op_offsets = array.array(
            "Q", chain((0,), accumulate(map(len, ops)))
        )
        sizes = [
            80 + len(prefix) + len(hc) + len(op)
            for hc, op in zip(hcs, ops)
        ]
        out = bytearray(sum(sizes))
        status = self._lib.lcm_seal_invoke_batch(
            enc_key, mac_key,
            frame, len(frame),
            prefix, len(prefix),
            _join(nonces),
            ffi.from_buffer("long long[]", tcs),
            _join(hcs),
            ffi.from_buffer("unsigned long long[]", hc_offsets),
            _join(ops),
            ffi.from_buffer("unsigned long long[]", op_offsets),
            ffi.from_buffer("long long[]", cids),
            ffi.from_buffer(retries),
            count,
            ffi.from_buffer(out),
        )
        if status != 0:
            return None
        view = bytes(out)
        boxes = []
        cursor = 0
        for size in sizes:
            boxes.append(view[cursor : cursor + size])
            cursor += size
        return boxes

    def _open_reply_batch(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, prefix: bytes,
        boxes: list,
    ):
        """Authenticate + decrypt + parse a whole batch of REPLYs in one
        C call.

        Returns ``(plaintext, meta)`` with 8 int64 of meta per reply
        (offsets absolute into the joined plaintext) when every box is
        canonical, or an int status: -1000-i for the first unauthentic
        box, -2000-i for the first authentic-but-non-canonical one.
        """
        ffi = self._ffi
        count = len(boxes)
        for index, box in enumerate(boxes):
            if len(box) < 28:
                return -1000 - index
        offsets = array.array(
            "Q", chain((0,), accumulate(map(len, boxes)))
        )
        out_pt = bytearray(offsets[-1] - 28 * count)
        meta = array.array("q", bytes(64 * count))
        status = self._lib.lcm_open_reply_batch(
            enc_key, mac_key,
            frame, len(frame),
            prefix, len(prefix),
            _join(boxes),
            ffi.from_buffer("unsigned long long[]", offsets),
            count,
            ffi.from_buffer(out_pt),
            ffi.from_buffer("long long[]", meta),
        )
        if status != 0:
            return status
        return bytes(out_pt), meta

    def _invoke_batch_open(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, prefix: bytes,
        boxes: list, ids, ack, seq, chains, acks, quorum: int,
        sequence: int, chain_value: bytes,
    ):
        """Whole-batch INVOKE open + Alg. 1 verification in one C call.

        Mutates the packed V columns (``ack``/``seq``/``chains``/``acks``)
        in place for accepted operations.  Returns ``(status, plaintext,
        meta, chains_out, sequence, chain)`` — status as documented on the
        C function (count, or -1000-i / -2000-i).
        """
        ffi = self._ffi
        count = len(boxes)
        for index, box in enumerate(boxes):
            if len(box) < 28:
                return -1000 - index, b"", None, b"", sequence, chain_value
        s = self._batch_scratch(count)
        offsets = s["offsets"]
        total = 0
        for index, box in enumerate(boxes):
            total += len(box)
            offsets[index + 1] = total
        pt_size = total - 28 * count
        out_pt, out_pt_cd = self._byte_scratch(s, "pt", pt_size)
        s["seq_io"][0] = sequence
        s["chain_io"][0:32] = chain_value
        status = self._lib.lcm_invoke_batch_open(
            enc_key, mac_key,
            frame, len(frame),
            prefix, len(prefix),
            _join(boxes),
            s["offsets_cd"],
            count,
            out_pt_cd,
            s["meta_cd"],
            s["chains_cd"],
            ffi.from_buffer("long long[]", ids), len(ids),
            ffi.from_buffer("long long[]", ack),
            ffi.from_buffer("long long[]", seq),
            ffi.from_buffer(chains),
            ffi.from_buffer("long long[]", acks),
            quorum,
            s["seq_io_cd"],
            s["chain_io_cd"],
        )
        return (
            status,
            bytes(memoryview(out_pt)[:pt_size]),
            s["meta"],
            bytes(memoryview(s["chains"])[: 32 * count]),
            s["seq_io"][0],
            bytes(s["chain_io"]),
        )

    def _invoke_batch_reply(
        self, enc_key: bytes, mac_key: bytes, frame: bytes, prefix: bytes,
        meta, chains_out: bytes, plain: bytes, results: list,
        nonce_seed: bytes, nonce_counter: int,
    ) -> tuple[list[bytes], list[bytes], list[bytes]] | None:
        """Whole-batch REPLY encode + seal in one C call (None: fall back).

        Returns ``(boxes, row_blob_pieces, row_manifest_pieces)`` — the
        row pieces are the sealed-blob fragments for each reply's V row,
        built C-side while the box bytes are hot.
        """
        ffi = self._ffi
        count = len(results)
        s = self._batch_scratch(count)
        meta_cd = (
            s["meta_cd"]
            if meta is s["meta"]
            else ffi.from_buffer("long long[]", meta)
        )
        result_offsets = s["roffsets"]
        total = 0
        for index, result in enumerate(results):
            total += len(result)
            result_offsets[index + 1] = total
        base = 120 + len(prefix)
        sizes = [
            base + len(results[index]) + meta[10 * index + 7]
            for index in range(count)
        ]
        out_size = sum(sizes)
        rows_size = out_size + 61 * count
        manifests_size = 58 * count
        out, out_cd = self._byte_scratch(s, "out", out_size)
        out_rows, out_rows_cd = self._byte_scratch(s, "rows", rows_size)
        out_manifests, out_manifests_cd = self._byte_scratch(
            s, "manifests", manifests_size
        )
        status = self._lib.lcm_invoke_batch_reply(
            enc_key, mac_key,
            frame, len(frame),
            prefix, len(prefix),
            meta_cd, count,
            chains_out, plain,
            _join(results),
            s["roffsets_cd"],
            nonce_seed, nonce_counter,
            out_cd,
            out_rows_cd,
            out_manifests_cd,
        )
        if status != 0:
            return None
        view = bytes(memoryview(out)[:out_size])
        rows_view = bytes(memoryview(out_rows)[:rows_size])
        manifests_view = bytes(memoryview(out_manifests)[:manifests_size])
        boxes = []
        blobs = []
        manifests = []
        cursor = 0
        row_cursor = 0
        for index, size in enumerate(sizes):
            boxes.append(view[cursor : cursor + size])
            cursor += size
            row_size = 61 + size
            blobs.append(rows_view[row_cursor : row_cursor + row_size])
            row_cursor += row_size
            manifests.append(manifests_view[58 * index : 58 * index + 58])
        return boxes, blobs, manifests


def _load_compiled(modname: str):
    import importlib.util

    for candidate in sorted(_BUILD_DIR.glob(modname + "*.so")):
        spec = importlib.util.spec_from_file_location(modname, candidate)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    return None


def _build_c_backend() -> CBackend | None:
    """Compile (or load the cached) C module; None when unavailable."""
    try:
        import cffi
    except ImportError:
        return None
    digest = hashlib.sha256((_CDEF + _C_SOURCE).encode()).hexdigest()[:12]
    modname = f"_lcm_fastpath_{digest}"
    try:
        _BUILD_DIR.mkdir(exist_ok=True)
        module = _load_compiled(modname)
        if module is None:
            ffibuilder = cffi.FFI()
            ffibuilder.cdef(_CDEF)
            ffibuilder.set_source(
                modname, _C_SOURCE, extra_compile_args=["-O3"]
            )
            # compile in a per-pid scratch dir, then publish the .so with an
            # atomic rename so concurrent test processes never observe a
            # half-written module
            scratch = _BUILD_DIR / f"tmp-{os.getpid()}"
            so_path = pathlib.Path(
                ffibuilder.compile(tmpdir=str(scratch), verbose=False)
            )
            os.replace(so_path, _BUILD_DIR / so_path.name)
            shutil.rmtree(scratch, ignore_errors=True)
            for stale in _BUILD_DIR.glob("_lcm_fastpath_*.so"):
                if not stale.name.startswith(modname):
                    stale.unlink(missing_ok=True)
            module = _load_compiled(modname)
        if module is None:
            return None
        return CBackend(module.ffi, module.lib)
    except Exception:  # no compiler / broken toolchain: fall back silently
        return None


# ------------------------------------------------------------- selection

_BACKENDS: dict[str, object] = {}
_c_attempted = False


def _get_backend(name: str):
    global _c_attempted
    backend = _BACKENDS.get(name)
    if backend is not None:
        return backend
    if name == "python":
        backend = PythonBackend()
    elif name == "python-batch":
        backend = BatchPythonBackend()
    elif name == "c":
        if _c_attempted:
            return None
        _c_attempted = True
        backend = _build_c_backend()
        if backend is None:
            return None
    else:
        raise ConfigurationError(
            f"unknown fastpath backend {name!r} "
            "(expected 'c', 'python-batch' or 'python')"
        )
    _BACKENDS[name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of the backends that can actually be instantiated here."""
    names = ["python", "python-batch"]
    if _get_backend("c") is not None:
        names.insert(0, "c")
    return names


def select_backend(name: str | None = None):
    """Install (and return) the active backend.

    ``name=None`` applies the default policy: the accelerated C backend
    when it is buildable, else the hashlib-copy-minimizing batch
    variant.  Requesting ``"c"`` explicitly when it cannot be built
    raises :class:`~repro.errors.ConfigurationError` instead of silently
    degrading.
    """
    global BACKEND
    if name is None:
        backend = _get_backend("c") or _get_backend("python-batch")
    else:
        backend = _get_backend(name)
        if backend is None:
            raise ConfigurationError(
                f"fastpath backend {name!r} is unavailable "
                "(cffi or a C compiler is missing)"
            )
    BACKEND = backend
    return backend


def active_backend():
    """The backend the AEAD currently generates keystreams with."""
    return BACKEND


#: Selected at import; the REPRO_FASTPATH environment variable pins a
#: specific backend (e.g. ``REPRO_FASTPATH=python`` for a pure-stdlib
#: run, or ``=c`` to fail loudly when the compiled backend is missing).
BACKEND = select_backend(os.environ.get(_ENV_VAR) or None)
