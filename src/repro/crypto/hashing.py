"""Hashing and the LCM operation hash chain.

Alg. 2 extends a hash chain on every operation::

    h <- hash(h || o || t || i)

where ``o`` is the serialized operation, ``t`` the sequence number assigned
by the trusted context and ``i`` the invoking client's identifier.  The
chain value condenses the entire operation history: two parties holding the
same ``(t, h)`` pair have (except with negligible probability) observed the
same prefix of operations in the same order.

:class:`HashChain` is the reusable chain object; :func:`chain_extend` is the
pure function underneath it, used directly by the checker in
:mod:`repro.consistency.fork_linearizability` to recompute expected values.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.crypto import fastpath as _fastpath

#: The initial chain value h0 (Alg. 1: "initially hc = h0").  Any fixed,
#: publicly-known constant works; we use the hash of a domain-separation tag.
GENESIS_HASH: bytes = hashlib.sha256(b"lcm-genesis").digest()


def secure_hash(data: bytes) -> bytes:
    """Collision-resistant hash (SHA-256, as in the paper's implementation).

    Stays on hashlib: for one-shot digests of short inputs the stdlib's
    OpenSSL binding beats the cffi crossing of the fastpath backend (the
    backend wins only where it amortizes calls across blocks or boxes).
    """
    return hashlib.sha256(data).digest()


def secure_hash_many(segments: list[bytes]) -> list[bytes]:
    """SHA-256 of every segment, amortizing the native crossing when the
    compiled fastpath backend is active (one C call per batch)."""
    many = _fastpath.BACKEND.sha256_many
    if many is not None and len(segments) > 2:
        return many(segments)
    sha256 = hashlib.sha256
    return [sha256(segment).digest() for segment in segments]


#: Width of a consistent-hash ring position (64-bit points).
RING_POINT_BYTES = 8

#: Exclusive upper bound of the ring's point space.
RING_SPAN = 1 << (RING_POINT_BYTES * 8)


def ring_point(data: bytes | str) -> int:
    """64-bit consistent-hash ring position of ``data`` (str keys hash
    as their UTF-8 bytes).

    Lives here (not in :mod:`repro.sharding`) because both the keyspace
    partitioner and the trusted context's key-range handoff must derive
    the *same* point for a key without importing each other: the enclave
    filters its service state by ring membership when it exports the keys
    on reassigned arcs, and the router must agree on the result.  The
    str normalization lives here too, for the same reason.
    """
    if isinstance(data, str):
        data = data.encode()
    return int.from_bytes(hashlib.sha256(data).digest()[:RING_POINT_BYTES], "big")


def _encode_field(data: bytes) -> bytes:
    """Length-prefix a field so concatenation is injective."""
    return len(data).to_bytes(8, "big") + data


def chain_extend(previous: bytes, operation: bytes, sequence: int, client_id: int) -> bytes:
    """Compute ``hash(h || o || t || i)`` with injective field encoding.

    The paper writes plain concatenation; we length-prefix each field so no
    two distinct (h, o, t, i) tuples can collide by boundary shifting.
    The compiled fastpath backend builds the framing and hashes in one
    native call (byte-identical, cross-checked by the golden vectors);
    both routes raise OverflowError for fields outside the 64-bit framing.
    """
    backend = _fastpath.BACKEND
    if backend.chain_extend is not None:
        # inlined CBackend.chain_extend: one Python frame per step (this
        # runs twice per protocol round trip, client and context side)
        out = bytearray(32)
        backend._lib.lcm_chain_extend(
            previous, len(previous),
            operation, len(operation),
            sequence, client_id,
            backend._ffi.from_buffer(out),
        )
        return bytes(out)
    payload = (
        len(previous).to_bytes(8, "big")
        + previous
        + len(operation).to_bytes(8, "big")
        + operation
        + sequence.to_bytes(8, "big")
        + client_id.to_bytes(8, "big")
    )
    return secure_hash(payload)


@dataclass
class HashChain:
    """Mutable hash-chain accumulator mirroring the ``h`` variable of Alg. 2.

    >>> chain = HashChain()
    >>> h1 = chain.extend(b"put(k,v)", 1, 0)
    >>> chain.value == h1
    True
    """

    value: bytes = field(default=GENESIS_HASH)
    length: int = 0

    def extend(self, operation: bytes, sequence: int, client_id: int) -> bytes:
        """Fold an operation into the chain and return the new chain value."""
        self.value = chain_extend(self.value, operation, sequence, client_id)
        self.length += 1
        return self.value

    def fork(self) -> "HashChain":
        """Copy the chain — used by attack simulations to model forked views."""
        return HashChain(value=self.value, length=self.length)

    def matches(self, other_value: bytes) -> bool:
        """Constant-time comparison against another chain value."""
        return hmac.compare_digest(self.value, other_value)


def replay_chain(
    operations: "list[tuple[bytes, int, int]]", start: bytes = GENESIS_HASH
) -> bytes:
    """Recompute the chain value for a sequence of (op, seq, client) tuples.

    Used by consistency checkers to validate that a claimed chain value is
    reachable from a claimed history.
    """
    value = start
    for operation, sequence, client_id in operations:
        value = chain_extend(value, operation, sequence, client_id)
    return value
