"""Exception hierarchy for the LCM reproduction.

The paper's pseudocode signals server misbehaviour through ``assert``
statements that "immediately terminate the protocol" (Sec. 4.2.5).  We map
those asserts onto a structured exception hierarchy so that callers (tests,
attack demos, the benchmark harness) can distinguish *why* a party halted.

Every security-relevant failure derives from :class:`SecurityViolation`;
operational failures (crashes we tolerate, configuration errors) derive from
:class:`LCMError` directly.
"""

from __future__ import annotations


class LCMError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(LCMError):
    """A component was wired up incorrectly (missing keys, bad parameters)."""


class SecurityViolation(LCMError):
    """Base class for detected attacks / integrity failures.

    Raising this corresponds to the pseudocode's ``assert FALSE``: the party
    that raises it halts the protocol and refuses further interaction.
    """


class AuthenticationFailure(SecurityViolation):
    """Authenticated decryption failed: ciphertext was forged or tampered."""


class RollbackDetected(SecurityViolation):
    """The trusted context or a client observed stale (rolled-back) state."""


class ForkDetected(SecurityViolation):
    """Two diverged histories were presented to the same party."""


class ReplayDetected(SecurityViolation):
    """A duplicate INVOKE message was presented to the trusted context."""


class AttestationFailure(SecurityViolation):
    """Remote attestation did not verify: wrong program, wrong platform."""


class InvalidReply(SecurityViolation):
    """A REPLY did not match the client's outstanding INVOKE context."""


class StaleSequenceNumber(SecurityViolation):
    """A client presented a sequence number inconsistent with V (Alg. 2)."""


class TxnAtomicityViolation(SecurityViolation):
    """A cross-shard transaction's audit evidence is not atomic: its
    participant histories disagree about the decision (one applied a
    commit another applied an abort, a decision contradicts the
    coordinator's log, or a live history — e.g. a forked enclave
    instance — was shown the prepare but never its completed decision)."""


class EnclaveError(LCMError):
    """Lifecycle misuse of a trusted execution context (not an attack)."""


class EnclaveStopped(EnclaveError):
    """An operation was attempted on a stopped / crashed enclave."""


class SealingError(SecurityViolation):
    """Sealed blob could not be unsealed (wrong enclave, wrong platform)."""


class StorageError(LCMError):
    """Stable storage could not complete a load/store request."""


class MigrationError(LCMError):
    """The origin->target migration handshake failed."""


class MembershipError(LCMError):
    """Invalid group-membership change (unknown client, duplicate join)."""


class SimulationError(LCMError):
    """The discrete-event simulator was driven incorrectly."""


class ShardUnavailable(LCMError):
    """An operation was routed to a shard that has halted on a detected
    violation.  Raised by the router's fail-fast check instead of letting
    the request queue forever behind a stopped dispatcher; carries the
    shard id in its message so callers can re-route or surface it."""
