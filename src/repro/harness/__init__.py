"""Experiment harness: one entry point per paper table/figure.

- :mod:`repro.harness.experiments` — runs each experiment and returns
  structured series;
- :mod:`repro.harness.report` — renders the series as the paper-style
  tables and compares the measured ratios against the published bands;
- :mod:`repro.harness.frontier` — the open-loop latency–throughput
  frontier sweep (offered rate × shard count, saturation detection).
"""

from repro.harness.frontier import (
    FrontierCell,
    FrontierResult,
    run_cell,
    run_frontier,
)
from repro.harness.experiments import (
    run_fig4_object_size,
    run_fig5_clients_async,
    run_fig6_clients_sync,
    run_sec62_enclave_memory,
    run_sec63_message_overhead,
    run_sec65_tmc_comparison,
    run_shard_scaling,
)
from repro.harness.report import render_series_table, summarize_bands

__all__ = [
    "FrontierCell",
    "FrontierResult",
    "run_cell",
    "run_frontier",
    "run_fig4_object_size",
    "run_fig5_clients_async",
    "run_fig6_clients_sync",
    "run_sec62_enclave_memory",
    "run_sec63_message_overhead",
    "run_sec65_tmc_comparison",
    "run_shard_scaling",
    "render_series_table",
    "summarize_bands",
]
