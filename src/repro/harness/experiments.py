"""One entry point per paper experiment (tables/figures of Sec. 6).

Each ``run_*`` function returns an :class:`ExperimentResult` containing the
measured series, the paper's published expectation and derived comparison
ratios — everything the benchmark scripts and EXPERIMENTS.md need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import AeadKey
from repro.core.messages import invoke_metadata_overhead, reply_metadata_overhead
from repro.perf.costs import CostModel
from repro.perf.model import measure_throughput
from repro.tee.sgx import EpcModel, MapMemoryModel
from repro import serde

FIG4_OBJECT_SIZES = [100, 500, 1000, 1500, 2000, 2500]
FIG56_CLIENT_COUNTS = [1, 2, 4, 8, 16, 32]
FIG5_SYSTEMS = ["sgx", "sgx_batch", "native", "lcm", "lcm_batch", "redis", "sgx_tmc"]
SHARD_COUNTS = [1, 2, 4]


@dataclass
class ExperimentResult:
    """A reproduced table/figure: series plus paper-vs-measured notes."""

    experiment: str
    description: str
    parameters: dict
    series: dict[str, list]
    ratios: dict[str, object] = field(default_factory=dict)
    paper_expectation: dict[str, object] = field(default_factory=dict)


def _band(values: list[float]) -> tuple[float, float]:
    return (min(values), max(values)) if values else (0.0, 0.0)


# --------------------------------------------------------------------- Fig 4


def run_fig4_object_size(
    *,
    object_sizes: list[int] | None = None,
    clients: int = 8,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 4: throughput vs. object size, SGX vs. LCM, async writes."""
    sizes = object_sizes or FIG4_OBJECT_SIZES
    series: dict[str, list] = {"object_size": sizes, "sgx": [], "lcm": []}
    for size in sizes:
        for system in ("sgx", "lcm"):
            result = measure_throughput(
                system,
                clients=clients,
                object_size=size,
                fsync=False,
                costs=costs,
                duration=duration,
            )
            series[system].append(result.ops_per_second)
    overheads = [
        1.0 - lcm / sgx for sgx, lcm in zip(series["sgx"], series["lcm"])
    ]
    return ExperimentResult(
        experiment="fig4",
        description="Throughput with different object sizes (async disk writes)",
        parameters={"clients": clients, "object_sizes": sizes},
        series=series,
        ratios={
            "lcm_overhead_by_size": dict(zip(sizes, overheads)),
            "overhead_smallest": overheads[0],
            "overhead_largest": overheads[-1],
            "overhead_decreases": all(
                a >= b - 0.01 for a, b in zip(overheads, overheads[1:])
            ),
        },
        paper_expectation={
            "overhead_smallest": 0.2012,   # 100-byte objects
            "overhead_largest": 0.1096,    # 2500-byte objects
            "overhead_decreases": True,
        },
    )


# --------------------------------------------------------------------- Fig 5


def run_fig5_clients_async(
    *,
    client_counts: list[int] | None = None,
    systems: list[str] | None = None,
    object_size: int = 100,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 5: throughput vs. number of clients, async disk writes."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    names = systems or FIG5_SYSTEMS
    series: dict[str, list] = {"clients": counts}
    for name in names:
        series[name] = [
            measure_throughput(
                name,
                clients=n,
                object_size=object_size,
                fsync=False,
                costs=costs,
                duration=duration,
            ).ops_per_second
            for n in counts
        ]
    ratios: dict[str, object] = {}
    if "sgx" in series and "native" in series:
        ratios["sgx_vs_native"] = _band(
            [s / n for s, n in zip(series["sgx"], series["native"])]
        )
    if "lcm" in series and "sgx" in series:
        ratios["lcm_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx_batch" in series:
        ratios["lcm_batch_vs_sgx_batch"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx_batch"])]
        )
    if "sgx_tmc" in series:
        ratios["tmc_ops_per_second"] = _band(series["sgx_tmc"])
    return ExperimentResult(
        experiment="fig5",
        description="Throughput with different numbers of clients (async disk writes)",
        parameters={"object_size": object_size, "clients": counts},
        series=series,
        ratios=ratios,
        paper_expectation={
            "sgx_vs_native": (0.42, 0.78),
            "lcm_vs_sgx": (0.67, 0.95),
            "lcm_batch_vs_sgx_batch": (0.72, 0.98),
            "tmc_ops_per_second": (12.0, 12.0),
        },
    )


# --------------------------------------------------------------------- Fig 6


def run_fig6_clients_sync(
    *,
    client_counts: list[int] | None = None,
    systems: list[str] | None = None,
    object_size: int = 100,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 6: throughput vs. number of clients, synchronous (fsync) writes."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    names = systems or FIG5_SYSTEMS
    series: dict[str, list] = {"clients": counts}
    for name in names:
        series[name] = [
            measure_throughput(
                name,
                clients=n,
                object_size=object_size,
                fsync=True,
                costs=costs,
                duration=duration,
            ).ops_per_second
            for n in counts
        ]
    ratios: dict[str, object] = {}
    if "sgx" in series and "native" in series:
        ratios["sgx_vs_native"] = _band(
            [s / n for s, n in zip(series["sgx"], series["native"])]
        )
    if "lcm" in series and "sgx" in series:
        ratios["lcm_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx" in series:
        ratios["lcm_batch_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx_batch" in series:
        ratios["lcm_batch_vs_sgx_batch"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx_batch"])]
        )

    def _flat(name: str) -> bool:
        values = series.get(name, [])
        return bool(values) and max(values) <= 2.0 * min(values)

    ratios["flat_systems"] = {
        name: _flat(name) for name in ("native", "sgx", "lcm", "sgx_tmc") if name in series
    }
    return ExperimentResult(
        experiment="fig6",
        description="Throughput with different numbers of clients (sync disk writes)",
        parameters={"object_size": object_size, "clients": counts},
        series=series,
        ratios=ratios,
        paper_expectation={
            "sgx_vs_native": (0.98, 0.98),
            "lcm_vs_sgx": (0.69, 0.69),
            "lcm_batch_vs_sgx": (0.72, 9.87),
            "lcm_batch_vs_sgx_batch": (0.71, 0.75),
            "flat_systems": {"native": True, "sgx": True, "lcm": True, "sgx_tmc": True},
        },
    )


# ----------------------------------------------------------------- Sec 6.2


def run_sec62_enclave_memory(
    *,
    object_counts: list[int] | None = None,
    key_size: int = 40,
    value_size: int = 100,
) -> ExperimentResult:
    """Sec. 6.2: enclave heap consumption and EPC-paging latency knee."""
    counts = object_counts or [
        50_000, 100_000, 200_000, 300_000, 400_000, 600_000, 800_000, 1_000_000
    ]
    memory_model = MapMemoryModel()
    epc = EpcModel()
    heap_mb = [
        memory_model.heap_bytes(n, key_size, value_size) / (1024 * 1024)
        for n in counts
    ]
    latency_multiplier = [
        epc.latency_multiplier(memory_model.heap_bytes(n, key_size, value_size))
        for n in counts
    ]
    overhead = memory_model.overhead_fraction(key_size, value_size)
    heap_at_300k = memory_model.heap_bytes(300_000, key_size, value_size) / (1024 * 1024)
    return ExperimentResult(
        experiment="sec62",
        description="Enclave memory overhead and EPC paging latency",
        parameters={"key_size": key_size, "value_size": value_size},
        series={
            "objects": counts,
            "heap_mb": heap_mb,
            "latency_multiplier": latency_multiplier,
        },
        ratios={
            "map_overhead_fraction": overhead,
            "heap_mb_at_300k": heap_at_300k,
            "max_latency_increase": max(latency_multiplier) - 1.0,
            "knee_after_300k": epc.fits(
                memory_model.heap_bytes(300_000, key_size, value_size)
            ),
        },
        paper_expectation={
            "map_overhead_fraction": 1.34,
            "heap_mb_at_300k": 93.0,
            "max_latency_increase": 2.40,
            "knee_after_300k": True,
        },
    )


# ----------------------------------------------------------------- Sec 6.3


def run_sec63_message_overhead(
    *,
    object_sizes: list[int] | None = None,
) -> ExperimentResult:
    """Sec. 6.3: LCM metadata bytes added per INVOKE/REPLY, by object size."""
    sizes = object_sizes or FIG4_OBJECT_SIZES
    key = AeadKey(b"\x01" * 16, label="probe")
    invoke_overheads = []
    reply_overheads = []
    for size in sizes:
        operation = serde.encode(["PUT", "k" * 40, "v" * size])
        result = serde.encode("v" * size)
        invoke_overheads.append(invoke_metadata_overhead(operation, key))
        reply_overheads.append(reply_metadata_overhead(result, key))
    return ExperimentResult(
        experiment="sec63",
        description="LCM protocol message metadata overhead",
        parameters={"object_sizes": sizes},
        series={
            "object_size": sizes,
            "invoke_overhead_bytes": invoke_overheads,
            "reply_overhead_bytes": reply_overheads,
        },
        ratios={
            "invoke_constant": len(set(invoke_overheads)) == 1,
            "reply_constant": len(set(reply_overheads)) == 1,
            "invoke_overhead_bytes": invoke_overheads[0],
            "reply_overhead_bytes": reply_overheads[0],
        },
        paper_expectation={
            "invoke_constant": True,
            "reply_constant": True,
            "invoke_overhead_bytes": 45,  # compact C framing; ours is larger
            "reply_overhead_bytes": 46,   # but equally constant
        },
    )


# ----------------------------------------------------- shard scaling (new)


def run_shard_scaling(
    *,
    shard_counts: list[int] | None = None,
    clients: int = 24,
    requests_per_client: int = 40,
    object_size: int = 100,
    rebalance: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Beyond the paper: aggregate throughput of N LCM groups side by side.

    Figs. 5/6 stop at the one-group ceiling — a single trusted context
    serialises every request.  Here the keyspace is consistent-hash
    partitioned across ``shard_counts`` independent groups
    (:mod:`repro.sharding`) and closed-loop clients drive a *uniform* YCSB
    workload-A mix through the shard router under virtual time.  With
    ``rebalance`` one shard is migrated onto fresh hardware mid-run
    (Sec. 4.6.2 machinery), and every configuration must come out
    fork-linearizable on every shard — scaling never trades away the
    guarantees.
    """
    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster
    from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

    counts = shard_counts or SHARD_COUNTS
    workload = WORKLOAD_A.with_params(
        distribution="uniform", value_size=object_size
    )
    series: dict[str, list] = {
        "shards": list(counts),
        "ops_per_second": [],
        "simulated_seconds": [],
        "rebalances": [],
        "violations": [],
    }
    for shard_count in counts:
        cluster = ShardedCluster(
            shards=shard_count,
            clients=clients,
            seed=seed,
            latency=LatencyModel(
                propagation=100e-6, jitter_fraction=0.2, seed=seed
            ),
        )
        router = ShardRouter(cluster)
        # same seed for every shard count: identical request streams, so
        # the speedup ratio isolates the shard-count variable
        generator = WorkloadGenerator(workload, seed=seed)
        streams = {
            client_id: [
                generator.next_operations() for _ in range(requests_per_client)
            ]
            for client_id in cluster.client_ids
        }

        def start(client_id: int) -> None:
            # closed loop: the next logical request goes out when the
            # previous one completes (multi-op requests fan out and
            # complete when every shard has answered)
            def pump(_result=None) -> None:
                stream = streams[client_id]
                if not stream:
                    return
                request = stream.pop(0)
                if len(request) == 1:
                    router.submit(client_id, request[0], pump)
                else:
                    router.submit_many(client_id, request, pump)

            pump()

        for client_id in cluster.client_ids:
            start(client_id)
        if rebalance:
            # aim for roughly mid-run: half the serialised enclave time
            midpoint = (
                clients
                * requests_per_client
                * ShardedCluster.SERVICE_INTERVAL
                / (2 * shard_count)
            )
            cluster.schedule_rebalance(midpoint, 0)
        cluster.run()
        # non-raising checker: a violation is recorded in the series (and
        # fails the zero_violations ratio) instead of crashing the sweep
        verdict = router.verdict()
        elapsed = cluster.sim.now
        series["ops_per_second"].append(
            cluster.stats.operations_completed / elapsed if elapsed else 0.0
        )
        series["simulated_seconds"].append(elapsed)
        series["rebalances"].append(cluster.stats.rebalances)
        series["violations"].append(len(verdict.violations))
    baseline = series["ops_per_second"][0]
    speedups = [
        rate / baseline if baseline else 0.0
        for rate in series["ops_per_second"]
    ]
    return ExperimentResult(
        experiment="shard_scaling",
        description="Aggregate throughput of N sharded LCM groups (uniform YCSB-A)",
        parameters={
            "shards": list(counts),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "object_size": object_size,
            "rebalance": rebalance,
        },
        series=series,
        ratios={
            "speedup_by_shards": dict(zip(counts, speedups)),
            "speedup_at_max": speedups[-1],
            "zero_violations": not any(series["violations"]),
        },
        paper_expectation={
            # not a paper figure: the ISSUE's acceptance bar for this repo
            "speedup_at_max": 2.5,
            "zero_violations": True,
        },
    )


# ----------------------------------------------------------------- Sec 6.5


def run_sec65_tmc_comparison(
    *,
    client_counts: list[int] | None = None,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Sec. 6.5: TMC throughput vs. LCM-with-batching speedup band."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    tmc = [
        measure_throughput(
            "sgx_tmc", clients=n, costs=costs, duration=duration
        ).ops_per_second
        for n in counts
    ]
    lcm_batch = [
        measure_throughput(
            "lcm_batch", clients=n, costs=costs, duration=duration
        ).ops_per_second
        for n in counts
    ]
    speedups = [l / t for l, t in zip(lcm_batch, tmc)]
    return ExperimentResult(
        experiment="sec65",
        description="Trusted monotonic counter performance impact",
        parameters={"clients": counts},
        series={"clients": counts, "sgx_tmc": tmc, "lcm_batch": lcm_batch},
        ratios={
            "tmc_mean_ops": sum(tmc) / len(tmc),
            "tmc_flat": max(tmc) <= 1.5 * min(tmc),
            "speedup_band": _band(speedups),
        },
        paper_expectation={
            "tmc_mean_ops": 12.0,
            "tmc_flat": True,
            "speedup_band": (96.0, 2063.0),
        },
    )
