"""One entry point per paper experiment (tables/figures of Sec. 6).

Each ``run_*`` function returns an :class:`ExperimentResult` containing the
measured series, the paper's published expectation and derived comparison
ratios — everything the benchmark scripts and EXPERIMENTS.md need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import AeadKey
from repro.core.messages import invoke_metadata_overhead, reply_metadata_overhead
from repro.perf.costs import CostModel
from repro.perf.model import measure_throughput
from repro.tee.sgx import EpcModel, MapMemoryModel
from repro import serde

FIG4_OBJECT_SIZES = [100, 500, 1000, 1500, 2000, 2500]
FIG56_CLIENT_COUNTS = [1, 2, 4, 8, 16, 32]
FIG5_SYSTEMS = ["sgx", "sgx_batch", "native", "lcm", "lcm_batch", "redis", "sgx_tmc"]
SHARD_COUNTS = [1, 2, 4]


@dataclass
class ExperimentResult:
    """A reproduced table/figure: series plus paper-vs-measured notes."""

    experiment: str
    description: str
    parameters: dict
    series: dict[str, list]
    ratios: dict[str, object] = field(default_factory=dict)
    paper_expectation: dict[str, object] = field(default_factory=dict)
    #: one observability-plane snapshot (``cluster.metrics()``) captured
    #: at the end of the run, for cluster-backed experiments — counters,
    #: gauges, histograms and verifier events, JSON-ready
    metrics: dict = field(default_factory=dict)


def _streaming_parity(cluster, router, verdict) -> bool:
    """True when the online verdict matches the post-mortem one exactly
    (see :func:`repro.sharding.observer.parity_report`).  Cluster-backed
    experiments assert this ratio so every harness scenario doubles as a
    streaming-equivalence check."""
    from repro.sharding.observer import parity_report

    if not cluster.observer.enabled:
        return True
    return not parity_report(router.streaming_verdict(), verdict)


def _band(values: list[float]) -> tuple[float, float]:
    return (min(values), max(values)) if values else (0.0, 0.0)


# --------------------------------------------------------------------- Fig 4


def run_fig4_object_size(
    *,
    object_sizes: list[int] | None = None,
    clients: int = 8,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 4: throughput vs. object size, SGX vs. LCM, async writes."""
    sizes = object_sizes or FIG4_OBJECT_SIZES
    series: dict[str, list] = {"object_size": sizes, "sgx": [], "lcm": []}
    for size in sizes:
        for system in ("sgx", "lcm"):
            result = measure_throughput(
                system,
                clients=clients,
                object_size=size,
                fsync=False,
                costs=costs,
                duration=duration,
            )
            series[system].append(result.ops_per_second)
    overheads = [
        1.0 - lcm / sgx for sgx, lcm in zip(series["sgx"], series["lcm"])
    ]
    return ExperimentResult(
        experiment="fig4",
        description="Throughput with different object sizes (async disk writes)",
        parameters={"clients": clients, "object_sizes": sizes},
        series=series,
        ratios={
            "lcm_overhead_by_size": dict(zip(sizes, overheads)),
            "overhead_smallest": overheads[0],
            "overhead_largest": overheads[-1],
            "overhead_decreases": all(
                a >= b - 0.01 for a, b in zip(overheads, overheads[1:])
            ),
        },
        paper_expectation={
            "overhead_smallest": 0.2012,   # 100-byte objects
            "overhead_largest": 0.1096,    # 2500-byte objects
            "overhead_decreases": True,
        },
    )


# --------------------------------------------------------------------- Fig 5


def run_fig5_clients_async(
    *,
    client_counts: list[int] | None = None,
    systems: list[str] | None = None,
    object_size: int = 100,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 5: throughput vs. number of clients, async disk writes."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    names = systems or FIG5_SYSTEMS
    series: dict[str, list] = {"clients": counts}
    for name in names:
        series[name] = [
            measure_throughput(
                name,
                clients=n,
                object_size=object_size,
                fsync=False,
                costs=costs,
                duration=duration,
            ).ops_per_second
            for n in counts
        ]
    ratios: dict[str, object] = {}
    if "sgx" in series and "native" in series:
        ratios["sgx_vs_native"] = _band(
            [s / n for s, n in zip(series["sgx"], series["native"])]
        )
    if "lcm" in series and "sgx" in series:
        ratios["lcm_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx_batch" in series:
        ratios["lcm_batch_vs_sgx_batch"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx_batch"])]
        )
    if "sgx_tmc" in series:
        ratios["tmc_ops_per_second"] = _band(series["sgx_tmc"])
    return ExperimentResult(
        experiment="fig5",
        description="Throughput with different numbers of clients (async disk writes)",
        parameters={"object_size": object_size, "clients": counts},
        series=series,
        ratios=ratios,
        paper_expectation={
            "sgx_vs_native": (0.42, 0.78),
            "lcm_vs_sgx": (0.67, 0.95),
            "lcm_batch_vs_sgx_batch": (0.72, 0.98),
            "tmc_ops_per_second": (12.0, 12.0),
        },
    )


# --------------------------------------------------------------------- Fig 6


def run_fig6_clients_sync(
    *,
    client_counts: list[int] | None = None,
    systems: list[str] | None = None,
    object_size: int = 100,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Fig. 6: throughput vs. number of clients, synchronous (fsync) writes."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    names = systems or FIG5_SYSTEMS
    series: dict[str, list] = {"clients": counts}
    for name in names:
        series[name] = [
            measure_throughput(
                name,
                clients=n,
                object_size=object_size,
                fsync=True,
                costs=costs,
                duration=duration,
            ).ops_per_second
            for n in counts
        ]
    ratios: dict[str, object] = {}
    if "sgx" in series and "native" in series:
        ratios["sgx_vs_native"] = _band(
            [s / n for s, n in zip(series["sgx"], series["native"])]
        )
    if "lcm" in series and "sgx" in series:
        ratios["lcm_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx" in series:
        ratios["lcm_batch_vs_sgx"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx"])]
        )
    if "lcm_batch" in series and "sgx_batch" in series:
        ratios["lcm_batch_vs_sgx_batch"] = _band(
            [l / s for l, s in zip(series["lcm_batch"], series["sgx_batch"])]
        )

    def _flat(name: str) -> bool:
        values = series.get(name, [])
        return bool(values) and max(values) <= 2.0 * min(values)

    ratios["flat_systems"] = {
        name: _flat(name) for name in ("native", "sgx", "lcm", "sgx_tmc") if name in series
    }
    return ExperimentResult(
        experiment="fig6",
        description="Throughput with different numbers of clients (sync disk writes)",
        parameters={"object_size": object_size, "clients": counts},
        series=series,
        ratios=ratios,
        paper_expectation={
            "sgx_vs_native": (0.98, 0.98),
            "lcm_vs_sgx": (0.69, 0.69),
            "lcm_batch_vs_sgx": (0.72, 9.87),
            "lcm_batch_vs_sgx_batch": (0.71, 0.75),
            "flat_systems": {"native": True, "sgx": True, "lcm": True, "sgx_tmc": True},
        },
    )


# ----------------------------------------------------------------- Sec 6.2


def run_sec62_enclave_memory(
    *,
    object_counts: list[int] | None = None,
    key_size: int = 40,
    value_size: int = 100,
) -> ExperimentResult:
    """Sec. 6.2: enclave heap consumption and EPC-paging latency knee."""
    counts = object_counts or [
        50_000, 100_000, 200_000, 300_000, 400_000, 600_000, 800_000, 1_000_000
    ]
    memory_model = MapMemoryModel()
    epc = EpcModel()
    heap_mb = [
        memory_model.heap_bytes(n, key_size, value_size) / (1024 * 1024)
        for n in counts
    ]
    latency_multiplier = [
        epc.latency_multiplier(memory_model.heap_bytes(n, key_size, value_size))
        for n in counts
    ]
    overhead = memory_model.overhead_fraction(key_size, value_size)
    heap_at_300k = memory_model.heap_bytes(300_000, key_size, value_size) / (1024 * 1024)
    return ExperimentResult(
        experiment="sec62",
        description="Enclave memory overhead and EPC paging latency",
        parameters={"key_size": key_size, "value_size": value_size},
        series={
            "objects": counts,
            "heap_mb": heap_mb,
            "latency_multiplier": latency_multiplier,
        },
        ratios={
            "map_overhead_fraction": overhead,
            "heap_mb_at_300k": heap_at_300k,
            "max_latency_increase": max(latency_multiplier) - 1.0,
            "knee_after_300k": epc.fits(
                memory_model.heap_bytes(300_000, key_size, value_size)
            ),
        },
        paper_expectation={
            "map_overhead_fraction": 1.34,
            "heap_mb_at_300k": 93.0,
            "max_latency_increase": 2.40,
            "knee_after_300k": True,
        },
    )


# ----------------------------------------------------------------- Sec 6.3


def run_sec63_message_overhead(
    *,
    object_sizes: list[int] | None = None,
) -> ExperimentResult:
    """Sec. 6.3: LCM metadata bytes added per INVOKE/REPLY, by object size."""
    sizes = object_sizes or FIG4_OBJECT_SIZES
    key = AeadKey(b"\x01" * 16, label="probe")
    invoke_overheads = []
    reply_overheads = []
    for size in sizes:
        operation = serde.encode(["PUT", "k" * 40, "v" * size])
        result = serde.encode("v" * size)
        invoke_overheads.append(invoke_metadata_overhead(operation, key))
        reply_overheads.append(reply_metadata_overhead(result, key))
    return ExperimentResult(
        experiment="sec63",
        description="LCM protocol message metadata overhead",
        parameters={"object_sizes": sizes},
        series={
            "object_size": sizes,
            "invoke_overhead_bytes": invoke_overheads,
            "reply_overhead_bytes": reply_overheads,
        },
        ratios={
            "invoke_constant": len(set(invoke_overheads)) == 1,
            "reply_constant": len(set(reply_overheads)) == 1,
            "invoke_overhead_bytes": invoke_overheads[0],
            "reply_overhead_bytes": reply_overheads[0],
        },
        paper_expectation={
            "invoke_constant": True,
            "reply_constant": True,
            "invoke_overhead_bytes": 45,  # compact C framing; ours is larger
            "reply_overhead_bytes": 46,   # but equally constant
        },
    )


# ----------------------------------------------------- shard scaling (new)


def run_shard_scaling(
    *,
    shard_counts: list[int] | None = None,
    clients: int = 24,
    requests_per_client: int = 40,
    object_size: int = 100,
    rebalance: bool = True,
    distribution: str = "uniform",
    seed: int = 0,
    export=None,
) -> ExperimentResult:
    """Beyond the paper: aggregate throughput of N LCM groups side by side.

    Figs. 5/6 stop at the one-group ceiling — a single trusted context
    serialises every request.  Here the keyspace is consistent-hash
    partitioned across ``shard_counts`` independent groups
    (:mod:`repro.sharding`) and closed-loop clients drive a YCSB
    workload-A mix through the shard router under virtual time.  With
    ``rebalance`` one shard is migrated onto fresh hardware mid-run
    (Sec. 4.6.2 machinery), and every configuration must come out
    fork-linearizable on every shard — scaling never trades away the
    guarantees.

    ``distribution`` selects the request-key distribution: ``"uniform"``
    (the original sweep) or ``"zipfian"`` (YCSB-A's native skew).  A
    zipfian mix concentrates load on the shards owning the hot keys, so
    the per-shard ``load_skew`` series — max over mean per-shard
    operations, 1.0 = perfectly balanced — surfaces the partitioner's
    balance limits as the shard count grows.

    ``export`` (a sink or sink list, see :mod:`repro.obs.export`)
    attaches a push exporter to the *final* shard count of the sweep —
    the configuration whose metrics snapshot the result carries — and
    closes it with that snapshot, so a caller gets one reconcilable
    telemetry stream per sweep rather than interleaved streams from
    every configuration.
    """
    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster
    from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

    counts = shard_counts or SHARD_COUNTS
    workload = WORKLOAD_A.with_params(
        distribution=distribution, value_size=object_size
    )
    series: dict[str, list] = {
        "shards": list(counts),
        "ops_per_second": [],
        "simulated_seconds": [],
        "rebalances": [],
        "violations": [],
        "load_skew": [],
        "per_shard_share": [],
        "streaming_parity": [],
    }
    metrics_snapshot: dict = {}
    for index, shard_count in enumerate(counts):
        cluster = ShardedCluster(
            shards=shard_count,
            clients=clients,
            seed=seed,
            latency=LatencyModel(
                propagation=100e-6, jitter_fraction=0.2, seed=seed
            ),
            export=export if index == len(counts) - 1 else None,
        )
        router = ShardRouter(cluster)
        # same seed for every shard count: identical request streams, so
        # the speedup ratio isolates the shard-count variable
        generator = WorkloadGenerator(workload, seed=seed)
        streams = {
            client_id: [
                generator.next_operations() for _ in range(requests_per_client)
            ]
            for client_id in cluster.client_ids
        }

        def start(client_id: int) -> None:
            # closed loop: the next logical request goes out when the
            # previous one completes (multi-op requests fan out and
            # complete when every shard has answered)
            def pump(_result=None) -> None:
                stream = streams[client_id]
                if not stream:
                    return
                request = stream.pop(0)
                if len(request) == 1:
                    router.submit(client_id, request[0], pump)
                else:
                    router.submit_many(client_id, request, pump)

            pump()

        for client_id in cluster.client_ids:
            start(client_id)
        if rebalance:
            # aim for roughly mid-run: half the serialised enclave time
            midpoint = (
                clients
                * requests_per_client
                * ShardedCluster.SERVICE_INTERVAL
                / (2 * shard_count)
            )
            cluster.schedule_rebalance(midpoint, 0)
        cluster.run()
        # non-raising checker: a violation is recorded in the series (and
        # fails the zero_violations ratio) instead of crashing the sweep
        verdict = router.verdict()
        elapsed = cluster.sim.now
        series["ops_per_second"].append(
            cluster.stats.operations_completed / elapsed if elapsed else 0.0
        )
        series["simulated_seconds"].append(elapsed)
        series["rebalances"].append(cluster.stats.rebalances)
        series["violations"].append(len(verdict.violations))
        per_shard = [
            cluster.stats.per_shard_operations[shard_id]
            for shard_id in cluster.shard_ids
        ]
        total = sum(per_shard) or 1
        mean = total / len(per_shard)
        skew = max(per_shard) / mean
        series["load_skew"].append(skew)
        series["per_shard_share"].append(
            [round(count / total, 4) for count in per_shard]
        )
        series["streaming_parity"].append(
            _streaming_parity(cluster, router, verdict)
        )
        # balance figures live in the registry too, so one metrics
        # snapshot carries the whole run's observability surface
        cluster.metrics_registry.gauge("experiment.load_skew").set(skew)
        for shard_id, count in zip(cluster.shard_ids, per_shard):
            cluster.metrics_registry.gauge(
                "experiment.per_shard_share", shard=str(shard_id)
            ).set(round(count / total, 4))
        metrics_snapshot = cluster.metrics()
        if cluster.exporter is not None:
            cluster.exporter.close(metrics_snapshot)
    baseline = series["ops_per_second"][0]
    speedups = [
        rate / baseline if baseline else 0.0
        for rate in series["ops_per_second"]
    ]
    return ExperimentResult(
        experiment="shard_scaling",
        description=(
            f"Aggregate throughput of N sharded LCM groups "
            f"({distribution} YCSB-A)"
        ),
        parameters={
            "shards": list(counts),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "object_size": object_size,
            "rebalance": rebalance,
            "distribution": distribution,
        },
        series=series,
        ratios={
            "speedup_by_shards": dict(zip(counts, speedups)),
            "speedup_at_max": speedups[-1],
            "zero_violations": not any(series["violations"]),
            "load_skew_by_shards": dict(zip(counts, series["load_skew"])),
            "max_load_skew": max(series["load_skew"]),
            "streaming_parity": all(series["streaming_parity"]),
        },
        paper_expectation={
            # not a paper figure: the ISSUE's acceptance bar for this repo
            "speedup_at_max": 2.5,
            "zero_violations": True,
            "streaming_parity": True,
        },
        metrics=metrics_snapshot,
    )


# ------------------------------------------------- elastic scaling (new)


def run_elastic_scaling(
    *,
    shards: int = 2,
    clients: int = 16,
    requests_per_client: int = 40,
    object_size: int = 100,
    distribution: str = "zipfian",
    seed: int = 0,
) -> ExperimentResult:
    """Elastic control plane under fire: split, merge, crash + recover.

    One YCSB-A trace (zipfian by default — the workload's native skew)
    runs closed-loop against a live cluster while the control plane
    reshapes it mid-flight:

    - ~20% in, a **split**: ``add_shard`` grows the ring by one group,
      handing over only the keys on the arcs the new shard gains;
    - ~45% in, a **merge**: ``remove_shard`` retires one of the original
      groups, handing its arcs to the survivors;
    - ~70% in, a **crash**: one shard's hardware dies abruptly;
    - ~85% in, a **recovery**: the dead shard is re-bootstrapped as a
      fresh generation (fresh keys + attestation, clients re-enrolled)
      and the router replays everything the outage parked.

    The acceptance bar: every logical request completes, and the merged
    verdict — audit evidence spanning the handoffs, the removed shard's
    retired logs, and both generations of the crashed shard — shows zero
    fork-linearizability violations.
    """
    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster
    from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

    if shards < 2:
        raise ValueError("the merge phase needs at least two initial shards")
    cluster = ShardedCluster(
        shards=shards,
        clients=clients,
        seed=seed,
        latency=LatencyModel(propagation=100e-6, jitter_fraction=0.2, seed=seed),
    )
    router = ShardRouter(cluster, failover=True)
    workload = WORKLOAD_A.with_params(
        distribution=distribution, value_size=object_size
    )
    generator = WorkloadGenerator(workload, seed=seed)
    streams = {
        client_id: [
            generator.next_operations() for _ in range(requests_per_client)
        ]
        for client_id in cluster.client_ids
    }
    completed = {"requests": 0}

    def start(client_id: int) -> None:
        def pump(result=None) -> None:
            if result is not None:
                completed["requests"] += 1
            stream = streams[client_id]
            if not stream:
                return
            request = stream.pop(0)
            if len(request) == 1:
                router.submit(client_id, request[0], pump)
            else:
                router.submit_many(client_id, request, pump)

        pump()

    for client_id in cluster.client_ids:
        start(client_id)

    estimated = (
        clients * requests_per_client * ShardedCluster.SERVICE_INTERVAL / shards
    )
    split_id = cluster.add_shard(at=0.20 * estimated)
    merged_id = shards - 1              # retire the last original group
    cluster.remove_shard(merged_id, at=0.45 * estimated)
    crashed_id = 0
    cluster.schedule_crash(0.70 * estimated, crashed_id)
    cluster.recover_shard(crashed_id, at=0.85 * estimated)
    cluster.run()

    verdict = router.verdict()
    elapsed = cluster.sim.now
    total_requests = clients * requests_per_client
    reports = cluster.control.reports
    series: dict[str, list] = {
        "event": [report.kind for report in reports],
        "event_shard": [report.shard_id for report in reports],
        "event_ok": [report.completed for report in reports],
        "event_completed_at": [report.completed_at for report in reports],
        "event_keys_moved": [report.keys_moved for report in reports],
        "violations_by_shard": [
            len(verdict.shards[shard_id].generations)
            - sum(g.ok for g in verdict.shards[shard_id].generations)
            for shard_id in sorted(verdict.shards)
        ],
    }
    return ExperimentResult(
        experiment="elastic_scaling",
        description=(
            "Split, merge and crash+recover on a live sharded cluster "
            f"({distribution} YCSB-A)"
        ),
        parameters={
            "shards": shards,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "object_size": object_size,
            "distribution": distribution,
            "split_shard": split_id,
            "merged_shard": merged_id,
            "crashed_shard": crashed_id,
        },
        series=series,
        ratios={
            "ops_per_second": (
                cluster.stats.operations_completed / elapsed if elapsed else 0.0
            ),
            "requests_completed": completed["requests"],
            "all_requests_completed": completed["requests"] == total_requests,
            "reshards_completed": cluster.stats.reshards,
            "recoveries_completed": cluster.stats.recoveries,
            "keys_migrated": cluster.stats.keys_migrated,
            "operations_parked": router.operations_parked,
            "operations_replayed": router.operations_replayed,
            "zero_violations": verdict.ok,
            "streaming_parity": _streaming_parity(cluster, router, verdict),
        },
        paper_expectation={
            # not a paper figure: the ISSUE's acceptance bar for this PR
            "zero_violations": True,
            "all_requests_completed": True,
            "reshards_completed": 2,
            "recoveries_completed": 1,
            "streaming_parity": True,
        },
        metrics=cluster.metrics(),
    )


# ------------------------------------------------- cross-shard txns (new)


def run_cross_shard(
    *,
    shards: int = 3,
    clients: int = 12,
    requests_per_client: int = 30,
    txn_fraction: float = 0.35,
    txn_size: int = 3,
    object_size: int = 100,
    distribution: str = "zipfian",
    faults: bool = True,
    group_commit: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Cross-shard atomic commit under fire: a transactional YCSB mix.

    Closed-loop clients drive a YCSB-A-flavoured stream where a fraction
    of logical requests are *multi-key transactions* — ``txn_size``
    distinct keys read-modified-written atomically through the router's
    two-phase coordinator (:meth:`~repro.sharding.ShardRouter.submit_txn`)
    — and the rest are ordinary single-key operations (which transparently
    retry when they land on a key locked by a pending transaction).
    Conflicting transactions abort deterministically and are resubmitted
    with a per-client stagger.

    With ``faults`` (the acceptance configuration) the run additionally
    injects the two classic 2PC crash windows, each followed by a
    recovery:

    - **crash-at-prepare** — a participant's hardware dies right after
      the coordinator handed its prepare to the wire: the vote is lost,
      the failover router replays the prepare onto the recovered
      generation, and the transaction still decides exactly once;
    - **crash-after-decision** — a participant dies with the commit in
      flight: the decision replays after recovery and must be a no-op
      there (idempotence), never a double-apply.

    The acceptance bar: every logical request completes, transactions
    span at least two shards, and the merged verdict — per-shard
    fork-linearizability plus the cross-shard transaction checks — shows
    zero violations.
    """
    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster
    from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

    if shards < 2:
        raise ValueError("cross-shard transactions need at least two shards")
    cluster = ShardedCluster(
        shards=shards,
        clients=clients,
        seed=seed,
        latency=LatencyModel(propagation=100e-6, jitter_fraction=0.2, seed=seed),
    )
    router = ShardRouter(cluster, failover=True, group_commit=group_commit)
    workload = WORKLOAD_A.with_params(
        distribution=distribution, value_size=object_size
    )
    generator = WorkloadGenerator(workload, seed=seed)
    import random as _random

    mix = _random.Random(seed + 101)

    def next_request() -> tuple[str, list]:
        if mix.random() < txn_fraction:
            # a read-modify-write over txn_size *distinct* keys; key
            # choice reuses the workload's (zipfian/uniform) chooser so
            # hot keys collide across clients and conflicts are real
            chosen: list[str] = []
            while len(chosen) < txn_size:
                key = generator.sample_key()
                if key not in chosen:
                    chosen.append(key)
            operations = []
            for index, key in enumerate(chosen):
                if index % 2 == 0:
                    operations.append(("PUT", key, generator.value()))
                else:
                    operations.append(("GET", key))
            return "txn", operations
        return "plain", generator.next_operations()

    streams = {
        client_id: [next_request() for _ in range(requests_per_client)]
        for client_id in cluster.client_ids
    }
    completed = {"requests": 0, "txn_requests": 0, "conflict_retries": 0}
    exhausted: list[str] = []
    MAX_TXN_ATTEMPTS = 50

    def start(client_id: int) -> None:
        def pump(_result=None) -> None:
            stream = streams[client_id]
            if not stream:
                return
            kind, request = stream.pop(0)
            if kind == "txn":
                run_txn(request, attempt=0)
            elif len(request) == 1:
                router.submit(client_id, request[0], complete_plain)
            else:
                router.submit_many(client_id, request, complete_plain)

        def complete_plain(_result) -> None:
            completed["requests"] += 1
            pump()

        def run_txn(operations: list, attempt: int) -> None:
            def on_txn(result) -> None:
                if result.committed:
                    completed["requests"] += 1
                    completed["txn_requests"] += 1
                    pump()
                    return
                if attempt + 1 >= MAX_TXN_ATTEMPTS:
                    exhausted.append(result.txn_id)
                    pump()
                    return
                completed["conflict_retries"] += 1
                # deterministic per-client stagger breaks conflict
                # lockstep without wall-clock randomness
                delay = (
                    ShardedCluster.SERVICE_INTERVAL
                    * (1 + attempt)
                    * (1.0 + 0.13 * client_id)
                )
                cluster.sim.schedule(
                    delay,
                    lambda: run_txn(operations, attempt + 1),
                    label=f"txn-retry-c{client_id}",
                )

            router.submit_txn(client_id, operations, on_txn)

        pump()

    fault_events: list[tuple[str, int]] = []
    if faults:
        cross_seen = {"prepare": 0, "decision": 0}

        def phase_hook(phase: str, record) -> None:
            if len(record.participants) < 2:
                return
            if phase == "prepare-sent":
                cross_seen["prepare"] += 1
                if cross_seen["prepare"] == 4 and not fault_events:
                    victim = sorted(record.participants)[0]
                    fault_events.append(("crash-at-prepare", victim))
                    cluster.crash_shard(victim)
                    cluster.recover_shard(
                        victim, at=30 * ShardedCluster.SERVICE_INTERVAL
                    )
            elif phase == "decision-sent":
                cross_seen["decision"] += 1
                if cross_seen["decision"] >= 10 and len(fault_events) == 1:
                    victim = sorted(record.participants)[-1]
                    if cluster.shard_healthy(victim) and not cluster.control.busy:
                        fault_events.append(("crash-after-decision", victim))
                        cluster.crash_shard(victim)
                        cluster.recover_shard(
                            victim, at=30 * ShardedCluster.SERVICE_INTERVAL
                        )

        router.txn_phase_hook = phase_hook

    for client_id in cluster.client_ids:
        start(client_id)
    cluster.run()

    verdict = router.verdict()
    elapsed = cluster.sim.now
    total_requests = clients * requests_per_client
    decisions = router.coordinator_decisions()
    cross_shard_txns = sum(
        1 for entry in decisions.values() if len(entry.participants) >= 2
    )
    max_participants = max(
        (len(entry.participants) for entry in decisions.values()),
        default=0,
    )
    series: dict[str, list] = {
        "fault": [kind for kind, _ in fault_events],
        "fault_shard": [shard_id for _, shard_id in fault_events],
        "violations_by_shard": [
            0 if verdict.shards[shard_id].ok else 1
            for shard_id in sorted(verdict.shards)
        ],
    }
    return ExperimentResult(
        experiment="cross_shard",
        description=(
            f"Cross-shard atomic commit over a {distribution} YCSB mix "
            f"({int(txn_fraction * 100)}% multi-key transactions)"
        ),
        parameters={
            "shards": shards,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "txn_fraction": txn_fraction,
            "txn_size": txn_size,
            "object_size": object_size,
            "distribution": distribution,
            "faults": faults,
            "group_commit": group_commit,
            "seed": seed,
        },
        series=series,
        ratios={
            "ops_per_second": (
                cluster.stats.operations_completed / elapsed if elapsed else 0.0
            ),
            "requests_completed": completed["requests"],
            "all_requests_completed": (
                completed["requests"] == total_requests and not exhausted
            ),
            "txn_requests_completed": completed["txn_requests"],
            "transactions_committed": router.transactions_committed,
            "transactions_aborted": router.transactions_aborted,
            "conflict_retries": completed["conflict_retries"],
            "cross_shard_txns": cross_shard_txns,
            "max_participants": max_participants,
            "spans_multiple_shards": cross_shard_txns > 0,
            "lock_retries": router.operations_lock_retried,
            "txn_group_flushes": router.txn_group_flushes,
            "txn_group_entries": router.txn_group_entries,
            "faults_injected": len(fault_events),
            "recoveries_completed": cluster.stats.recoveries,
            "zero_violations": verdict.ok,
            "txn_violations": len(verdict.txn_violations),
            "streaming_parity": _streaming_parity(cluster, router, verdict),
        },
        paper_expectation={
            # not a paper figure: the ISSUE's acceptance bar for this PR
            "zero_violations": True,
            "all_requests_completed": True,
            "spans_multiple_shards": True,
            "streaming_parity": True,
        },
        metrics=cluster.metrics(),
    )


# --------------------------------------------- transaction group commit


def run_group_commit(
    *,
    shard_counts: tuple[int, ...] = (2, 4),
    clients: int = 8,
    txns_per_client: int = 30,
    txn_size: int = 2,
    pipeline_depth: int = 4,
    key_universe: int = 64,
    object_size: int = 64,
    seed: int = 7,
) -> ExperimentResult:
    """Transaction throughput vs. shard count under group commit.

    Each client keeps ``pipeline_depth`` multi-key transactions in
    flight over a deliberately small key universe, so per-(client,
    shard) machines are continuously busy and the router's group commit
    engages: lifecycle operations headed for a busy machine accumulate
    and flush as one merged sealed operation per direction.  Conflicting
    prepares queue as wound-wait waiters instead of aborting, so the
    contention shows up as waiting, not retry storms.

    The acceptance bar: committed-transaction throughput (virtual time)
    *increases* with the shard count — participants per transaction stay
    fixed at ``txn_size`` while the lock/queue/ecall work spreads over
    more shards — with zero violations and a non-zero number of merged
    flushes at every point.
    """
    import random as _random

    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster

    series: dict[str, list] = {
        "shards": list(shard_counts),
        "txns_per_second": [],
        "committed": [],
        "aborted": [],
        "group_flushes": [],
        "group_entries": [],
        "lock_waits": [],
    }
    violations = 0
    parity = True
    for count in shard_counts:
        cluster = ShardedCluster(
            shards=count,
            clients=clients,
            seed=seed,
            latency=LatencyModel(
                propagation=100e-6, jitter_fraction=0.2, seed=seed
            ),
        )
        router = ShardRouter(cluster)
        rng = _random.Random(seed + count)
        keys = [f"gc-key-{index:04d}" for index in range(key_universe)]
        for index, key in enumerate(keys):
            router.submit(
                cluster.client_ids[index % clients], ("PUT", key, "seed")
            )
        cluster.run()

        value = "v" * object_size
        done = {"committed": 0, "aborted": 0}

        def start(client_id: int, budget: list) -> None:
            def submit_next(_result=None) -> None:
                if _result is not None:
                    if _result.committed:
                        done["committed"] += 1
                    else:
                        done["aborted"] += 1
                if not budget:
                    return
                budget.pop()
                chosen = rng.sample(keys, txn_size)
                operations = [("PUT", key, value) for key in chosen]
                router.submit_txn(client_id, operations, submit_next)

            for _ in range(pipeline_depth):
                submit_next()

        for client_id in cluster.client_ids:
            start(client_id, [None] * txns_per_client)
        cluster.run()

        verdict = router.verdict()
        violations += 0 if verdict.ok else 1
        parity = parity and _streaming_parity(cluster, router, verdict)
        elapsed = cluster.sim.now
        series["txns_per_second"].append(
            done["committed"] / elapsed if elapsed else 0.0
        )
        series["committed"].append(done["committed"])
        series["aborted"].append(done["aborted"])
        series["group_flushes"].append(router.txn_group_flushes)
        series["group_entries"].append(router.txn_group_entries)
        series["lock_waits"].append(router.operations_lock_retried)
    throughput = series["txns_per_second"]
    return ExperimentResult(
        experiment="group_commit",
        description=(
            "Cross-shard transaction throughput vs. shard count with "
            "group commit and queued waiters"
        ),
        parameters={
            "shard_counts": list(shard_counts),
            "clients": clients,
            "txns_per_client": txns_per_client,
            "txn_size": txn_size,
            "pipeline_depth": pipeline_depth,
            "key_universe": key_universe,
            "object_size": object_size,
            "seed": seed,
        },
        series=series,
        ratios={
            "throughput_scales_with_shards": all(
                later > earlier
                for earlier, later in zip(throughput, throughput[1:])
            ),
            "scaling_factor": (
                throughput[-1] / throughput[0] if throughput and throughput[0]
                else 0.0
            ),
            "group_flushes_everywhere": all(
                flushes > 0 for flushes in series["group_flushes"]
            ),
            "zero_violations": violations == 0,
            "streaming_parity": parity,
        },
        paper_expectation={
            # Sec. 5.2/5.3 batching argument applied to the transaction
            # plane: amortised lifecycle ecalls keep scaling with shards
            "throughput_scales_with_shards": True,
            "group_flushes_everywhere": True,
            "zero_violations": True,
            "streaming_parity": True,
        },
    )


# ------------------------------------------- parallel wall clock (new)


def run_parallel_wallclock(
    *,
    shards: int = 4,
    clients: int = 8,
    requests_per_client: int = 60,
    object_size: int = 100,
    backends: tuple[str, ...] = ("serial", "threaded"),
    seed: int = 0,
) -> ExperimentResult:
    """Beyond the paper: real multi-core scaling of N sharded groups.

    Every other harness measures *simulated* time — the virtual clock
    advances identically however long the host takes.  This one runs
    the exact same uniform YCSB-A trace through a :class:`ShardedCluster`
    once per execution backend (:mod:`repro.server.execution`) and
    measures **wall-clock** seconds: under ``"threaded"`` each shard's
    one-C-call batch ecall runs on a worker pool with the GIL released,
    so on a multi-core host the shards' crypto genuinely overlaps.

    The determinism contract is asserted, not assumed: per-shard audit
    logs are digested and must be byte-identical across backends, and
    every backend's merged verdict must be fork-linearizable.  The
    speedup ratio is only meaningful on a multi-core runner — callers
    (bench/CI) gate on ``os.cpu_count()``.
    """
    import hashlib as _hashlib
    import time as _time

    from repro.net.latency import LatencyModel
    from repro.sharding import ShardRouter, ShardedCluster
    from repro.workload.ycsb import WORKLOAD_A, WorkloadGenerator

    workload = WORKLOAD_A.with_params(
        distribution="uniform", value_size=object_size
    )
    series: dict[str, list] = {
        "backend": [],
        "wall_seconds": [],
        "simulated_seconds": [],
        "operations_completed": [],
        "violations": [],
        "audit_digest": [],
        "streaming_parity": [],
    }
    metrics_snapshot: dict = {}
    for backend in backends:
        cluster = ShardedCluster(
            shards=shards,
            clients=clients,
            seed=seed,
            execution=backend,
            latency=LatencyModel(
                propagation=100e-6, jitter_fraction=0.2, seed=seed
            ),
        )
        router = ShardRouter(cluster)
        # same seed per backend: identical request streams, so any output
        # difference is the backend's fault, not the workload's
        generator = WorkloadGenerator(workload, seed=seed)
        streams = {
            client_id: [
                generator.next_operations() for _ in range(requests_per_client)
            ]
            for client_id in cluster.client_ids
        }

        def start(client_id: int) -> None:
            def pump(_result=None) -> None:
                stream = streams[client_id]
                if not stream:
                    return
                request = stream.pop(0)
                if len(request) == 1:
                    router.submit(client_id, request[0], pump)
                else:
                    router.submit_many(client_id, request, pump)

            pump()

        for client_id in cluster.client_ids:
            start(client_id)
        began = _time.perf_counter()
        cluster.run()
        wall = _time.perf_counter() - began
        verdict = router.verdict()
        digest = _hashlib.sha256()
        for shard_id in sorted(cluster.shard_ids):
            for log in cluster.audit_logs(shard_id):
                for record in log:
                    digest.update(record.sequence.to_bytes(8, "big"))
                    digest.update(record.client_id.to_bytes(8, "big"))
                    digest.update(record.operation)
                    digest.update(record.result)
                    digest.update(record.chain)
        # parity needs live enclaves, so check before the backend shuts down
        parity = _streaming_parity(cluster, router, verdict)
        metrics_snapshot = cluster.metrics()
        cluster.execution.shutdown()
        series["backend"].append(backend)
        series["wall_seconds"].append(wall)
        series["simulated_seconds"].append(cluster.sim.now)
        series["operations_completed"].append(
            cluster.stats.operations_completed
        )
        series["violations"].append(len(verdict.violations))
        series["audit_digest"].append(digest.hexdigest())
        series["streaming_parity"].append(parity)
    wall_by_backend = dict(zip(series["backend"], series["wall_seconds"]))
    speedup = 0.0
    if "serial" in wall_by_backend and "threaded" in wall_by_backend:
        threaded = wall_by_backend["threaded"]
        speedup = wall_by_backend["serial"] / threaded if threaded else 0.0
    return ExperimentResult(
        experiment="parallel_wallclock",
        description=(
            f"Wall-clock scaling of {shards} sharded groups across "
            "execution backends (uniform YCSB-A)"
        ),
        parameters={
            "shards": shards,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "object_size": object_size,
            "backends": list(backends),
            "seed": seed,
        },
        series=series,
        ratios={
            "wall_seconds_by_backend": wall_by_backend,
            "threaded_speedup": speedup,
            "identical_digests": len(set(series["audit_digest"])) <= 1,
            "zero_violations": not any(series["violations"]),
            "streaming_parity": all(series["streaming_parity"]),
        },
        paper_expectation={
            # not a paper figure: the ISSUE's acceptance bar for this PR
            "identical_digests": True,
            "zero_violations": True,
            "streaming_parity": True,
        },
        metrics=metrics_snapshot,
    )


# ----------------------------------------------------------------- Sec 6.5


def run_sec65_tmc_comparison(
    *,
    client_counts: list[int] | None = None,
    costs: CostModel | None = None,
    duration: float | None = None,
) -> ExperimentResult:
    """Sec. 6.5: TMC throughput vs. LCM-with-batching speedup band."""
    counts = client_counts or FIG56_CLIENT_COUNTS
    tmc = [
        measure_throughput(
            "sgx_tmc", clients=n, costs=costs, duration=duration
        ).ops_per_second
        for n in counts
    ]
    lcm_batch = [
        measure_throughput(
            "lcm_batch", clients=n, costs=costs, duration=duration
        ).ops_per_second
        for n in counts
    ]
    speedups = [l / t for l, t in zip(lcm_batch, tmc)]
    return ExperimentResult(
        experiment="sec65",
        description="Trusted monotonic counter performance impact",
        parameters={"clients": counts},
        series={"clients": counts, "sgx_tmc": tmc, "lcm_batch": lcm_batch},
        ratios={
            "tmc_mean_ops": sum(tmc) / len(tmc),
            "tmc_flat": max(tmc) <= 1.5 * min(tmc),
            "speedup_band": _band(speedups),
        },
        paper_expectation={
            "tmc_mean_ops": 12.0,
            "tmc_flat": True,
            "speedup_band": (96.0, 2063.0),
        },
    )
