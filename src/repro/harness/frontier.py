"""Open-loop latency–throughput frontier harness.

The figure-style experiments drive the cluster *closed-loop*: each
client submits its next operation only after the previous reply, so the
system settles wherever the feedback loop puts it and saturation is
never actually observed.  The frontier asks the converse question — fix
an **offered** load, measure what the cluster achieves and at what
latency — and sweeps offered rate × shard count to map the knee of the
curve.

Arrivals are an open-loop Poisson process on the simulator's virtual
clock: every arrival is scheduled up front from a seeded exponential
interarrival stream, independent of completions, so when the offered
rate exceeds capacity the queues genuinely build (first at the shard
dispatchers, then at the per-client protocol machines) instead of the
load generator politely backing off.  Per-operation latency
(submit → completion on the virtual clock) comes from the router's
``router.op_latency`` quantile histograms, merged exactly across
(shard, op) label sets; queue pressure and balance come from the
cluster's ``dispatch.queue_depth``/``queue_depth_peak`` and
``cluster.load_skew`` gauges.

Backends: on the virtual clock ``threaded`` and ``process`` are
*defined* to match ``serial`` (they only move wall-clock work), so the
frontier compares ``serial`` against the pipelined backend's
``virtual_split`` cost model — the measured ``state_seal`` share of the
batch ecall taken off the delivery critical path, which raises the
per-shard saturation cadence by ``1 / (1 - seal_share)``.

Every (backend, shards, rate, seed) cell is persisted, saturation is
detected per cell (achieved throughput falls measurably below offered
*and* the dispatcher queues show real pressure), and zero protocol
violations below saturation is asserted by the CLI's ``--quick`` smoke.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

from repro.kvstore import get, put
from repro.net.latency import LatencyModel
from repro.net.simulation import ENCLAVE_SERVICE_INTERVAL
from repro.obs.metrics import QuantileHistogram
from repro.server.execution import (
    DEFAULT_SEAL_SHARE,
    PipelinedBackend,
    make_execution_backend,
)
from repro.sharding import ShardRouter, ShardedCluster

#: offered-vs-achieved shortfall that counts as saturation (with queue
#: corroboration): 5% lets sub-saturation cells absorb drain-tail noise
SATURATION_SHORTFALL = 0.95

#: dispatcher queue pressure (peak depth vs batch limit) that
#: corroborates a throughput shortfall as genuine saturation
SATURATION_QUEUE_FACTOR = 2

#: run-overrun corroboration: arrivals stop at ``duration``, so a run
#: that needs >10% extra virtual time to drain was accumulating backlog
#: (under per-client sequencing the backlog sits in the client protocol
#: machines, which the dispatcher gauges cannot see)
SATURATION_OVERRUN = 1.1


@dataclass
class FrontierCell:
    """One measured (backend, shards, rate, seed) configuration."""

    backend: str
    shards: int
    offered_rate: float
    seed: int
    duration: float
    offered_ops: int
    completed_ops: int
    elapsed: float
    achieved_tps: float
    saturated: bool
    p50: float
    p95: float
    p99: float
    mean_latency: float
    queue_depth_peak: int
    load_skew: float
    violations: int
    seals_deferred: int
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


def _make_backend(name: str, seal_share: float | None):
    """The frontier's ``pipelined`` arm measures the virtual-split cost
    model (that is the experiment); every other name resolves normally."""
    if name == "pipelined":
        return PipelinedBackend(virtual_split=True, seal_share=seal_share)
    return make_execution_backend(name)


def run_cell(
    backend: str,
    shards: int,
    offered_rate: float,
    *,
    seed: int = 0,
    duration: float = 0.25,
    clients_per_shard: int = 6,
    batch_limit: int = 16,
    key_space: int = 64,
    seal_share: float | None = None,
) -> FrontierCell:
    """Measure one open-loop configuration and return its cell.

    The client links run at LAN-fast latency (20 µs propagation) so the
    shard dispatchers — not the links — are the bottleneck under load;
    ``clients_per_shard`` keeps enough independent protocol machines
    that per-client sequencing does not cap the offered rate first.
    """
    # stable across interpreters (str hash() is salted per process): the
    # same cell always replays the same arrival stream and network jitter
    tag = f"{backend}|{shards}|{offered_rate:.6g}|{seed}".encode()
    derived = int.from_bytes(
        hashlib.sha256(tag).digest()[:4], "big"
    ) & 0x7FFFFFFF
    execution = _make_backend(backend, seal_share)
    cluster = ShardedCluster(
        shards=shards,
        clients=clients_per_shard * shards,
        seed=derived,
        batch_limit=batch_limit,
        latency=LatencyModel(
            propagation=20e-6, jitter_fraction=0.2, seed=derived
        ),
        execution=execution,
    )
    router = ShardRouter(cluster)
    rng = random.Random(derived)
    client_ids = list(cluster.client_ids)
    state = {"completed": 0}

    def complete(_result) -> None:
        state["completed"] += 1

    # schedule the whole arrival process up front: open loop by
    # construction — completions cannot modulate the offered load
    offered = 0
    at = 0.0
    while True:
        at += rng.expovariate(offered_rate)
        if at >= duration:
            break
        client_id = client_ids[rng.randrange(len(client_ids))]
        key = f"fk-{rng.randrange(key_space)}"
        operation = (
            put(key, f"v{offered}") if rng.random() < 0.5 else get(key)
        )

        def arrive(client_id=client_id, operation=operation) -> None:
            router.submit(client_id, operation, complete)

        cluster.sim.schedule_at(at, arrive, label="frontier-arrival")
        offered += 1

    cluster.run()
    elapsed = cluster.sim.now
    completed = state["completed"]
    achieved = completed / elapsed if elapsed > 0 else 0.0

    snapshot = cluster.metrics()
    gauges = snapshot.get("gauges", {})
    queue_peak = max(
        (
            int(value)
            for key, value in gauges.items()
            if key.startswith("dispatch.queue_depth_peak")
        ),
        default=0,
    )
    load_skew = float(gauges.get("cluster.load_skew", 0.0))
    seals_deferred = int(gauges.get("dispatch.seals_deferred", 0))

    merged = QuantileHistogram()
    for histogram in cluster.metrics_registry.quantiles_named(
        "router.op_latency"
    ):
        merged.merge_from(histogram)

    violations = sum(
        1
        for shard_id in cluster.verdict_shard_ids
        if cluster.shard_violation(shard_id) is not None
    )
    saturated = achieved < SATURATION_SHORTFALL * offered_rate and (
        queue_peak > SATURATION_QUEUE_FACTOR * batch_limit
        or elapsed > SATURATION_OVERRUN * duration
    )
    cell = FrontierCell(
        backend=backend,
        shards=shards,
        offered_rate=offered_rate,
        seed=seed,
        duration=duration,
        offered_ops=offered,
        completed_ops=completed,
        elapsed=elapsed,
        achieved_tps=achieved,
        saturated=saturated,
        p50=merged.quantile(0.50),
        p95=merged.quantile(0.95),
        p99=merged.quantile(0.99),
        mean_latency=merged.mean,
        queue_depth_peak=queue_peak,
        load_skew=load_skew,
        violations=violations,
        seals_deferred=seals_deferred,
        extra={
            "batch_limit": batch_limit,
            "clients": clients_per_shard * shards,
            "batches": sum(
                cluster.stats.per_shard_batches.values()
            ),
        },
    )
    cluster.execution.shutdown()
    return cell


def shard_capacity(shards: int) -> float:
    """Nominal serial capacity: one op per service interval per shard."""
    return shards / ENCLAVE_SERVICE_INTERVAL


def default_rates(shards: int) -> list[float]:
    """An offered-rate ladder bracketing the nominal capacity."""
    capacity = shard_capacity(shards)
    return [capacity * f for f in (0.25, 0.5, 0.75, 0.9, 1.1, 1.3, 1.5)]


@dataclass
class FrontierResult:
    """The full sweep: every cell plus per-arm saturation summaries."""

    cells: list[FrontierCell]
    saturation: dict[str, dict[int, float]]

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells": [cell.as_dict() for cell in self.cells],
            "saturation": {
                backend: {str(shards): tps for shards, tps in arms.items()}
                for backend, arms in self.saturation.items()
            },
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def saturation_throughput(cells: Sequence[FrontierCell]) -> float:
    """The arm's saturation throughput: the best achieved rate over the
    sweep (below the knee achieved tracks offered; past it the extra
    offered load only grows queues, so the max is the plateau)."""
    return max((cell.achieved_tps for cell in cells), default=0.0)


def run_frontier(
    *,
    backends: Sequence[str] = ("serial", "pipelined"),
    shard_counts: Sequence[int] = (1, 2, 4),
    rates: Sequence[float] | None = None,
    seeds: Sequence[int] = (0,),
    duration: float = 0.25,
    clients_per_shard: int = 6,
    batch_limit: int = 16,
    seal_share: float | None = None,
) -> FrontierResult:
    """Sweep offered rate × shard count × backend × seed.

    Every cell is retained (the persisted matrix is the artifact);
    ``saturation`` summarizes each (backend, shards) arm's plateau.
    """
    cells: list[FrontierCell] = []
    saturation: dict[str, dict[int, float]] = {}
    for backend in backends:
        arms = saturation.setdefault(backend, {})
        for shards in shard_counts:
            rate_ladder = list(rates) if rates else default_rates(shards)
            arm_cells: list[FrontierCell] = []
            for rate in rate_ladder:
                for seed in seeds:
                    cell = run_cell(
                        backend,
                        shards,
                        rate,
                        seed=seed,
                        duration=duration,
                        clients_per_shard=clients_per_shard,
                        batch_limit=batch_limit,
                        seal_share=seal_share,
                    )
                    arm_cells.append(cell)
                    cells.append(cell)
            arms[shards] = saturation_throughput(arm_cells)
    return FrontierResult(cells=cells, saturation=saturation)
