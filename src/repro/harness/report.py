"""Rendering experiment results as paper-style tables.

The benchmark scripts print these tables (one per figure) so the repository
output can be compared line-by-line with the paper's plots, and
EXPERIMENTS.md embeds the same renderings.
"""

from __future__ import annotations

from repro.harness.experiments import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_series_table(result: ExperimentResult, *, x_key: str | None = None) -> str:
    """Render an experiment's series as an aligned text table.

    The first column is the x-axis (``x_key`` or the first series entry);
    the remaining columns are the measured series, one per system.
    """
    keys = list(result.series)
    x = x_key or keys[0]
    columns = [x] + [key for key in keys if key != x]
    rows = len(result.series[x])
    widths = {}
    rendered: dict[str, list[str]] = {}
    for column in columns:
        cells = [_format_value(v) for v in result.series[column]]
        rendered[column] = cells
        widths[column] = max(len(column), *(len(c) for c in cells)) if cells else len(column)
    lines = [f"# {result.experiment}: {result.description}"]
    if result.parameters:
        lines.append(
            "# parameters: "
            + ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        )
    header = "  ".join(column.rjust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in range(rows):
        lines.append(
            "  ".join(rendered[column][row].rjust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _within_band(measured, expected, tolerance: float) -> bool:
    if isinstance(expected, bool):
        return measured == expected
    if isinstance(expected, dict):
        return all(
            _within_band(measured.get(key), value, tolerance)
            for key, value in expected.items()
        )
    if isinstance(expected, tuple):
        low, high = expected
        m_low, m_high = measured if isinstance(measured, tuple) else (measured, measured)
        span = max(abs(low), abs(high), 1e-9)
        return (
            m_low >= low - tolerance * span and m_high <= high + tolerance * span
        )
    span = max(abs(expected), 1e-9)
    return abs(measured - expected) <= tolerance * span


def summarize_bands(result: ExperimentResult, *, tolerance: float = 0.5) -> str:
    """Paper-vs-measured comparison for each published ratio.

    ``tolerance`` is the relative slack applied to the paper's value — the
    reproduction targets shape, not absolute equality (see DESIGN.md
    Sec. 6).
    """
    lines = [f"# {result.experiment}: paper vs. measured"]
    for key, expected in result.paper_expectation.items():
        measured = result.ratios.get(key)
        if measured is None:
            lines.append(f"  {key:32s} paper={expected!r}  measured=MISSING")
            continue
        verdict = "OK" if _within_band(measured, expected, tolerance) else "DIVERGES"
        lines.append(
            f"  {key:32s} paper={_render(expected):24s} "
            f"measured={_render(measured):24s} [{verdict}]"
        )
    return "\n".join(lines)


def _render(value) -> str:
    if isinstance(value, tuple):
        return f"({_format_value(value[0])}, {_format_value(value[1])})"
    if isinstance(value, dict):
        return "{" + ", ".join(f"{k}:{_render(v)}" for k, v in value.items()) + "}"
    return _format_value(value)


def render_metrics_summary(result: ExperimentResult, *, limit: int = 30) -> str:
    """Highlights from the experiment's observability-plane snapshot.

    ``result.metrics`` is one ``ShardedCluster.metrics()`` snapshot (taken
    at the end of the run, or of the last configuration for sweep
    experiments).  The rendering groups counters, gauges, histogram
    summaries and verifier events so EXPERIMENTS.md shows the same surface
    the ``repro metrics`` CLI exports as JSON.
    """
    lines = [f"# {result.experiment}: metrics snapshot"]
    snapshot = result.metrics
    if not snapshot:
        lines.append("  (observability plane disabled for this run)")
        return "\n".join(lines)
    for section in ("counters", "gauges"):
        entries = sorted(snapshot.get(section, {}).items())
        if not entries:
            continue
        lines.append(f"  {section}:")
        for name, value in entries[:limit]:
            lines.append(f"    {name:48s} {_format_value(value)}")
        if len(entries) > limit:
            lines.append(f"    ... {len(entries) - limit} more")
    histograms = sorted(snapshot.get("histograms", {}).items())
    if histograms:
        lines.append("  histograms:")
        for name, summary in histograms[:limit]:
            lines.append(
                f"    {name:48s} count={summary['count']} "
                f"mean={_format_value(summary['mean'])} "
                f"max={_format_value(summary['max'])}"
            )
    events = snapshot.get("events", [])
    verifier_events = [e for e in events if e["name"].startswith("verifier.")]
    lines.append(
        f"  events: {len(events)} total, {len(verifier_events)} from the verifier"
    )
    for event in verifier_events[:limit]:
        fields = ", ".join(
            f"{k}={v}" for k, v in event.items() if k not in ("name", "time")
        )
        lines.append(f"    t={_format_value(event['time'])} {event['name']} {fields}")
    return "\n".join(lines)
