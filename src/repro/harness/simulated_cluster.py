"""The full Fig. 3 architecture under virtual time.

Runs the *real* protocol implementation — AEAD, hash chains, the trusted
context, request batching — over the discrete-event network: every INVOKE
and REPLY is a message on a :class:`~repro.net.channel.Channel` with
latency and jitter, the server collects requests in the bounded batch
queue of Sec. 5.3 and enters the enclave once per batch, and clients are
event-driven :class:`~repro.core.async_client.AsyncLcmClient` machines.

This is the bridge between the functional layer (exact protocol, no time)
and the performance layer (time, abstract cost model): here concurrency,
reordering across clients, and batching effects act on the actual
cryptographic protocol, and the resulting executions can be fed to the
consistency checkers.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.attestation import EpidGroup
from repro.consistency.history import History
from repro.core import Admin, make_lcm_program_factory
from repro.core.async_client import AsyncLcmClient
from repro.core.client import LcmResult
from repro.kvstore import KvsFunctionality
from repro.net.channel import Channel
from repro.net.latency import LatencyModel
from repro.net.simulation import Simulator
from repro.server import ServerHost
from repro.server.dispatch import GroupDispatcher
from repro.server.execution import make_execution_backend
from repro.tee import TeePlatform


class ClusterStats:
    """Counters the cluster keeps while running.

    Batch statistics delegate to the dispatcher's bounded
    :class:`~repro.server.batching.BatchSizeHistogram` (one source, O(1)
    memory over arbitrarily long runs — the old per-batch size list grew
    linearly).
    """

    def __init__(self, dispatcher: GroupDispatcher) -> None:
        self.operations_completed = 0
        self._dispatcher = dispatcher

    @property
    def batches(self) -> int:
        return self._dispatcher.batches

    @property
    def mean_batch_size(self) -> float:
        return self._dispatcher.histogram.mean

    @property
    def max_batch_size(self) -> int:
        return self._dispatcher.histogram.max_size

    @property
    def batch_size_histogram(self) -> dict[int, int]:
        """``{batch size: count}`` — the full (bounded) distribution."""
        return self._dispatcher.histogram.as_dict()


class SimulatedCluster:
    """One server + n clients over a simulated network.

    Parameters
    ----------
    clients:
        Number of clients (ids 1..n).
    batch_limit:
        Bounded batch queue size; batches also flush whenever the enclave
        is idle and requests are pending ("no more client requests
        available", Sec. 5.3).
    latency:
        Network model for both directions (default: LAN with jitter so
        interleavings are non-trivial but reproducible).
    execution:
        Execution-backend name (``"serial"`` | ``"threaded"`` |
        ``"pipelined"`` | ``"process"``) for the batch ecall; ``None``
        defers to ``REPRO_EXEC_BACKEND`` and the serial default.  The
        wire bytes and verdicts are identical under every backend (see
        :mod:`repro.server.execution`).
    """

    def __init__(
        self,
        clients: int = 3,
        *,
        functionality=KvsFunctionality,
        batch_limit: int = 16,
        latency: LatencyModel | None = None,
        audit: bool = True,
        seed: int = 0,
        execution: str | None = None,
    ) -> None:
        self.sim = Simulator()
        self._latency = latency or LatencyModel(
            propagation=200e-6, jitter_fraction=0.3, seed=seed
        )
        group = EpidGroup()
        platform = TeePlatform(group)
        factory = make_lcm_program_factory(functionality, audit=audit)
        self.host = ServerHost(platform, factory)
        admin = Admin(group.verifier(), TeePlatform.expected_measurement(factory))
        self.deployment = admin.bootstrap(
            self.host, client_ids=list(range(1, clients + 1))
        )
        self.history = History()
        self._history_tokens: dict[int, list[int]] = {i: [] for i in range(1, clients + 1)}

        # --- wiring: per-client up/down channels + the shared dispatcher --
        self._up: dict[int, Channel] = {}
        self._down: dict[int, Channel] = {}
        self.execution = make_execution_backend(execution)
        self._pending_seal = None
        if getattr(self.execution, "wants_remote", False):
            self.host.remote_executor = self.execution
        self.dispatcher = GroupDispatcher(
            sim=self.sim,
            send_batch=(
                self._send_batch_deferred
                if getattr(self.execution, "pipelined", False)
                else self.host.send_invoke_batch
            ),
            deliver=self._deliver,
            batch_limit=batch_limit,
            label="enclave-batch",
            execution=self.execution,
            take_seal=self._take_seal,
        )
        self.stats = ClusterStats(self.dispatcher)
        self.clients: dict[int, AsyncLcmClient] = {}

        for client_id in range(1, clients + 1):
            up = Channel(f"c{client_id}->s", sim=self.sim, latency=self._latency)
            down = Channel(f"s->c{client_id}", sim=self.sim, latency=self._latency)
            up.connect(self._make_server_ingress(client_id))
            client = AsyncLcmClient(
                client_id,
                self.deployment.communication_key,
                send=up.send,
            )
            down.connect(client.on_reply)
            self._up[client_id] = up
            self._down[client_id] = down
            self.clients[client_id] = client

    # ------------------------------------------------------------- serving

    def _make_server_ingress(self, client_id: int):
        dispatcher = self.dispatcher

        def ingress(message: bytes) -> None:
            dispatcher.enqueue(client_id, message)

        return ingress

    def _send_batch_deferred(self, batch: list[tuple[int, bytes]]) -> list[bytes]:
        # pipelined backend: same bytes, but the state-seal stage comes
        # back as a handle the dispatcher flushes off the critical path
        replies, self._pending_seal = self.host.send_invoke_batch_deferred(batch)
        return replies

    def _take_seal(self):
        seal, self._pending_seal = self._pending_seal, None
        return seal

    def _deliver(self, client_id: int, reply: bytes) -> None:
        self._down[client_id].send(reply)

    # ------------------------------------------------------------ workload

    def submit(self, client_id: int, operation: Any) -> None:
        """Queue one operation for a client (runs when the sim runs)."""
        token = self.history.invoke(client_id, operation)

        def complete(result: LcmResult) -> None:
            self.history.respond(token, result.result, sequence=result.sequence)
            self.stats.operations_completed += 1

        self.clients[client_id].invoke(operation, complete)

    def run(self, max_events: int | None = None) -> None:
        """Drive the simulation until all submitted work completes."""
        self.sim.run(max_events=max_events)

    def audit_log(self):
        return self.host.enclave.ecall("export_audit_log", None)

    def check_fork_linearizable(self):
        """Validate the execution with the offline checker."""
        from repro.consistency import check_cluster_execution
        from repro.kvstore import KvsFunctionality as Kvs

        return check_cluster_execution(
            [self.audit_log()], self.clients, self.history, Kvs()
        )
