"""Execution trace export/import (JSON lines).

Long-running deployments want to audit executions offline: dump each
completed operation as one JSON line, ship the file to an auditor, and let
the auditor rebuild the history, re-verify the enclave audit chain and run
the fork-linearizability checker — without access to the live system.

Format (one object per line)::

    {"kind": "operation", "op_id": 3, "client_id": 1,
     "operation": ["PUT", "k", "v"], "result": null,
     "invoked_at": 5, "responded_at": 6, "sequence": 3}
    {"kind": "audit", "sequence": 3, "client_id": 1,
     "operation_hex": "...", "result_hex": "...", "chain_hex": "..."}

Bytes fields are hex-encoded; operations/results are stored as their JSON
forms (the canonical serde bytes are reproducible from them).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.consistency.history import History, OperationRecord
from repro.core.context import AuditRecord


def dump_history(history: History, stream: IO[str]) -> int:
    """Write every complete operation as a JSON line; returns the count."""
    count = 0
    for record in history.records():
        stream.write(json.dumps({
            "kind": "operation",
            "op_id": record.op_id,
            "client_id": record.client_id,
            "operation": list(record.operation)
            if isinstance(record.operation, tuple)
            else record.operation,
            "result": record.result,
            "invoked_at": record.invoked_at,
            "responded_at": record.responded_at,
            "sequence": record.sequence,
        }) + "\n")
        count += 1
    return count


def dump_audit_log(log: Iterable[AuditRecord], stream: IO[str]) -> int:
    """Write an enclave audit log as JSON lines; returns the count."""
    count = 0
    for record in log:
        stream.write(json.dumps({
            "kind": "audit",
            "sequence": record.sequence,
            "client_id": record.client_id,
            "operation_hex": record.operation.hex(),
            "result_hex": record.result.hex(),
            "chain_hex": record.chain.hex(),
        }) + "\n")
        count += 1
    return count


def load_trace(stream: IO[str]) -> tuple[list[OperationRecord], list[AuditRecord]]:
    """Parse a trace file back into operation and audit records."""
    operations: list[OperationRecord] = []
    audit: list[AuditRecord] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry["kind"] == "operation":
            operation = entry["operation"]
            operations.append(OperationRecord(
                op_id=entry["op_id"],
                client_id=entry["client_id"],
                operation=tuple(operation) if isinstance(operation, list) else operation,
                result=entry["result"],
                invoked_at=entry["invoked_at"],
                responded_at=entry["responded_at"],
                sequence=entry["sequence"],
            ))
        elif entry["kind"] == "audit":
            audit.append(AuditRecord(
                sequence=entry["sequence"],
                client_id=entry["client_id"],
                operation=bytes.fromhex(entry["operation_hex"]),
                result=bytes.fromhex(entry["result_hex"]),
                chain=bytes.fromhex(entry["chain_hex"]),
            ))
        else:
            raise ValueError(f"unknown trace entry kind {entry['kind']!r}")
    return operations, audit


def verify_trace_file(stream: IO[str]) -> dict:
    """Offline auditor entry point: re-verify a dumped trace.

    Checks the audit chain's internal consistency and that every traced
    operation with a sequence number appears in the audit log with the
    same client, the same operation content and the same result — so a
    single edited character anywhere in the trace fails verification.
    Returns summary statistics.
    """
    from repro import serde
    from repro.core.hashchain import verify_audit_chain

    operations, audit = load_trace(stream)
    verify_audit_chain(audit)
    by_sequence = {record.sequence: record for record in audit}
    matched = 0
    for record in operations:
        if record.sequence is None:
            continue
        audit_record = by_sequence.get(record.sequence)
        if audit_record is None:
            raise ValueError(
                f"operation seq={record.sequence} missing from the audit log"
            )
        if audit_record.client_id != record.client_id:
            raise ValueError(
                f"operation seq={record.sequence} attributed to client "
                f"{audit_record.client_id} in the audit log but "
                f"{record.client_id} in the trace"
            )
        operation_bytes = serde.encode(
            list(record.operation)
            if isinstance(record.operation, tuple)
            else record.operation
        )
        if operation_bytes != audit_record.operation:
            raise ValueError(
                f"operation seq={record.sequence} content differs between "
                "the trace and the audit log"
            )
        if serde.encode(record.result) != audit_record.result:
            raise ValueError(
                f"operation seq={record.sequence} result differs between "
                "the trace and the audit log"
            )
        matched += 1
    return {
        "operations": len(operations),
        "audit_records": len(audit),
        "matched": matched,
    }
