"""Stateful application functionalities executed inside the enclave.

The system model (Sec. 2.1) abstracts the application as a functionality
``F`` that "defines a response and a state change for every operation":
``exec_F(s, o) -> (r, s')``.  LCM is generic over ``F``; the paper's demo
application is a key-value store with GET/PUT/DEL (Sec. 5.3).

- :mod:`repro.kvstore.functionality` — the ``F`` contract and helpers;
- :mod:`repro.kvstore.kvs` — the paper's KVS;
- :mod:`repro.kvstore.counter` — a minimal counter ``F`` used in tests.
"""

from repro.kvstore.counter import CounterFunctionality
from repro.kvstore.functionality import (
    Functionality,
    Operation,
    txn_abort,
    txn_commit,
    txn_decide_many,
    txn_prepare,
    txn_prepare_many,
)
from repro.kvstore.kvs import KvsFunctionality, delete, get, put

__all__ = [
    "Functionality",
    "Operation",
    "KvsFunctionality",
    "CounterFunctionality",
    "get",
    "put",
    "delete",
    "txn_prepare",
    "txn_prepare_many",
    "txn_commit",
    "txn_abort",
    "txn_decide_many",
]
