"""A minimal counter functionality for tests and examples.

Operations:

- ``("INC",)``      -> new counter value
- ``("ADD", n)``    -> new counter value
- ``("READ",)``     -> current value

Small state + obvious semantics make this the easiest ``F`` for checking
protocol-level properties (hash chains, stability, recovery) without KVS
noise.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.kvs import UnknownOperation

INC = "INC"
ADD = "ADD"
READ = "READ"


class CounterFunctionality:
    """An integer register supporting increment/add/read."""

    def initial_state(self) -> int:
        return 0

    def apply(self, state: int, operation: Any) -> tuple[Any, int]:
        if not isinstance(operation, (tuple, list)) or not operation:
            raise UnknownOperation(f"malformed operation: {operation!r}")
        verb = operation[0]
        if verb == INC:
            return state + 1, state + 1
        if verb == ADD:
            (_, amount) = operation
            return state + amount, state + amount
        if verb == READ:
            return state, state
        raise UnknownOperation(f"unknown verb {verb!r}")
