"""A SUNDR-style file store functionality.

Fork-linearizability was introduced for untrusted *file storage* (SUNDR,
Mazières & Shasha — the line of work LCM descends from, Sec. 7).  This
functionality demonstrates LCM's generality beyond the flat KVS: a
hierarchical namespace with directories, file writes and listings, all
running unchanged inside the trusted context.

Operations (all paths are ``/``-separated, rooted at ``/``):

- ``("MKDIR", path)``            -> True, or False if it already exists
- ``("WRITE", path, data)``      -> previous content or None (creates file)
- ``("READ", path)``             -> content or None
- ``("LIST", path)``             -> sorted child names, or None if no dir
- ``("REMOVE", path)``           -> True if something was removed
- ``("STAT", path)``             -> "file" | "dir" | None

State is a dict mapping absolute paths to either the string ``"<dir>"``
marker or file content; parents are created implicitly for writes, like a
typical object-store façade.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.kvs import UnknownOperation

_DIR_MARKER = "<dir>"

MKDIR = "MKDIR"
WRITE = "WRITE"
READ = "READ"
LIST = "LIST"
REMOVE = "REMOVE"
STAT = "STAT"


def _normalize(path: str) -> str:
    parts = [part for part in path.split("/") if part]
    return "/" + "/".join(parts)


def _parents(path: str) -> list[str]:
    parts = [part for part in path.split("/") if part]
    return ["/" + "/".join(parts[:depth]) for depth in range(1, len(parts))]


def mkdir(path: str) -> tuple:
    return (MKDIR, path)


def write(path: str, data: str) -> tuple:
    return (WRITE, path, data)


def read(path: str) -> tuple:
    return (READ, path)


def listdir(path: str) -> tuple:
    return (LIST, path)


def remove(path: str) -> tuple:
    return (REMOVE, path)


def stat(path: str) -> tuple:
    return (STAT, path)


class FileStoreFunctionality:
    """Hierarchical file store as a deterministic state machine."""

    def initial_state(self) -> dict:
        return {"/": _DIR_MARKER}

    def apply(self, state: dict, operation: Any) -> tuple[Any, dict]:
        if not isinstance(operation, (tuple, list)) or not operation:
            raise UnknownOperation(f"malformed operation: {operation!r}")
        verb = operation[0]
        if verb == MKDIR:
            return self._mkdir(state, _normalize(operation[1]))
        if verb == WRITE:
            return self._write(state, _normalize(operation[1]), operation[2])
        if verb == READ:
            path = _normalize(operation[1])
            content = state.get(path)
            if content == _DIR_MARKER:
                return None, state
            return content, state
        if verb == LIST:
            return self._list(state, _normalize(operation[1])), state
        if verb == REMOVE:
            return self._remove(state, _normalize(operation[1]))
        if verb == STAT:
            entry = state.get(_normalize(operation[1]))
            if entry is None:
                return None, state
            return ("dir" if entry == _DIR_MARKER else "file"), state
        raise UnknownOperation(f"unknown verb {verb!r}")

    # ------------------------------------------------------------- helpers

    def _mkdir(self, state: dict, path: str) -> tuple[bool, dict]:
        if path in state:
            return False, state
        next_state = dict(state)
        for parent in _parents(path):
            next_state.setdefault(parent, _DIR_MARKER)
        next_state[path] = _DIR_MARKER
        return True, next_state

    def _write(self, state: dict, path: str, data: str) -> tuple[Any, dict]:
        if state.get(path) == _DIR_MARKER:
            return None, state  # refuse to overwrite a directory
        next_state = dict(state)
        for parent in _parents(path):
            next_state.setdefault(parent, _DIR_MARKER)
        previous = next_state.get(path)
        next_state[path] = data
        return previous, next_state

    def _list(self, state: dict, path: str) -> list[str] | None:
        if state.get(path) != _DIR_MARKER:
            return None
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for entry in state:
            if entry != path and entry.startswith(prefix):
                remainder = entry[len(prefix):]
                children.add(remainder.split("/")[0])
        return sorted(children)

    def _remove(self, state: dict, path: str) -> tuple[bool, dict]:
        if path == "/":
            return False, state
        if path not in state:
            return False, state
        prefix = path + "/"
        next_state = {
            entry: value
            for entry, value in state.items()
            if entry != path and not entry.startswith(prefix)
        }
        return True, next_state
