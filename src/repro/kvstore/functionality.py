"""The functionality contract ``F`` (Sec. 2.1).

A functionality is deterministic state-machine logic: given a state and an
operation it produces a result and a successor state.  Determinism is *not*
required by LCM (unlike 2-phase-commit TMC schemes, Sec. 3.1 — a key selling
point of the protocol), but the bundled functionalities happen to be
deterministic, which keeps tests simple.

Operations and states must be canonically serializable
(:mod:`repro.serde`), because the trusted context hashes operations into the
chain and seals states to stable storage.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro import serde

#: An operation is any serde-encodable value; the bundled functionalities
#: use (verb, *args) tuples.
Operation = Any

#: Protocol-level key-range handoff verbs (elastic resharding).  The
#: trusted context builds these operations itself during an attested
#: handoff (never from client INVOKEs) and sequences them into the hash
#: chain, so the offline checkers replay them through ``apply`` like any
#: other operation.  A functionality that supports handoff implements
#: both verbs; one that does not simply rejects them and the handoff
#: fails cleanly before any state moves.
#:
#: ``(HANDOFF_EXPORT_VERB, [[lo, hi], ...])``
#:     Remove every key whose :func:`~repro.crypto.hashing.ring_point`
#:     falls in one of the half-open ``[lo, hi)`` ring intervals; the
#:     result is the removed items as a sorted ``[[key, value], ...]``
#:     list.
#: ``(HANDOFF_IMPORT_VERB, [[key, value], ...])``
#:     Install the items; the result is the number installed.
HANDOFF_EXPORT_VERB = "__LCM_EXPORT_RANGE__"
HANDOFF_IMPORT_VERB = "__LCM_IMPORT_RANGE__"


@runtime_checkable
class Functionality(Protocol):
    """State-machine interface executed by the trusted context."""

    def initial_state(self) -> Any:
        """Return ``s0``."""
        ...

    def apply(self, state: Any, operation: Operation) -> tuple[Any, Any]:
        """``exec_F``: return ``(result, next_state)``.

        Implementations must not mutate ``state`` in place — the trusted
        context relies on value semantics when it seals snapshots.  In
        particular, the per-operation seal caches the encrypted state
        section by object identity: returning the same object after an
        in-place mutation persists the *pre-mutation* state, which a later
        restore silently resurrects.  Audit mode (``audit=True``) detects
        such violations and raises; production mode trusts this contract
        for speed.  Read-modify-write operations must copy
        (``next_state = dict(state)``), as the bundled functionalities do.
        """
        ...


def encode_operation(operation: Operation) -> bytes:
    """Canonical bytes of an operation (hashed into the chain as ``o``)."""
    return serde.encode(operation)


def decode_operation(data: bytes) -> Operation:
    return serde.decode(data)


def encode_state(state: Any) -> bytes:
    """Canonical bytes of a service state (sealed as part of the blob)."""
    return serde.encode(state)


def decode_state(data: bytes) -> Any:
    return serde.decode(data)
