"""The functionality contract ``F`` (Sec. 2.1).

A functionality is deterministic state-machine logic: given a state and an
operation it produces a result and a successor state.  Determinism is *not*
required by LCM (unlike 2-phase-commit TMC schemes, Sec. 3.1 — a key selling
point of the protocol), but the bundled functionalities happen to be
deterministic, which keeps tests simple.

Operations and states must be canonically serializable
(:mod:`repro.serde`), because the trusted context hashes operations into the
chain and seals states to stable storage.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro import serde

#: An operation is any serde-encodable value; the bundled functionalities
#: use (verb, *args) tuples.
Operation = Any

#: Protocol-level key-range handoff verbs (elastic resharding).  The
#: trusted context builds these operations itself during an attested
#: handoff (never from client INVOKEs) and sequences them into the hash
#: chain, so the offline checkers replay them through ``apply`` like any
#: other operation.  A functionality that supports handoff implements
#: both verbs; one that does not simply rejects them and the handoff
#: fails cleanly before any state moves.
#:
#: ``(HANDOFF_EXPORT_VERB, [[lo, hi], ...])``
#:     Remove every key whose :func:`~repro.crypto.hashing.ring_point`
#:     falls in one of the half-open ``[lo, hi)`` ring intervals; the
#:     result is the removed items as a sorted ``[[key, value], ...]``
#:     list.
#: ``(HANDOFF_IMPORT_VERB, [[key, value], ...])``
#:     Install the items; the result is the number installed.
HANDOFF_EXPORT_VERB = "__LCM_EXPORT_RANGE__"
HANDOFF_IMPORT_VERB = "__LCM_IMPORT_RANGE__"

#: Cross-shard transaction verbs (coordinator/participant lifecycle).
#: Unlike the handoff verbs these *are* ordinary client operations: the
#: transaction coordinator (the shard router, acting for the client)
#: submits them through the client's per-shard Alg. 1 machine, so every
#: prepare and every decision is sequenced, hash-chained and sealed like
#: any other operation — tampering with either is caught by the checkers
#: exactly as for a lost PUT.
#:
#: ``(TXN_PREPARE_VERB, txn_id, [[verb, key, value?], ...])``
#:     Phase 1.  Execute the reads, buffer the writes, and lock every
#:     touched key.  Votes ``[TXN_PREPARED, [result, ...]]`` (the per
#:     sub-operation results, computed with earlier writes of the same
#:     transaction visible) when every key is free, or
#:     ``[TXN_CONFLICT, holder_txn_id]`` — with **no** state change —
#:     when any key is already locked by another pending transaction.
#: ``(TXN_COMMIT_VERB, txn_id)``
#:     Phase 2, commit: apply the buffered writes, release the locks.
#:     Replays are idempotent: a commit for an already-committed
#:     transaction answers ``[TXN_ALREADY, "C"]`` without reapplying,
#:     and one for a transaction this state never prepared (e.g. a
#:     decision replayed onto a recovered generation) answers
#:     ``[TXN_UNKNOWN]`` as a no-op.
#: ``(TXN_ABORT_VERB, txn_id)``
#:     Phase 2, abort: discard the buffer, release the locks.  Same
#:     idempotence contract.
#:
#: While a key is locked, single-key GET/PUT/DEL on it answer
#: ``[TXN_LOCKED, holder_txn_id]`` — a deterministic rejection (the
#: router retries) rather than a blocking wait, because ``apply`` is a
#: pure state machine.  Rejecting reads too is what makes the committed
#: transaction atomic for observers: no client can see one shard's half
#: of a transaction while another shard still holds the other half
#: prepared.
TXN_PREPARE_VERB = "__LCM_TXN_PREPARE__"
TXN_COMMIT_VERB = "__LCM_TXN_COMMIT__"
TXN_ABORT_VERB = "__LCM_TXN_ABORT__"

#: Group-commit verbs (Sec. 5.2/5.3 amortisation applied to the
#: transaction path).  Each carries *many* transactions' phase-1
#: prepares (resp. phase-2 decisions) in one sequenced, hash-chained
#: operation, so a contended boundary costs one sealed ecall per
#: participant instead of one per transaction.  Entries execute
#: atomically *per entry*, in list order, and the result is the list of
#: per-entry results — byte-for-byte the same shapes the single verbs
#: produce, so the offline checkers replay a grouped operation as the
#: equivalent sequence of single ones.
#:
#: ``(TXN_PREPARE_MANY_VERB, [[txn_id, [[verb, key, value?], ...]], ...])``
#:     Result: ``[vote, ...]`` — one ``[TXN_PREPARED, results]`` /
#:     ``[TXN_CONFLICT, holder]`` / ``[TXN_WAITING, holder]`` per entry.
#: ``(TXN_DECIDE_MANY_VERB, [[txn_id, "C"|"A"], ...])``
#:     Result: ``[ack, ...]`` — one ``[TXN_COMMITTED]`` etc. per entry;
#:     an ack may carry a second element listing waiter transactions the
#:     released locks resolved (see ``TXN_WAITING``).
TXN_PREPARE_MANY_VERB = "__LCM_TXN_PREPARE_MANY__"
TXN_DECIDE_MANY_VERB = "__LCM_TXN_DECIDE_MANY__"

#: Result markers (list heads) shared by the participant functionality,
#: the coordinator and the offline transaction checker.
TXN_PREPARED = "__LCM_TXN_PREPARED__"
TXN_CONFLICT = "__LCM_TXN_CONFLICT__"
TXN_COMMITTED = "__LCM_TXN_COMMITTED__"
TXN_ABORTED = "__LCM_TXN_ABORTED__"
TXN_ALREADY = "__LCM_TXN_ALREADY__"
TXN_UNKNOWN = "__LCM_TXN_UNKNOWN__"
TXN_LOCKED = "__LCM_TXN_LOCKED__"
#: Grouped-prepare vote: the transaction hit a locked key and was queued
#: in the shard's bounded FIFO waiter queue instead of rejecting.  The
#: coordinator treats it as a vote still outstanding: when the holder's
#: decision releases the lock, the participant re-runs the queued
#: prepare and reports the real vote inside the decision ack's resolved
#: list (``[TXN_COMMITTED, [[waiter_txn_id, vote], ...]]``).  Deadlock
#: is avoided deterministically: a transaction only ever waits behind a
#: holder with a *smaller* txn id, so every waits-for chain strictly
#: decreases and must terminate.  Only grouped prepares queue — the
#: single-verb path keeps its historical reject-on-conflict bytes.
TXN_WAITING = "__LCM_TXN_WAITING__"
#: Deterministic rejection of any single-key operation naming a key in
#: the reserved ``__LCM_TXN_`` namespace — the transaction bookkeeping
#: must be unreachable through the ordinary data path (a client write
#: there would corrupt the lock table every other check parses).
TXN_RESERVED = "__LCM_TXN_RESERVED__"


def txn_prepare(txn_id: str, operations: list) -> tuple:
    """Build a participant PREPARE operation from ``(verb, key[, value])``
    sub-operations (the coordinator's phase-1 message)."""
    return (TXN_PREPARE_VERB, txn_id, [list(op) for op in operations])


def txn_commit(txn_id: str) -> tuple:
    """Build a participant COMMIT decision."""
    return (TXN_COMMIT_VERB, txn_id)


def txn_abort(txn_id: str) -> tuple:
    """Build a participant ABORT decision."""
    return (TXN_ABORT_VERB, txn_id)


def txn_prepare_many(entries: list) -> tuple:
    """Build a grouped PREPARE from ``(txn_id, sub_ops)`` entries — one
    sealed operation carrying every buffered prepare for a participant."""
    return (
        TXN_PREPARE_MANY_VERB,
        [[txn_id, [list(op) for op in sub_ops]] for txn_id, sub_ops in entries],
    )


def txn_decide_many(entries: list) -> tuple:
    """Build a grouped decision from ``(txn_id, "C"|"A")`` entries."""
    return (
        TXN_DECIDE_MANY_VERB,
        [[txn_id, decision] for txn_id, decision in entries],
    )


def parse_txn_operation(operation: Any) -> tuple[str, str, Any] | None:
    """Decompose a transaction operation into ``(kind, txn_id, payload)``.

    ``kind`` is ``"prepare"`` / ``"commit"`` / ``"abort"``; ``payload``
    is the sub-operation list for prepares and ``None`` for decisions.
    Returns ``None`` for anything that is not a transaction operation —
    the one parser shared by the coordinator, the dispatcher boundary
    logic and the offline checker, so the wire shape cannot drift.
    """
    if not isinstance(operation, (tuple, list)) or not operation:
        return None
    verb = operation[0]
    if verb == TXN_PREPARE_VERB and len(operation) == 3:
        return ("prepare", operation[1], operation[2])
    if verb == TXN_COMMIT_VERB and len(operation) == 2:
        return ("commit", operation[1], None)
    if verb == TXN_ABORT_VERB and len(operation) == 2:
        return ("abort", operation[1], None)
    return None


def is_txn_decision(operation: Any) -> bool:
    """True for COMMIT/ABORT decisions (single or grouped) — the
    operations that must keep flowing to a fenced shard so its prepared
    transactions can resolve."""
    if not isinstance(operation, (tuple, list)) or len(operation) != 2:
        return False
    verb = operation[0]
    return (
        verb == TXN_COMMIT_VERB
        or verb == TXN_ABORT_VERB
        or verb == TXN_DECIDE_MANY_VERB
    )


def _iter_resolved(entry_result: Any):
    """Waiter votes piggybacked on one decision ack, if any."""
    if (
        isinstance(entry_result, (tuple, list))
        and len(entry_result) == 2
        and (entry_result[0] == TXN_COMMITTED or entry_result[0] == TXN_ABORTED)
        and isinstance(entry_result[1], (tuple, list))
    ):
        for waiter_id, vote in entry_result[1]:
            yield ("resolved", waiter_id, None, vote)


def iter_txn_lifecycle(operation: Any, result: Any):
    """Yield every transaction lifecycle event one sealed operation
    carries, as ``(kind, txn_id, payload, entry_result)`` tuples.

    ``kind`` is ``"prepare"`` / ``"commit"`` / ``"abort"`` for lifecycle
    entries (one per transaction for the grouped verbs) and
    ``"resolved"`` for a waiter vote piggybacked on a decision ack.
    This is the one fold shared by the coordinator's completion demux,
    the streaming checker and the post-mortem checker, so the grouped
    wire shapes cannot drift between them.  Yields nothing for
    non-transaction operations.
    """
    if not isinstance(operation, (tuple, list)) or not operation:
        return
    verb = operation[0]
    if verb == TXN_PREPARE_MANY_VERB and len(operation) == 2:
        entry_results = result if isinstance(result, (tuple, list)) else ()
        for index, entry in enumerate(operation[1]):
            entry_result = (
                entry_results[index] if index < len(entry_results) else None
            )
            yield ("prepare", entry[0], entry[1], entry_result)
        return
    if verb == TXN_DECIDE_MANY_VERB and len(operation) == 2:
        entry_results = result if isinstance(result, (tuple, list)) else ()
        for index, entry in enumerate(operation[1]):
            entry_result = (
                entry_results[index] if index < len(entry_results) else None
            )
            yield (
                "commit" if entry[1] == "C" else "abort",
                entry[0],
                None,
                entry_result,
            )
            yield from _iter_resolved(entry_result)
        return
    parsed = parse_txn_operation(operation)
    if parsed is None:
        return
    kind, txn_id, payload = parsed
    yield (kind, txn_id, payload, result)
    if kind != "prepare":
        yield from _iter_resolved(result)


@runtime_checkable
class Functionality(Protocol):
    """State-machine interface executed by the trusted context."""

    def initial_state(self) -> Any:
        """Return ``s0``."""
        ...

    def apply(self, state: Any, operation: Operation) -> tuple[Any, Any]:
        """``exec_F``: return ``(result, next_state)``.

        Implementations must not mutate ``state`` in place — the trusted
        context relies on value semantics when it seals snapshots.  In
        particular, the per-operation seal caches the encrypted state
        section by object identity: returning the same object after an
        in-place mutation persists the *pre-mutation* state, which a later
        restore silently resurrects.  Audit mode (``audit=True``) detects
        such violations and raises; production mode trusts this contract
        for speed.  Read-modify-write operations must copy
        (``next_state = dict(state)``), as the bundled functionalities do.
        """
        ...


def encode_operation(operation: Operation) -> bytes:
    """Canonical bytes of an operation (hashed into the chain as ``o``)."""
    return serde.encode(operation)


def decode_operation(data: bytes) -> Operation:
    return serde.decode(data)


def encode_state(state: Any) -> bytes:
    """Canonical bytes of a service state (sealed as part of the blob)."""
    return serde.encode(state)


def decode_state(data: bytes) -> Any:
    return serde.decode(data)
