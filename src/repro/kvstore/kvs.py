"""The paper's demo application: a flat-namespace key-value store (Sec. 5.3).

Operations are (verb, key[, value]) tuples:

- ``("GET", key)``   -> value or ``None``
- ``("PUT", key, value)`` -> previous value or ``None``
- ``("DEL", key)``   -> deleted value or ``None``

State is a plain ``dict[str, str|bytes]``.  The prototype used
``std::map<std::string, std::string>`` inside the enclave; the memory-cost
consequences of that choice are modelled separately in
:class:`repro.tee.sgx.MapMemoryModel`.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import ring_point
from repro.errors import LCMError
from repro.kvstore.functionality import (
    HANDOFF_EXPORT_VERB,
    HANDOFF_IMPORT_VERB,
    TXN_ABORT_VERB,
    TXN_ABORTED,
    TXN_ALREADY,
    TXN_COMMIT_VERB,
    TXN_COMMITTED,
    TXN_CONFLICT,
    TXN_DECIDE_MANY_VERB,
    TXN_LOCKED,
    TXN_PREPARE_MANY_VERB,
    TXN_PREPARE_VERB,
    TXN_PREPARED,
    TXN_RESERVED,
    TXN_UNKNOWN,
    TXN_WAITING,
)


class UnknownOperation(LCMError):
    """The functionality received a verb it does not implement."""


GET = "GET"
PUT = "PUT"
DEL = "DEL"

#: Transaction bookkeeping lives *inside* the service state under
#: reserved keys, so it is sealed, hash-chained and replayed by the
#: offline checkers exactly like user data — a host that tampers with a
#: prepared buffer or a recorded decision diverges the chain.  The keys
#: exist only while non-empty, which keeps the sealed bytes of a
#: transaction-free state byte-identical to the pre-transaction layout
#: (and the single-key fast path pays only one failed dict lookup).
_TXN_PENDING_KEY = "__LCM_TXN_PENDING__"   # txn_id -> [[locks], [writes]]
_TXN_LOCKS_KEY = "__LCM_TXN_LOCKS__"       # key -> holder txn_id
_TXN_DECIDED_KEY = "__LCM_TXN_DECIDED__"   # txn_id -> "C" | "A" (bounded)
_TXN_WAITERS_KEY = "__LCM_TXN_WAITERS__"   # FIFO [[txn_id, sub_ops], ...]
_TXN_RESERVED_PREFIX = "__LCM_TXN_"

#: Decision-record retention: enough to make every realistic decision
#: replay idempotent without growing the sealed state without bound.
#: Eviction is insertion-ordered, hence deterministic under replay.
#: The window only needs to cover decisions a coordinator may still
#: (re-)send — bounded by its in-flight set, since the durable decision
#: log stops re-driving once the finish record lands.  Retention beyond
#: that just bloats every sealed state re-encryption: at 256 entries the
#: decided map dominated the steady-state seal (~8 KB re-encrypted per
#: operation); 64 keeps a comfortable multiple of any realistic pipeline
#: depth at a quarter of the footprint.
_TXN_DECIDED_MAX = 64

#: Waiter-queue bound: a grouped prepare beyond this depth falls back to
#: the deterministic conflict rejection, so the sealed state stays
#: bounded even under a pathological pile-up on one key.
_TXN_WAITERS_MAX = 64

_DELETED = object()  # prepare-overlay tombstone


def _on_arcs(point: int, arcs) -> bool:
    for lo, hi in arcs:
        if lo <= point < hi:
            return True
    return False


def get(key: str) -> tuple:
    """Build a GET operation."""
    return (GET, key)


def put(key: str, value: Any) -> tuple:
    """Build a PUT operation."""
    return (PUT, key, value)


def delete(key: str) -> tuple:
    """Build a DEL operation."""
    return (DEL, key)


class KvsFunctionality:
    """GET/PUT/DEL over a dictionary state."""

    def initial_state(self) -> dict:
        return {}

    def apply(self, state: dict, operation: Any) -> tuple[Any, dict]:
        if not isinstance(operation, (tuple, list)) or not operation:
            raise UnknownOperation(f"malformed operation: {operation!r}")
        verb = operation[0]
        if verb == GET:
            (_, key) = operation
            if type(key) is str and key.startswith(_TXN_RESERVED_PREFIX):
                return [TXN_RESERVED, key], state
            locks = state.get(_TXN_LOCKS_KEY)
            if locks is not None and key in locks:
                return [TXN_LOCKED, locks[key]], state
            return state.get(key), state
        if verb == PUT:
            (_, key, value) = operation
            if type(key) is str and key.startswith(_TXN_RESERVED_PREFIX):
                return [TXN_RESERVED, key], state
            locks = state.get(_TXN_LOCKS_KEY)
            if locks is not None and key in locks:
                return [TXN_LOCKED, locks[key]], state
            next_state = dict(state)
            previous = next_state.get(key)
            next_state[key] = value
            return previous, next_state
        if verb == DEL:
            (_, key) = operation
            if type(key) is str and key.startswith(_TXN_RESERVED_PREFIX):
                return [TXN_RESERVED, key], state
            locks = state.get(_TXN_LOCKS_KEY)
            if locks is not None and key in locks:
                return [TXN_LOCKED, locks[key]], state
            if key not in state:
                return None, state
            next_state = dict(state)
            previous = next_state.pop(key)
            return previous, next_state
        if verb == TXN_PREPARE_VERB:
            (_, txn_id, sub_ops) = operation
            return self._txn_prepare(state, txn_id, sub_ops)
        if verb == TXN_COMMIT_VERB:
            (_, txn_id) = operation
            return self._txn_decide(state, txn_id, commit=True)
        if verb == TXN_ABORT_VERB:
            (_, txn_id) = operation
            return self._txn_decide(state, txn_id, commit=False)
        if verb == TXN_PREPARE_MANY_VERB:
            (_, entries) = operation
            results = []
            for txn_id, sub_ops in entries:
                result, state = self._txn_prepare(
                    state, txn_id, sub_ops, queue=True
                )
                results.append(result)
            return results, state
        if verb == TXN_DECIDE_MANY_VERB:
            (_, entries) = operation
            results = []
            for txn_id, decision in entries:
                result, state = self._txn_decide(
                    state, txn_id, commit=(decision == "C")
                )
                results.append(result)
            return results, state
        if verb == HANDOFF_EXPORT_VERB:
            # elastic resharding: drop exactly the keys on the reassigned
            # ring arcs; the sorted result is what the peer group installs
            # (and what the offline checkers replay deterministically).
            # Transaction bookkeeping never travels: the reserved keys
            # describe *this* group's pending lifecycle, not user data.
            (_, arcs) = operation
            exported = sorted(
                key
                for key in state
                if not (
                    type(key) is str and key.startswith(_TXN_RESERVED_PREFIX)
                )
                and _on_arcs(ring_point(key), arcs)
            )
            if not exported:
                return [], state
            next_state = dict(state)
            return [[key, next_state.pop(key)] for key in exported], next_state
        if verb == HANDOFF_IMPORT_VERB:
            (_, items) = operation
            if not items:
                return 0, state
            next_state = dict(state)
            for key, value in items:
                next_state[key] = value
            return len(items), next_state
        raise UnknownOperation(f"unknown verb {verb!r}")

    # -------------------------------------------- transaction participant

    def _txn_prepare(
        self, state: dict, txn_id: str, sub_ops: list, *, queue: bool = False
    ) -> tuple[Any, dict]:
        """Phase 1: execute reads, buffer writes, lock every touched key.

        All-or-nothing within the shard: any conflict (a key locked by
        another pending transaction, or a duplicate/decided txn id)
        rejects the whole prepare with **no** state change, so the
        coordinator's abort needs no cleanup here.

        With ``queue=True`` (the grouped-prepare path) a lock conflict
        against an *older* holder parks the prepare in the FIFO waiter
        queue and votes ``[TXN_WAITING, holder]`` instead of rejecting;
        the queued prepare re-runs when a decision releases the lock
        (:meth:`_resolve_waiters`).
        """
        pending = state.get(_TXN_PENDING_KEY)
        decided = state.get(_TXN_DECIDED_KEY)
        if (pending is not None and txn_id in pending) or (
            decided is not None and txn_id in decided
        ):
            # a replayed or recycled txn id: never re-lock — the
            # coordinator treats this as a NO vote and aborts
            return [TXN_CONFLICT, txn_id], state
        waiters = state.get(_TXN_WAITERS_KEY)
        if waiters is not None and any(w[0] == txn_id for w in waiters):
            return [TXN_CONFLICT, txn_id], state
        locks = state.get(_TXN_LOCKS_KEY)
        overlay: dict = {}
        touched: list[str] = []
        writes: list[list] = []
        results: list = []
        for sub in sub_ops:
            sub_verb = sub[0]
            key = sub[1]
            if not isinstance(key, (str, bytes)) or (
                isinstance(key, str) and key.startswith(_TXN_RESERVED_PREFIX)
            ):
                raise UnknownOperation(
                    f"transaction sub-operation key {key!r} is not allowed"
                )
            if locks is not None and key in locks:
                holder = locks[key]
                if queue:
                    return self._txn_enqueue_waiter(
                        state, txn_id, sub_ops, holder
                    )
                return [TXN_CONFLICT, holder], state
            if key not in overlay:
                overlay[key] = state.get(key, _DELETED)
                touched.append(key)
            current = overlay[key]
            current = None if current is _DELETED else current
            if sub_verb == GET:
                results.append(current)
            elif sub_verb == PUT:
                results.append(current)
                overlay[key] = sub[2]
                writes.append([PUT, key, sub[2]])
            elif sub_verb == DEL:
                results.append(current)
                overlay[key] = _DELETED
                writes.append([DEL, key])
            else:
                raise UnknownOperation(
                    f"transaction sub-operation verb {sub_verb!r} is not allowed"
                )
        next_state = dict(state)
        next_pending = dict(pending) if pending is not None else {}
        next_pending[txn_id] = [sorted(touched), writes]
        next_state[_TXN_PENDING_KEY] = next_pending
        next_locks = dict(locks) if locks is not None else {}
        for key in touched:
            next_locks[key] = txn_id
        next_state[_TXN_LOCKS_KEY] = next_locks
        return [TXN_PREPARED, results], next_state

    def _txn_enqueue_waiter(
        self, state: dict, txn_id: str, sub_ops: list, holder: str
    ) -> tuple[Any, dict]:
        """Park a conflicting grouped prepare in the FIFO waiter queue.

        Deterministic deadlock avoidance: a transaction only waits
        behind a holder with a strictly smaller txn id, so waits-for
        chains strictly decrease and terminate (a waiter holds no locks
        of its own, so no local cycle is possible either).  Anything
        else — queue full, duplicate, or waiting would invert the
        order — falls back to the historical conflict rejection.
        """
        waiters = state.get(_TXN_WAITERS_KEY)
        if (
            not txn_id > holder
            or (waiters is not None and len(waiters) >= _TXN_WAITERS_MAX)
        ):
            return [TXN_CONFLICT, holder], state
        next_state = dict(state)
        queue = [list(entry) for entry in waiters] if waiters is not None else []
        queue.append([txn_id, [list(op) for op in sub_ops]])
        next_state[_TXN_WAITERS_KEY] = queue
        return [TXN_WAITING, holder], next_state

    def _resolve_waiters(self, state: dict) -> tuple[dict, list]:
        """Re-run queued prepares after a decision released locks.

        One FIFO pass: a waiter that now prepares takes its locks (and
        its state change carries forward to later waiters in the same
        pass); one still behind an older holder stays queued; one whose
        conflict would invert the id order resolves as a CONFLICT vote.
        Returns the new state and the ``[txn_id, vote]`` list the
        decision ack piggybacks back to the coordinator.
        """
        waiters = state.get(_TXN_WAITERS_KEY)
        if not waiters:
            return state, []
        work = dict(state)
        del work[_TXN_WAITERS_KEY]
        resolved: list = []
        remaining: list = []
        for txn_id, sub_ops in waiters:
            vote, work = self._txn_prepare(work, txn_id, sub_ops)
            if (
                vote[0] == TXN_CONFLICT
                and vote[1] != txn_id
                and txn_id > vote[1]
            ):
                remaining.append([txn_id, sub_ops])
            else:
                resolved.append([txn_id, vote])
        if remaining:
            work[_TXN_WAITERS_KEY] = remaining
        return work, resolved

    def _txn_decide(
        self, state: dict, txn_id: str, *, commit: bool
    ) -> tuple[Any, dict]:
        """Phase 2: resolve a prepared transaction.  Idempotent under
        decision replay (failover re-sends decisions after a recovery):
        a repeated decision answers from the bounded decision record, and
        a decision for a transaction this state never prepared (a replay
        onto a fresh generation) is a pure no-op."""
        pending = state.get(_TXN_PENDING_KEY)
        if pending is None or txn_id not in pending:
            decided = state.get(_TXN_DECIDED_KEY)
            if decided is not None and txn_id in decided:
                return [TXN_ALREADY, decided[txn_id]], state
            waiters = state.get(_TXN_WAITERS_KEY)
            if (
                not commit
                and waiters is not None
                and any(w[0] == txn_id for w in waiters)
            ):
                # the coordinator aborted a transaction still queued
                # behind a lock: dequeue it (it holds nothing) and
                # record the decision so replays answer ALREADY
                next_state = dict(state)
                remaining = [list(w) for w in waiters if w[0] != txn_id]
                if remaining:
                    next_state[_TXN_WAITERS_KEY] = remaining
                else:
                    del next_state[_TXN_WAITERS_KEY]
                next_state[_TXN_DECIDED_KEY] = self._record_decided(
                    state, txn_id, "A"
                )
                return [TXN_ABORTED], next_state
            return [TXN_UNKNOWN], state
        touched, writes = pending[txn_id]
        next_state = dict(state)
        next_pending = dict(pending)
        del next_pending[txn_id]
        if next_pending:
            next_state[_TXN_PENDING_KEY] = next_pending
        else:
            del next_state[_TXN_PENDING_KEY]
        locks = next_state.get(_TXN_LOCKS_KEY)
        next_locks = dict(locks) if locks is not None else {}
        for key in touched:
            if next_locks.get(key) == txn_id:
                del next_locks[key]
        if next_locks:
            next_state[_TXN_LOCKS_KEY] = next_locks
        else:
            next_state.pop(_TXN_LOCKS_KEY, None)
        if commit:
            for write in writes:
                if write[0] == PUT:
                    next_state[write[1]] = write[2]
                else:  # DEL
                    next_state.pop(write[1], None)
        next_state[_TXN_DECIDED_KEY] = self._record_decided(
            state, txn_id, "C" if commit else "A"
        )
        next_state, resolved = self._resolve_waiters(next_state)
        result: list = [TXN_COMMITTED if commit else TXN_ABORTED]
        if resolved:
            # waiter votes ride the decision ack back to the coordinator
            # (an empty list is omitted so transaction-free and
            # waiter-free runs keep their historical result bytes)
            result.append(resolved)
        return result, next_state

    @staticmethod
    def _record_decided(state: dict, txn_id: str, decision: str) -> dict:
        """The bounded, insertion-ordered decision record, updated."""
        decided = state.get(_TXN_DECIDED_KEY)
        next_decided = dict(decided) if decided is not None else {}
        while len(next_decided) >= _TXN_DECIDED_MAX:
            next_decided.pop(next(iter(next_decided)))
        next_decided[txn_id] = decision
        return next_decided

    # ------------------------------------------------- lifecycle queries

    @staticmethod
    def pending_transactions(state: dict) -> dict:
        """``{txn_id: [locked keys]}`` of prepared-but-undecided
        transactions — the trusted context's ``txn_status`` ecall and the
        control plane's quiescence barrier read this."""
        pending = state.get(_TXN_PENDING_KEY)
        if not pending:
            return {}
        return {txn_id: list(entry[0]) for txn_id, entry in pending.items()}

    @staticmethod
    def locked_keys(state: dict) -> dict:
        """``{key: holder txn_id}`` for every currently locked key."""
        locks = state.get(_TXN_LOCKS_KEY)
        return dict(locks) if locks else {}

    @staticmethod
    def waiting_transactions(state: dict) -> list:
        """Queued-waiter txn ids in FIFO order.  A waiter holds no locks
        but its queued prepare still addresses this shard's keys, so the
        control plane's quiescence barrier counts waiters as pending."""
        waiters = state.get(_TXN_WAITERS_KEY)
        if not waiters:
            return []
        return [entry[0] for entry in waiters]
