"""The paper's demo application: a flat-namespace key-value store (Sec. 5.3).

Operations are (verb, key[, value]) tuples:

- ``("GET", key)``   -> value or ``None``
- ``("PUT", key, value)`` -> previous value or ``None``
- ``("DEL", key)``   -> deleted value or ``None``

State is a plain ``dict[str, str|bytes]``.  The prototype used
``std::map<std::string, std::string>`` inside the enclave; the memory-cost
consequences of that choice are modelled separately in
:class:`repro.tee.sgx.MapMemoryModel`.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import ring_point
from repro.errors import LCMError
from repro.kvstore.functionality import HANDOFF_EXPORT_VERB, HANDOFF_IMPORT_VERB


class UnknownOperation(LCMError):
    """The functionality received a verb it does not implement."""


GET = "GET"
PUT = "PUT"
DEL = "DEL"


def _on_arcs(point: int, arcs) -> bool:
    for lo, hi in arcs:
        if lo <= point < hi:
            return True
    return False


def get(key: str) -> tuple:
    """Build a GET operation."""
    return (GET, key)


def put(key: str, value: Any) -> tuple:
    """Build a PUT operation."""
    return (PUT, key, value)


def delete(key: str) -> tuple:
    """Build a DEL operation."""
    return (DEL, key)


class KvsFunctionality:
    """GET/PUT/DEL over a dictionary state."""

    def initial_state(self) -> dict:
        return {}

    def apply(self, state: dict, operation: Any) -> tuple[Any, dict]:
        if not isinstance(operation, (tuple, list)) or not operation:
            raise UnknownOperation(f"malformed operation: {operation!r}")
        verb = operation[0]
        if verb == GET:
            (_, key) = operation
            return state.get(key), state
        if verb == PUT:
            (_, key, value) = operation
            next_state = dict(state)
            previous = next_state.get(key)
            next_state[key] = value
            return previous, next_state
        if verb == DEL:
            (_, key) = operation
            if key not in state:
                return None, state
            next_state = dict(state)
            previous = next_state.pop(key)
            return previous, next_state
        if verb == HANDOFF_EXPORT_VERB:
            # elastic resharding: drop exactly the keys on the reassigned
            # ring arcs; the sorted result is what the peer group installs
            # (and what the offline checkers replay deterministically)
            (_, arcs) = operation
            exported = sorted(
                key for key in state if _on_arcs(ring_point(key), arcs)
            )
            if not exported:
                return [], state
            next_state = dict(state)
            return [[key, next_state.pop(key)] for key in exported], next_state
        if verb == HANDOFF_IMPORT_VERB:
            (_, items) = operation
            if not items:
                return 0, state
            next_state = dict(state)
            for key, value in items:
                next_state[key] = value
            return len(items), next_state
        raise UnknownOperation(f"unknown verb {verb!r}")
