"""Asynchronous-network substrate: discrete-event simulation and channels.

The paper's system model (Sec. 2.1) is an asynchronous distributed system in
which clients and the trusted context exchange messages *through* the
untrusted server; with a correct server the channels are reliable FIFO.  We
reproduce that with:

- :mod:`repro.net.simulation` — a deterministic discrete-event simulator
  (virtual clock + event heap) used both for protocol tests and for the
  performance model behind the paper's figures;
- :mod:`repro.net.channel` — FIFO channels with pluggable adversarial hooks
  (drop / delay / reorder / duplicate), matching the malicious-server
  capabilities of Sec. 2.3;
- :mod:`repro.net.latency` — latency and bandwidth models for the
  evaluation's 1 Gbps LAN setup.
"""

from repro.net.channel import AdversarialChannel, Channel
from repro.net.latency import BandwidthModel, LatencyModel
from repro.net.simulation import Event, Simulator

__all__ = [
    "Simulator",
    "Event",
    "Channel",
    "AdversarialChannel",
    "LatencyModel",
    "BandwidthModel",
]
