"""Point-to-point channels between protocol parties.

With a correct server, client<->T communication is reliable FIFO (Sec. 2.1).
A malicious server "may intercept, modify, reorder, discard, or replay
messages" (Sec. 2.3).  :class:`Channel` provides the former;
:class:`AdversarialChannel` wraps one with programmable interference so the
attack tests exercise the latter without touching protocol code.

Channels are synchronous-delivery by default (deliver immediately on
``send``), or virtual-time if constructed with a simulator + latency model.
Both modes deliver into a callback, mirroring a message handler.
"""

from __future__ import annotations

import collections
from typing import Any, Callable

from repro.errors import SimulationError
from repro.net.latency import LatencyModel
from repro.net.simulation import Simulator

Handler = Callable[[bytes], Any]


class Channel:
    """Reliable FIFO unicast channel delivering bytes to a handler."""

    def __init__(
        self,
        name: str = "",
        *,
        sim: Simulator | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self.name = name
        self._handler: Handler | None = None
        self._sim = sim
        self._latency = latency or LatencyModel()
        self.sent = 0
        self.delivered = 0
        self.bytes_sent = 0
        # FIFO ordering under virtual time: ensure a later send never
        # overtakes an earlier one even with size-dependent delays.
        self._last_delivery_time = 0.0

    def connect(self, handler: Handler) -> None:
        """Attach the receiving endpoint."""
        self._handler = handler

    @property
    def pending(self) -> int:
        """Messages sent but not yet delivered (in flight on the wire).
        The elastic control plane polls this to know when a shard's
        links have drained before a handoff or recovery."""
        return self.sent - self.delivered

    def send(self, message: bytes) -> None:
        if self._handler is None:
            raise SimulationError(f"channel {self.name!r} has no receiver")
        self.sent += 1
        self.bytes_sent += len(message)
        if self._sim is None:
            self.delivered += 1
            self._handler(message)
            return
        delay = self._latency.one_way(len(message))
        deliver_at = max(self._sim.now + delay, self._last_delivery_time)
        self._last_delivery_time = deliver_at

        def _deliver() -> None:
            self.delivered += 1
            self._handler(message)

        self._sim.schedule_at(deliver_at, _deliver, label=f"{self.name}:deliver")


class AdversarialChannel:
    """A channel under the control of a malicious server.

    The interference hook inspects each message and returns an action:

    - ``"pass"``    — deliver normally;
    - ``"drop"``    — silently discard (DoS, out of scope for detection);
    - ``"hold"``    — buffer the message; release later via :meth:`release`;
    - ``"replay"``  — deliver now and also keep a copy for later replay;
    - ``bytes``     — substitute the returned bytes (tampering).
    """

    def __init__(self, inner: Channel) -> None:
        self._inner = inner
        self._interfere: Callable[[bytes], Any] | None = None
        self._held: collections.deque[bytes] = collections.deque()
        self._replay_buffer: list[bytes] = []
        self.dropped = 0
        self.tampered = 0

    def connect(self, handler: Handler) -> None:
        self._inner.connect(handler)

    def set_interference(self, hook: Callable[[bytes], Any] | None) -> None:
        self._interfere = hook

    def send(self, message: bytes) -> None:
        action: Any = "pass" if self._interfere is None else self._interfere(message)
        if action == "pass":
            self._inner.send(message)
        elif action == "drop":
            self.dropped += 1
        elif action == "hold":
            self._held.append(message)
        elif action == "replay":
            self._replay_buffer.append(message)
            self._inner.send(message)
        elif isinstance(action, (bytes, bytearray)):
            self.tampered += 1
            self._inner.send(bytes(action))
        else:
            raise SimulationError(f"unknown interference action: {action!r}")

    def release(self, count: int | None = None) -> int:
        """Deliver held messages (FIFO).  Returns how many were released."""
        released = 0
        while self._held and (count is None or released < count):
            self._inner.send(self._held.popleft())
            released += 1
        return released

    def replay_all(self) -> int:
        """Re-deliver every recorded message (message-replay attack)."""
        for message in self._replay_buffer:
            self._inner.send(message)
        return len(self._replay_buffer)

    @property
    def held_count(self) -> int:
        return len(self._held)
