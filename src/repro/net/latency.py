"""Latency and bandwidth models for the simulated network.

The evaluation testbed (Sec. 6.1) is a 1 Gbps LAN between a desktop server
and a client VM.  Message transfer time is modelled as::

    delay = propagation + size / bandwidth

with optional jitter from a seeded RNG for tests that want non-degenerate
interleavings while staying reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

GIGABIT_PER_SECOND = 125_000_000.0  # bytes/s


@dataclass(frozen=True)
class BandwidthModel:
    """Serialisation delay of a message of a given size."""

    bytes_per_second: float = GIGABIT_PER_SECOND

    def transfer_time(self, size_bytes: int) -> float:
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.bytes_per_second


@dataclass
class LatencyModel:
    """One-way network delay: propagation + serialisation + jitter.

    ``propagation`` defaults to 100 us, a typical same-rack LAN one-way
    delay, giving the ~0.4-0.5 ms request round trips implied by the
    paper's closed-loop throughput curves.
    """

    propagation: float = 100e-6
    bandwidth: BandwidthModel = BandwidthModel()
    jitter_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def one_way(self, size_bytes: int) -> float:
        delay = self.propagation + self.bandwidth.transfer_time(size_bytes)
        if self.jitter_fraction > 0:
            delay *= 1.0 + self._rng.uniform(0, self.jitter_fraction)
        return delay

    def round_trip(self, request_bytes: int, reply_bytes: int) -> float:
        return self.one_way(request_bytes) + self.one_way(reply_bytes)
