"""Deterministic discrete-event simulator.

A minimal but complete event-driven kernel: a virtual clock, a binary-heap
agenda, and stable tie-breaking so runs are fully reproducible.  All
performance experiments (Figs. 4-6) run on top of this clock, which lets the
reproduction measure *simulated* seconds instead of depending on host-machine
speed.

Design notes
------------
- Events scheduled at equal times fire in scheduling order (a monotonically
  increasing tiebreak counter); determinism matters because the consistency
  checkers compare histories across runs.
- Callbacks may schedule further events, including at the current time.
- ``run_until`` processes every event with ``time <= deadline`` and then
  advances the clock to the deadline, which is what a throughput measurement
  window needs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

#: Virtual enclave service time per request in a batch, shared by every
#: cluster runtime that schedules batch delivery on this clock
#: (``SimulatedCluster``, ``ShardedCluster``).  Harness code estimating
#: run length (e.g. a mid-run rebalance point) must reference it rather
#: than hardcode a copy.
ENCLAVE_SERVICE_INTERVAL = 50e-6


class Event:
    """A scheduled callback.  Ordering: (time, tiebreak).

    A plain ``__slots__`` class rather than a dataclass: the agenda heap
    compares events on every push/pop, and the hand-written ``__lt__``
    avoids building two field tuples per comparison on the hot path.
    """

    __slots__ = ("time", "tiebreak", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        tiebreak: int,
        callback: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.tiebreak = tiebreak
        self.callback = callback
        self.label = label
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.tiebreak < other.tiebreak

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, tiebreak={self.tiebreak!r}, "
            f"label={self.label!r}, cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """Virtual-time event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._agenda: list[Event] = []
        self._tiebreak = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._tiebreak), callback, label)
        heapq.heappush(self._agenda, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, label)

    def step(self) -> bool:
        """Process the next event.  Returns False when the agenda is empty."""
        while self._agenda:
            event = heapq.heappop(self._agenda)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Drain the agenda (optionally bounded by an event-count budget)."""
        remaining = max_events
        while self.step():
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return

    def run_until(self, deadline: float) -> None:
        """Process all events up to ``deadline``, then set the clock there."""
        if deadline < self._now:
            raise SimulationError("deadline lies in the past")
        while self._agenda:
            head = self._agenda[0]
            if head.cancelled:
                heapq.heappop(self._agenda)
                continue
            if head.time > deadline:
                break
            self.step()
        self._now = deadline

    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return sum(1 for event in self._agenda if not event.cancelled)


class Resource:
    """A single-server FIFO queue on a :class:`Simulator` (e.g. one CPU core).

    ``acquire_for(duration, then)`` enqueues a job of the given service time
    and invokes ``then`` when the job completes.  This is how the performance
    model expresses "the enclave is single-threaded; requests serialise on
    it" (Sec. 6.4 attributes saturation to exactly this).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0

    def acquire_for(self, duration: float, then: Callable[[], Any]) -> float:
        """Schedule a job; returns its completion (virtual) time."""
        if duration < 0:
            raise SimulationError("negative service time")
        start = max(self._sim.now, self._free_at)
        finish = start + duration
        self._free_at = finish
        self.busy_time += duration
        self.jobs += 1
        self._sim.schedule_at(finish, then, label=f"{self.name}:job")
        return finish

    def utilisation(self, window: float) -> float:
        """Fraction of ``window`` seconds this resource spent busy."""
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)


class WorkerPool:
    """N identical servers with a shared queue (models Stunnel's worker
    processes doing TLS off the critical path, Sec. 6.4)."""

    def __init__(self, sim: Simulator, workers: int, name: str = "") -> None:
        if workers < 1:
            raise SimulationError("worker pool needs at least one worker")
        self._workers = [Resource(sim, f"{name}[{k}]") for k in range(workers)]

    def acquire_for(self, duration: float, then: Callable[[], Any]) -> float:
        worker = min(self._workers, key=lambda w: w._free_at)
        return worker.acquire_for(duration, then)

    @property
    def size(self) -> int:
        return len(self._workers)
