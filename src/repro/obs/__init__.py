"""Unified observability plane: metrics registry, events, request tracing.

Every layer of the sharded runtime used to keep its own ad-hoc stats —
router counters, dispatcher batch histograms, control-plane report
timings, harness series.  This package is the single substrate they all
write to (and the autoscaler / latency-frontier harness read from):

- :mod:`repro.obs.metrics` — counter/gauge/histogram registry stamped
  with the simulator's *virtual* clock, plus a bounded event channel for
  online violation detection;
- :mod:`repro.obs.tracing` — per-request spans across
  router -> dispatcher -> enclave batch -> reply delivery (off by
  default; zero allocations when disabled).
"""

from repro.obs.metrics import (
    Counter,
    Event,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
]
