"""Unified observability plane: metrics registry, events, request tracing.

Every layer of the sharded runtime used to keep its own ad-hoc stats —
router counters, dispatcher batch histograms, control-plane report
timings, harness series.  This package is the single substrate they all
write to (and the autoscaler / latency-frontier harness read from):

- :mod:`repro.obs.metrics` — counter/gauge/histogram registry stamped
  with the simulator's *virtual* clock, plus streaming log-bucket
  quantile histograms (p50/p95/p99 in bounded memory) and a bounded
  event channel with explicit eviction accounting;
- :mod:`repro.obs.tracing` — per-request spans across
  router -> dispatcher -> enclave batch -> reply delivery (off by
  default; zero allocations when disabled), including enclave-depth
  stage timings captured inside the ecall via :class:`StageProbe`;
- :mod:`repro.obs.export` — push-based telemetry export: subscriber
  sinks (JSONL file, bounded ring, callback) flushed at batch
  boundaries with explicit drop accounting.
"""

from repro.obs.export import (
    CallbackSink,
    JsonlSink,
    RingSink,
    TelemetryExporter,
    reconcile_stream,
)
from repro.obs.metrics import (
    Counter,
    Event,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
)
from repro.obs.tracing import Span, SpanTracer, StageProbe

__all__ = [
    "CallbackSink",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "QuantileHistogram",
    "RingSink",
    "Span",
    "SpanTracer",
    "StageProbe",
    "TelemetryExporter",
    "reconcile_stream",
]
