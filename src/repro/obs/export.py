"""Push-based telemetry export: stream the registry out while a run is
in flight.

The registry alone is pull-only — a consumer sees nothing until it asks
for a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, and the
bounded event deque may have evicted history by then.  This module adds
the push half of the plane: a :class:`TelemetryExporter` subscribes to
the registry's event channel (so it sees every event *at emit time*,
before any eviction) and flushes JSON-able records to subscriber sinks
at the cluster's batch boundaries — the same virtual-time points where
the streaming verifier harvests evidence.

Record stream contract
----------------------

- Every record carries a contiguous 0-based ``seq`` and the virtual
  ``time`` of its flush; a gap in ``seq`` means a consumer lost records,
  never that the exporter skipped one.
- ``{"type": "open"}``      — first record; carries the counter baseline
  the deltas accumulate from (usually all zeros).
- ``{"type": "events"}``    — the events emitted since the previous
  flush, in emission order.
- ``{"type": "counters"}``  — counter *deltas* since the previous flush
  (changed keys only).
- ``{"type": "snapshot"}``  — optional terminal record carrying the
  final registry snapshot (see :meth:`TelemetryExporter.close`).
- ``{"type": "close"}``     — last record; carries the exporter's own
  accounting (records emitted, per-sink drops, event-buffer overflow).

Drop semantics are explicit everywhere: a sink that rejects a record (or
raises) costs one counted drop for that sink and the stream continues —
export never blocks or aborts the run.  The exporter's between-flush
event buffer is bounded (``event_buffer``); overflow evicts the oldest
pending event and counts it in ``events_overflowed``.  A
:class:`RingSink` that wraps counts each evicted record in its
``dropped`` tally.  :func:`reconcile_stream` checks the whole ledger:
``open`` baseline + streamed deltas must equal the final snapshot's
counters, and streamed events + declared drops must account for the
snapshot's bounded event channel exactly.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Iterable

from repro.obs.metrics import Event, MetricsRegistry


class JsonlSink:
    """Append each record as one JSON line to a file.

    The file handle is opened eagerly (truncating) and owned by the
    sink; :meth:`close` flushes and closes it.  Values that are not
    JSON-able are stringified rather than dropped."""

    name = "jsonl"

    def __init__(self, path: Any) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.records_written = 0
        self.closed = False

    def emit(self, record: dict[str, Any]) -> bool:
        if self.closed:
            return False
        self._handle.write(json.dumps(record, default=str) + "\n")
        self.records_written += 1
        return True

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._handle.flush()
            self._handle.close()


class RingSink:
    """Keep the newest ``capacity`` records in memory.

    Accepting a record while full evicts the oldest and counts it in
    :attr:`dropped` — the bounded-memory consumer with explicit loss
    accounting."""

    name = "ring"

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: dict[str, Any]) -> bool:
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(record)
        return True

    def close(self) -> None:
        """Nothing to release; records stay readable."""


class CallbackSink:
    """Hand each record to a callable (tests, live dashboards, stdout).

    Exceptions raised by the callback are caught by the exporter and
    counted as drops against this sink."""

    name = "callback"

    def __init__(self, fn: Callable[[dict[str, Any]], Any]) -> None:
        self._fn = fn

    def emit(self, record: dict[str, Any]) -> bool:
        self._fn(record)
        return True

    def close(self) -> None:
        """Nothing to release."""


class TelemetryExporter:
    """Flush registry events and counter deltas to sinks at batch
    boundaries.

    Construction subscribes to the registry's event channel and records
    the counter baseline; :meth:`flush` (wired to every shard
    dispatcher's batch-complete hook) emits what changed since the last
    flush, and :meth:`close` seals the stream with the optional final
    snapshot plus the exporter's own accounting.  A snapshot-time
    collector surfaces that accounting as ``export.*`` gauges, so the
    exporter observes itself through the same plane it exports.
    """

    #: bound on events buffered between two flushes; overflow evicts the
    #: oldest pending event (counted in ``events_overflowed``)
    EVENT_BUFFER = 8192

    def __init__(
        self,
        registry: MetricsRegistry,
        sinks: Iterable[Any],
        *,
        clock: Callable[[], float] | None = None,
        event_buffer: int | None = None,
    ) -> None:
        self._registry = registry
        self._sinks = list(sinks)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._seq = 0
        self._pending_events: deque[Event] = deque(
            maxlen=event_buffer if event_buffer is not None else self.EVENT_BUFFER
        )
        self.events_overflowed = 0
        self.records_emitted = 0
        #: per-sink count of records the sink rejected or raised on
        self.sink_rejections: dict[str, int] = {}
        self.closed = False
        self._counter_base = registry.counter_values()
        registry.subscribe_events(self._on_event)
        registry.register_collector(self._collect)
        self._emit({"type": "open", "counters": dict(self._counter_base)})

    # -------------------------------------------------------------- intake

    def _on_event(self, event: Event) -> None:
        if self.closed:
            return
        if len(self._pending_events) == self._pending_events.maxlen:
            self.events_overflowed += 1
        self._pending_events.append(event)

    # --------------------------------------------------------------- output

    def flush(self) -> None:
        """Emit everything that changed since the previous flush.

        Events first, then counter deltas — so a ``counters`` record at
        sequence *n* reflects every event streamed before it.  A flush
        with nothing to say emits nothing (the stream stays proportional
        to activity, not to batch count)."""
        if self.closed:
            return
        if self._pending_events:
            events = [event.as_dict() for event in self._pending_events]
            self._pending_events.clear()
            self._emit({"type": "events", "events": events})
        current = self._registry.counter_values()
        base = self._counter_base
        deltas = {
            key: value - base.get(key, 0)
            for key, value in current.items()
            if value != base.get(key, 0)
        }
        if deltas:
            self._counter_base = current
            self._emit({"type": "counters", "deltas": deltas})

    def close(self, snapshot: dict[str, Any] | None = None) -> None:
        """Final flush, optional terminal snapshot record, accounting.

        Pass the registry snapshot the run ends on and the stream
        becomes self-reconciling: :func:`reconcile_stream` can check the
        streamed ledger against it without any side channel."""
        if self.closed:
            return
        self.flush()
        if snapshot is not None:
            self._emit({"type": "snapshot", "snapshot": snapshot})
        # accounting snapshots *before* the close record is emitted, so
        # records_emitted counts every record preceding it in the stream
        self._emit({"type": "close", "accounting": self.accounting()})
        self.closed = True
        for sink in self._sinks:
            try:
                sink.close()
            except Exception:
                pass

    def _emit(self, record: dict[str, Any]) -> None:
        record["seq"] = self._seq
        record["time"] = self._clock()
        self._seq += 1
        self.records_emitted += 1
        for sink in self._sinks:
            try:
                accepted = sink.emit(record)
            except Exception:
                accepted = False
            if not accepted:
                name = getattr(sink, "name", type(sink).__name__)
                self.sink_rejections[name] = self.sink_rejections.get(name, 0) + 1

    # ----------------------------------------------------------- accounting

    def accounting(self) -> dict[str, Any]:
        """The drop ledger: per-sink losses and buffer overflow."""
        dropped: dict[str, int] = dict(self.sink_rejections)
        for sink in self._sinks:
            evicted = getattr(sink, "dropped", 0)
            if evicted:
                name = getattr(sink, "name", type(sink).__name__)
                dropped[name] = dropped.get(name, 0) + evicted
        return {
            "records_emitted": self.records_emitted,
            "events_overflowed": self.events_overflowed,
            "dropped": dropped,
        }

    def _collect(self, registry: MetricsRegistry) -> None:
        accounting = self.accounting()
        registry.gauge("export.records_emitted").set(accounting["records_emitted"])
        registry.gauge("export.events_overflowed").set(
            accounting["events_overflowed"]
        )
        registry.gauge("export.records_dropped").set(
            sum(accounting["dropped"].values())
        )


def make_exporter(
    export: Any,
    registry: MetricsRegistry,
    *,
    clock: Callable[[], float] | None = None,
) -> TelemetryExporter | None:
    """Coerce a cluster's ``export=`` argument into an exporter.

    Accepts ``None`` (export off), a single sink, or an iterable of
    sinks — anything with ``emit(record) -> bool`` and ``close()``."""
    if export is None:
        return None
    sinks = list(export) if isinstance(export, (list, tuple)) else [export]
    return TelemetryExporter(registry, sinks, clock=clock)


def _jsonable(value: Any) -> Any:
    """Normalize through a JSON round trip so in-memory values compare
    equal to values parsed back from a JSONL stream (tuples become
    lists, non-JSON leaves become their string forms)."""
    return json.loads(json.dumps(value, default=str))


def reconcile_stream(
    records: list[dict[str, Any]], snapshot: dict[str, Any]
) -> list[str]:
    """Check an exported record stream against the final snapshot.

    Returns a list of human-readable discrepancies (empty means the
    stream reconciles exactly):

    - ``seq`` must be gap-free from 0;
    - ``open`` baseline + streamed counter deltas must equal the
      snapshot's (non-zero) counters;
    - streamed events plus the declared drops must account for the
      snapshot's bounded event channel: with no exporter-side overflow
      the stream's tail must equal the snapshot's events element-wise,
      and the stream must carry exactly ``events_dropped`` more.
    """
    problems: list[str] = []
    seqs = [record.get("seq") for record in records]
    if seqs != list(range(len(records))):
        problems.append(f"sequence not contiguous from 0: {seqs[:20]}...")
    counters: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    accounting: dict[str, Any] | None = None
    for record in records:
        kind = record.get("type")
        if kind == "open":
            counters.update(record.get("counters", {}))
        elif kind == "counters":
            for key, delta in record["deltas"].items():
                counters[key] = counters.get(key, 0) + delta
        elif kind == "events":
            events.extend(record["events"])
        elif kind == "close":
            accounting = record.get("accounting")
    replayed = {key: value for key, value in counters.items() if value}
    final = {
        key: value for key, value in snapshot.get("counters", {}).items() if value
    }
    if replayed != final:
        missing = {k: v for k, v in final.items() if replayed.get(k) != v}
        extra = {k: v for k, v in replayed.items() if k not in final}
        problems.append(
            f"counter totals diverge: snapshot-side {missing!r}, "
            f"stream-only {extra!r}"
        )
    snap_events = _jsonable(snapshot.get("events", []))
    dropped = snapshot.get("events_dropped", 0)
    overflowed = (accounting or {}).get("events_overflowed", 0)
    if len(events) + overflowed != len(snap_events) + dropped:
        problems.append(
            f"event ledger broken: {len(events)} streamed + {overflowed} "
            f"overflowed != {len(snap_events)} retained + {dropped} dropped"
        )
    elif not overflowed and snap_events:
        tail = _jsonable(events[len(events) - len(snap_events):])
        if tail != snap_events:
            problems.append("streamed event tail differs from snapshot events")
    return problems
