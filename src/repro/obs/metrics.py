"""Counter/gauge/histogram registry on the simulator's virtual clock.

Design constraints, in order:

1. *Cheap writes.*  Metric objects are plain slotted attributes mutated
   in place (``counter.inc()`` is one integer add); the registry dict is
   only consulted at metric-creation time, never per increment.  Hot
   paths hold a reference to the metric object itself.
2. *Bounded memory.*  Histograms keep a ``{value bucket: count}`` dict
   capped at :data:`Histogram.MAX_BUCKETS` distinct buckets (overflow
   observations still update count/total/min/max), and the event channel
   is a bounded deque — a registry never grows with run length.
3. *Virtual time.*  The registry is constructed with the cluster's
   ``clock`` callable (``sim.now``); events and snapshots are stamped
   with virtual seconds, so metric series line up with the discrete-event
   schedule rather than wall time.

Read-through *collectors* bridge pre-existing stats objects (the
dispatcher's :class:`~repro.server.batching.BatchSizeHistogram`, the
sharded stats counters) into a snapshot without making their hot paths
pay for registry indirection: a collector is a callable invoked at
:meth:`MetricsRegistry.snapshot` time that writes current values into
registry metrics.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable


class Counter:
    """Monotone event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Value distribution with bounded bucket storage.

    Buckets are keyed by the observed value itself (batch sizes, retry
    counts — small discrete domains).  Once :data:`MAX_BUCKETS` distinct
    values have been seen, further novel values only update the summary
    stats and the ``overflow`` count, so memory stays bounded on
    adversarial/continuous domains (e.g. float durations).
    """

    MAX_BUCKETS = 512

    __slots__ = ("counts", "count", "total", "min", "max", "overflow")

    def __init__(self) -> None:
        self.counts: dict[Any, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.overflow = 0

    def observe(self, value: float, count: int = 1) -> None:
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value in self.counts:
            self.counts[value] += count
        elif len(self.counts) < self.MAX_BUCKETS:
            self.counts[value] = count
        else:
            self.overflow += count

    def set_from_counts(self, counts: dict[Any, int]) -> None:
        """Replace the distribution wholesale (read-through collectors)."""
        self.counts = {}
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.overflow = 0
        for value, count in counts.items():
            self.observe(value, count)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[Any, int]:
        return dict(sorted(self.counts.items()))

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.counts.items())},
            "overflow": self.overflow,
        }


class QuantileHistogram:
    """Streaming log-bucket quantile estimator (p50/p95/p99) in bounded
    memory.

    Positive observations land in geometric buckets ``[GROWTH**i,
    GROWTH**(i+1))``; a quantile is answered with the upper bound of the
    bucket its rank falls in, so the relative error is bounded by the
    bucket width (``GROWTH - 1``, ~8%) regardless of run length.  The
    index range is already narrow — values spanning eighteen decades fit
    in ~540 buckets — and :data:`MAX_BUCKETS` caps the dict anyway
    (further *novel* magnitudes only count into ``overflow``).  Values
    ``<= 0`` (virtual-time latencies can legitimately be zero when
    submit and completion share an event) sit in a dedicated floor
    bucket reported as the distribution minimum.
    """

    GROWTH = 1.08
    MAX_BUCKETS = 512
    _LOG_GROWTH = math.log(1.08)

    __slots__ = ("counts", "count", "total", "min", "max", "floor", "overflow")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.floor = 0      # observations <= 0
        self.overflow = 0   # novel magnitudes past MAX_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.floor += 1
            return
        index = math.floor(math.log(value) / self._LOG_GROWTH)
        counts = self.counts
        if index in counts:
            counts[index] += 1
        elif len(counts) < self.MAX_BUCKETS:
            counts[index] = 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1), clamped into [min, max]."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = float(self.floor)
        if rank <= seen:
            return self.min if self.min is not None else 0.0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if rank <= seen:
                bound = self.GROWTH ** (index + 1)
                if self.max is not None and bound > self.max:
                    bound = self.max
                if self.min is not None and bound < self.min:
                    bound = self.min
                return bound
        # rank fell into the overflow tail: the best bounded answer
        return self.max if self.max is not None else 0.0

    def merge_from(self, other: "QuantileHistogram") -> None:
        """Fold another histogram into this one (identical bucketing, so
        the merge is exact: bucket counts add).  The frontier harness
        aggregates per-(shard, op) latency histograms into one cluster
        distribution this way before asking for percentiles."""
        self.count += other.count
        self.total += other.total
        self.floor += other.floor
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        counts = self.counts
        for index, n in other.counts.items():
            if index in counts:
                counts[index] += n
            elif len(counts) < self.MAX_BUCKETS:
                counts[index] = n
            else:
                self.overflow += n
        self.overflow += other.overflow

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "overflow": self.overflow,
        }


@dataclass(frozen=True)
class Event:
    """One observability event (e.g. an online violation detection)."""

    time: float
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"time": self.time, "name": self.name, **self.fields}


def _render_key(name: str, labels: tuple[tuple[str, Any], ...]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Named metrics + bounded events, stamped with the virtual clock."""

    EVENT_LIMIT = 4096

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._quantiles: dict[str, QuantileHistogram] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        self.events: deque[Event] = deque(maxlen=self.EVENT_LIMIT)
        #: evictions from the bounded event deque — the counter is
        #: materialized on the first eviction so loss shows up in the
        #: counters map exactly when there is loss to report (snapshots
        #: always carry the scalar ``events_dropped`` regardless)
        self._events_dropped: Counter | None = None
        #: push subscribers see *every* event at emit time, including the
        #: ones the bounded deque later evicts (the exporter's feed)
        self._event_subscribers: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------- factories

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _render_key(name, tuple(sorted(labels.items())))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _render_key(name, tuple(sorted(labels.items())))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _render_key(name, tuple(sorted(labels.items())))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    def quantile(self, name: str, **labels: Any) -> QuantileHistogram:
        """A log-bucket quantile histogram (p50/p95/p99, bounded)."""
        key = _render_key(name, tuple(sorted(labels.items())))
        metric = self._quantiles.get(key)
        if metric is None:
            metric = self._quantiles[key] = QuantileHistogram()
        return metric

    def quantiles_named(self, name: str) -> list[QuantileHistogram]:
        """Every registered quantile histogram under ``name``, across all
        label sets — the frontier harness merges these (exact: identical
        bucketing) into one cluster-wide latency distribution."""
        prefix = name + "{"
        return [
            metric
            for key, metric in self._quantiles.items()
            if key == name or key.startswith(prefix)
        ]

    # -------------------------------------------------------------- channels

    def emit(self, name: str, **fields: Any) -> Event:
        """Record one event at the current virtual time."""
        event = Event(time=self._clock(), name=name, fields=fields)
        if len(self.events) == self.EVENT_LIMIT:
            # deque(maxlen) evicts the oldest silently; account for it
            dropped = self._events_dropped
            if dropped is None:
                dropped = self._events_dropped = self.counter(
                    "obs.events_dropped"
                )
            dropped.inc()
        self.events.append(event)
        if self._event_subscribers:
            for subscriber in self._event_subscribers:
                subscriber(event)
        return event

    @property
    def events_dropped(self) -> int:
        """Events evicted from the bounded deque since construction."""
        return self._events_dropped.value if self._events_dropped else 0

    def subscribe_events(self, subscriber: Callable[[Event], None]) -> None:
        """Push every future event to ``subscriber`` at emit time.

        Subscribers run synchronously inside :meth:`emit` and see events
        the bounded deque will later evict — a push exporter attached
        here loses nothing to the deque bound (only to its own declared
        buffer limits)."""
        self._event_subscribers.append(subscriber)

    def events_named(self, name: str) -> list[Event]:
        return [event for event in self.events if event.name == name]

    def register_collector(self, collector: Callable[[MetricsRegistry], None]) -> None:
        """Add a read-through collector run at :meth:`snapshot` time."""
        self._collectors.append(collector)

    def counter_values(self) -> dict[str, int]:
        """Current counter values, *without* running collectors.

        The exporter diffs successive calls to stream counter deltas at
        batch boundaries; collectors only write gauges/histograms, so
        skipping them keeps the per-boundary cost proportional to the
        number of counters."""
        return {key: counter.value for key, counter in self._counters.items()}

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able view of every metric (collectors run first)."""
        for collector in self._collectors:
            collector(self)
        return {
            "time": self._clock(),
            "counters": {key: c.value for key, c in sorted(self._counters.items())},
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: h.summary() for key, h in sorted(self._histograms.items())
            },
            "quantiles": {
                key: q.summary() for key, q in sorted(self._quantiles.items())
            },
            "events": [event.as_dict() for event in self.events],
            "events_dropped": self.events_dropped,
        }
