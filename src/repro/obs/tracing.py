"""Per-request spans across router -> dispatcher -> enclave -> reply.

A :class:`Span` follows one client operation through the sharded stack:

- ``submitted_at``  — the router handed the operation to the client
  machine (``ShardRouter._dispatch``);
- ``delivered_at``  — the shard's dispatcher put the reply on the
  client's downlink channel (end of the enclave batch's service
  interval);
- ``completed_at``  — the client machine verified the reply and ran the
  completion callback (the operation is now in the shard history);
- ``batch_size``    — size of the enclave batch the reply travelled in;
- ``stages``        — the enclave-depth stage record for that batch
  (wall-clock durations measured *inside* the ecall: MAC-scan/decrypt/
  verify, per-op execute, reply encode+seal, dynamic-layer state seal),
  joined to the span at the virtual-time delivery event;
- ``batch_index``   — the span's position inside its batch, derived by
  the tracer from consecutive deliveries sharing one stage record (so
  ``stages["per_op_execute"][batch_index]`` is this operation's own
  execute time).

Spans therefore carry both clocks: the protocol timeline in virtual
seconds (``submitted_at``/``delivered_at``/``completed_at``) and the
enclave's wall-clock cost in the attached stage record.

Correlation needs no per-message tags: a client machine keeps at most
one protocol message in flight per shard and replies come back in invoke
order, so the tracer matches deliveries to the oldest open span of that
``(shard, client)`` pair (FIFO).

Tracing is **off by default**: when ``enabled`` is False, ``start``
returns ``None`` and every hook is a single attribute test — the hot
path allocates nothing.  Finished spans live in a bounded deque.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable


class Span:
    """One operation's trip through the stack (all times virtual)."""

    __slots__ = (
        "kind",
        "client_id",
        "shard_id",
        "operation",
        "submitted_at",
        "delivered_at",
        "completed_at",
        "batch_size",
        "sequence",
        "stages",
        "batch_index",
        "extra",
    )

    def __init__(
        self,
        kind: str,
        *,
        client_id: int | None = None,
        shard_id: int | None = None,
        operation: str | None = None,
        submitted_at: float = 0.0,
        **extra: Any,
    ) -> None:
        self.kind = kind
        self.client_id = client_id
        self.shard_id = shard_id
        self.operation = operation
        self.submitted_at = submitted_at
        self.delivered_at: float | None = None
        self.completed_at: float | None = None
        self.batch_size: int | None = None
        self.sequence: int | None = None
        #: per-batch enclave stage record (shared by every span of the
        #: batch) and this span's position within it — None until the
        #: delivery event, and None throughout when no stage probe runs
        self.stages: dict[str, Any] | None = None
        self.batch_index: int | None = None
        self.extra = extra

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "client_id": self.client_id,
            "shard_id": self.shard_id,
            "operation": self.operation,
            "submitted_at": self.submitted_at,
            "delivered_at": self.delivered_at,
            "completed_at": self.completed_at,
            "batch_size": self.batch_size,
            "sequence": self.sequence,
            "latency": self.latency,
            "stages": self.stages,
            "batch_index": self.batch_index,
            **self.extra,
        }


class SpanTracer:
    """Bounded collector of finished spans over the virtual clock."""

    SPAN_LIMIT = 4096

    def __init__(
        self, clock: Callable[[], float] | None = None, *, enabled: bool = False
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.spans: deque[Span] = deque(maxlen=self.SPAN_LIMIT)
        #: open spans per (shard_id, client_id), oldest first
        self._open: dict[tuple[int, int], deque[Span]] = {}
        #: batch-position cursor: consecutive deliveries handing in the
        #: *same* stage record object belong to the same batch
        self._last_stages: dict[str, Any] | None = None
        self._stage_cursor = 0

    # ------------------------------------------------------------- lifecycle

    def start(
        self,
        kind: str,
        *,
        client_id: int,
        shard_id: int,
        operation: str | None = None,
        **extra: Any,
    ) -> Span | None:
        if not self.enabled:
            return None
        span = Span(
            kind,
            client_id=client_id,
            shard_id=shard_id,
            operation=operation,
            submitted_at=self._clock(),
            **extra,
        )
        self._open.setdefault((shard_id, client_id), deque()).append(span)
        return span

    def delivered(
        self,
        shard_id: int,
        client_id: int,
        batch_size: int | None = None,
        stages: dict[str, Any] | None = None,
    ) -> None:
        """Stamp the oldest open span of this (shard, client) pair.

        ``stages`` is the per-batch enclave stage record captured inside
        the ecall.  The dispatcher delivers a batch's replies back to
        back in batch order, so the tracer derives each span's position
        (``batch_index``) by counting consecutive deliveries that share
        the same record object — even deliveries with no matching open
        span advance the cursor, keeping later indices aligned.
        """
        if not self.enabled:
            return
        index = None
        if stages is not None:
            if stages is self._last_stages:
                self._stage_cursor += 1
            else:
                self._last_stages = stages
                self._stage_cursor = 0
            index = self._stage_cursor
        open_spans = self._open.get((shard_id, client_id))
        if not open_spans:
            return
        for span in open_spans:
            if span.delivered_at is None:
                span.delivered_at = self._clock()
                span.batch_size = batch_size
                span.stages = stages
                span.batch_index = index
                return

    def finish(self, span: Span | None, *, sequence: int | None = None) -> None:
        if span is None or not self.enabled:
            return
        span.completed_at = self._clock()
        span.sequence = sequence
        open_spans = self._open.get((span.shard_id, span.client_id))
        if open_spans:
            try:
                open_spans.remove(span)
            except ValueError:
                pass
        self.spans.append(span)

    def discard(self, span: Span | None) -> None:
        """Drop a span that will never complete (parked/dropped ops)."""
        if span is None:
            return
        open_spans = self._open.get((span.shard_id, span.client_id))
        if open_spans:
            try:
                open_spans.remove(span)
            except ValueError:
                pass

    # --------------------------------------------------------------- queries

    def finished(self, kind: str | None = None) -> list[Span]:
        if kind is None:
            return list(self.spans)
        return [span for span in self.spans if span.kind == kind]


class StageProbe:
    """Thread-local landing pad for per-batch enclave stage records.

    The trusted context calls the probe from *inside* the ecall — on the
    dispatcher's thread under the serial execution backend, on a worker
    thread under the threaded one.  The cluster's ``send_batch`` wrapper
    runs on that same thread immediately after the ecall returns, takes
    the record and parks it on the shard; the dispatcher's delivery
    event (which joins the execution future first, establishing the
    happens-before edge) then hands it to the tracer.  Stage timings
    thus re-enter the virtual-time order at the batch boundary exactly
    like the replies they describe, and serial/threaded runs produce
    records with identical fields — only the wall-clock durations
    differ.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def __call__(self, record: dict[str, Any]) -> None:
        self._local.record = record

    def take(self) -> dict[str, Any] | None:
        """Return and clear the calling thread's parked record."""
        record = getattr(self._local, "record", None)
        self._local.record = None
        return record
