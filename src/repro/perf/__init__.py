"""Performance modelling for the paper's evaluation (Sec. 6).

- :mod:`repro.perf.costs` — the calibrated cost model: service-time
  constants for every pipeline stage (network, untrusted server thread,
  ecall, enclave crypto, LCM protocol work, disk, TMC);
- :mod:`repro.perf.model` — a closed-loop discrete-event throughput engine
  that drives the modelled server with YCSB-style clients and measures
  simulated operations per second.

The constants are calibrated so the *relative* results reproduce the
paper's bands (who wins, by what factor, where curves saturate); absolute
throughput is in the same order of magnitude as the paper's testbed but is
not the reproduction target.  EXPERIMENTS.md records paper-vs-measured for
every figure.
"""

from repro.perf.costs import CostModel, MessageGeometry
from repro.perf.model import SYSTEMS, SystemSpec, measure_throughput

__all__ = [
    "CostModel",
    "MessageGeometry",
    "SystemSpec",
    "SYSTEMS",
    "measure_throughput",
]
