"""Calibrated cost-model constants.

Every constant is a service time (seconds) or a size (bytes) for one stage
of the request pipeline the paper describes in Sec. 5.3 / Fig. 3.  The
calibration targets are the paper's *relative* results:

- SGX saturates around 8 clients while Native keeps scaling (Fig. 5);
- SGX = 0.42-0.78x Native, LCM = 0.67-0.95x SGX (0.72-0.98x with
  batching) under async writes;
- with fsync, non-batching systems flatten to a few hundred ops/s,
  SGX = 0.98x Native, LCM = 0.69x SGX, LCM+batching = 0.72-9.87x SGX
  (Fig. 6);
- the emulated TMC pins throughput at ~12 ops/s (Sec. 6.5);
- LCM's relative overhead falls from ~20% at 100-byte objects to ~11% at
  2500 bytes (Fig. 4).

The derivation of each value from those targets is sketched next to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.latency import BandwidthModel, LatencyModel
from repro.server.storage import DiskModel


@dataclass(frozen=True)
class MessageGeometry:
    """Wire sizes of one request/reply pair for the YCSB-A mix.

    Workload A is 50% GET / 50% PUT: on average half the requests carry the
    object value upstream and half the replies carry it downstream, so each
    direction carries ``object_size / 2`` value bytes on average.
    """

    key_bytes: int = 40
    header_bytes: int = 60        # framing + AEAD expansion + ids
    lcm_metadata_bytes: int = 46  # the Sec. 6.3 constant protocol overhead

    def request_bytes(self, object_size: int, *, lcm: bool) -> int:
        base = self.header_bytes + self.key_bytes + object_size // 2
        return base + (self.lcm_metadata_bytes if lcm else 0)

    def reply_bytes(self, object_size: int, *, lcm: bool) -> int:
        base = self.header_bytes + object_size // 2
        return base + (self.lcm_metadata_bytes if lcm else 0)


@dataclass(frozen=True)
class CostModel:
    """All pipeline-stage costs.  Defaults are the calibrated values."""

    # --- network: same-rack LAN through a VM, 1 Gbps.  RTT ~0.4 ms gives
    # Native's closed-loop curve its paper-like slope (~2 kops/s per client
    # until the server thread saturates).  Jitter staggers the closed-loop
    # clients like a real network does; without it they move in lockstep
    # and batching degenerates to stop-and-go.
    latency: LatencyModel = field(
        default_factory=lambda: LatencyModel(
            propagation=200e-6,
            bandwidth=BandwidthModel(125_000_000.0),
            jitter_fraction=0.25,
            seed=7,
        )
    )

    # --- untrusted server thread.  12 us of socket/framing work per request
    # plus 6 us of map operation put Native's single-thread ceiling at
    # ~45 kops/s, matching the scale of Fig. 5's top curves.
    frontend_per_request: float = 12e-6
    kvs_op_time: float = 6e-6

    # --- client side.  The enclave-path prototypes (SGX KVS, LCM) encrypt
    # each request/reply with JCE on the YCSB client thread; the
    # Native/Redis path offloads TLS to Stunnel processes.  This latency
    # shows up at low client counts (the 0.78x SGX-vs-Native gap at one
    # client) without consuming server capacity.
    client_crypto_latency: float = 40e-6

    # --- Stunnel (Native/Redis transport crypto): separate worker
    # processes, so it adds latency but does not consume the server thread.
    stunnel_workers: int = 8
    host_crypto_base: float = 4e-6
    host_crypto_per_byte: float = 15e-9

    # --- enclave path.  One ecall transition ~24 us (SGX SDK 1.6 era,
    # including the copy across the enclave boundary); AES-GCM inside the
    # enclave ~8 us fixed + 20 ns/byte per direction.  Together with the op
    # and state sealing this puts SGX's 100-byte service time at ~73 us ->
    # ~14 kops/s, saturating right around 8 clients as in Fig. 5.
    ecall_overhead: float = 24e-6
    enclave_crypto_base: float = 8e-6       # per direction
    enclave_crypto_per_byte: float = 20e-9  # per payload byte, per direction
    state_seal_base: float = 6e-6
    state_seal_per_byte: float = 4e-9       # on the object touched

    # --- LCM protocol work on top of SGX (Alg. 2): hash-chain extension,
    # V-map + stability bookkeeping, and the extra sealed protocol state.
    # ~6 us/op + 12 us/store reproduces Fig. 4's 20% -> 11% overhead decay
    # and Fig. 5's 0.7-0.96x band.
    lcm_hash_chain_time: float = 2e-6
    lcm_v_update_time: float = 3e-6
    lcm_state_seal_extra: float = 11e-6      # per store (amortised by batching)
    # With fsync the LCM prototype persists the larger combined blob
    # (protocol state + V + result cache); modelled as a 45% longer flush,
    # which reproduces the paper's LCM = 0.69x SGX under synchronous writes.
    lcm_sync_write_factor: float = 1.45

    # --- disk.  2 us submit for buffered writes; 4 ms fsync (SATA SSD).
    disk: DiskModel = field(
        default_factory=lambda: DiskModel(
            async_write_latency=2e-6, fsync_latency=4e-3, bytes_per_second=450e6
        )
    )

    # --- sealed-store geometry.  StableStorage persists consecutive sealed
    # blobs as prefix deltas (key/static boxes change only on membership or
    # key events), so a steady-state per-op store writes the changed V row
    # — a REPLY box carrying the object — plus the manifest reseal, not the
    # whole blob.  The disk charge uses the delta size; the full size is
    # kept for cold stores and diagnostics.
    sealed_blob_base: int = 256   # full blob: key/static/state boxes + framing
    sealed_delta_base: int = 96   # per-op delta: changed row + manifest tag

    # --- trusted monotonic counter.  The paper measured 60 ms per SGX TMC
    # increment on Windows but observed ~12 ops/s end to end; 80 ms per
    # increment reproduces the observed rate including protocol overhead.
    tmc_increment_latency: float = 80e-3

    # --- batching (Sec. 5.3).
    default_batch_limit: int = 16

    geometry: MessageGeometry = field(default_factory=MessageGeometry)

    # ------------------------------------------------------------ helpers

    def enclave_crypto_time(self, payload_bytes: int) -> float:
        """AEAD cost for one direction of one message inside the enclave."""
        return self.enclave_crypto_base + self.enclave_crypto_per_byte * payload_bytes

    def host_crypto_time(self, payload_bytes: int) -> float:
        """Stunnel worker time for one direction of one message."""
        return self.host_crypto_base + self.host_crypto_per_byte * payload_bytes

    def state_seal_time(self, object_size: int) -> float:
        return self.state_seal_base + self.state_seal_per_byte * object_size

    def sealed_store_bytes(self, object_size: int, *, delta: bool = True) -> int:
        """Bytes one per-op state store writes to disk.

        ``delta=True`` (the steady state) charges the prefix-compressed
        suffix StableStorage actually appends; ``delta=False`` the whole
        sealed blob (first store of an epoch, membership/key events).
        """
        base = self.sealed_delta_base if delta else self.sealed_blob_base
        return base + object_size
