"""Closed-loop throughput engine for the evaluation figures.

The engine reproduces the paper's measurement setup: ``n`` closed-loop
YCSB clients (zero think time) drive one server over a simulated LAN; a
measurement window counts completed operations per simulated second.

Pipeline per system (Fig. 3):

``native``    client -> net -> stunnel decrypt (worker pool) -> server
              thread (frontend + op + snapshot write) -> stunnel encrypt ->
              net -> client.
``redis``     like native, but persistence is an append log with *group
              commit*: the single-threaded event loop drains its queue and
              all pending writes share one fsync.
``sgx``       client -> net -> server thread (frontend + ecall + in-enclave
              decrypt/execute/encrypt + seal + store) -> net -> client.
``sgx_batch`` same, but the thread drains up to B queued requests into one
              ecall; ecall, seal and store are paid once per batch.
``lcm``       sgx plus hash chain, V-map/stability updates and the larger
              sealed protocol state.
``lcm_batch`` lcm with batching (the store amortises, per-op work stays).
``sgx_tmc``   sgx plus one trusted-monotonic-counter increment per store.

All service stages of the single-threaded server (including blocking fsync
and the TMC increment, which the enclave waits on) occupy the server-thread
resource, which is what makes the saturation behaviour emerge rather than
being hard-coded.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.simulation import Simulator, WorkerPool
from repro.perf.costs import CostModel


@dataclass(frozen=True)
class SystemSpec:
    """Static description of one benchmarked system."""

    name: str
    enclave: bool
    lcm: bool = False
    batch_limit: int | None = None     # None: one request per ecall/iteration
    tmc: bool = False
    stunnel: bool = False
    group_commit: bool = False         # drain-the-queue batching (Redis AOF)

    @property
    def batching(self) -> bool:
        return self.batch_limit is not None or self.group_commit


SYSTEMS: dict[str, SystemSpec] = {
    "native": SystemSpec("native", enclave=False, stunnel=True),
    "redis": SystemSpec("redis", enclave=False, stunnel=True, group_commit=True),
    "sgx": SystemSpec("sgx", enclave=True),
    "sgx_batch": SystemSpec("sgx_batch", enclave=True, batch_limit=16),
    "lcm": SystemSpec("lcm", enclave=True, lcm=True),
    "lcm_batch": SystemSpec("lcm_batch", enclave=True, lcm=True, batch_limit=16),
    "sgx_tmc": SystemSpec("sgx_tmc", enclave=True, tmc=True),
}


class ServerEngine:
    """The single server thread: queue, batch dispatch, service times."""

    def __init__(
        self,
        sim: Simulator,
        spec: SystemSpec,
        costs: CostModel,
        object_size: int,
        *,
        fsync: bool,
    ) -> None:
        self._sim = sim
        self._spec = spec
        self._costs = costs
        self._object_size = object_size
        self._fsync = fsync
        self._queue: collections.deque = collections.deque()
        self._busy = False
        self.batches = 0
        self.requests = 0

    # ------------------------------------------------------------- arrival

    def arrive(self, deliver_reply) -> None:
        """A request reached the server thread's queue."""
        self._queue.append(deliver_reply)
        if not self._busy:
            self._dispatch()

    def _dispatch(self) -> None:
        spec = self._spec
        if spec.group_commit:
            batch_size = len(self._queue)
        else:
            batch_size = min(len(self._queue), spec.batch_limit or 1)
        batch = [self._queue.popleft() for _ in range(batch_size)]
        service = self._batch_service_time(batch_size)
        self._busy = True
        self.batches += 1
        self.requests += batch_size

        def complete() -> None:
            self._busy = False
            for deliver_reply in batch:
                deliver_reply()
            if self._queue:
                self._dispatch()

        self._sim.schedule(service, complete, label=f"{spec.name}:batch")

    # ------------------------------------------------------------- service

    def _batch_service_time(self, batch_size: int) -> float:
        """Total server-thread occupancy for one batch of requests."""
        costs = self._costs
        spec = self._spec
        z = self._object_size
        per_op = costs.frontend_per_request + costs.kvs_op_time
        per_batch = 0.0

        if spec.enclave:
            request_bytes = costs.geometry.request_bytes(z, lcm=spec.lcm)
            reply_bytes = costs.geometry.reply_bytes(z, lcm=spec.lcm)
            per_op += costs.enclave_crypto_time(request_bytes)
            per_op += costs.enclave_crypto_time(reply_bytes)
            # one ecall + one sealed store per batch (Sec. 5.2 optimisation);
            # without batching the batch size is 1, i.e. per request.
            per_batch += costs.ecall_overhead
            per_batch += costs.state_seal_time(z)
            if spec.lcm:
                per_op += costs.lcm_hash_chain_time + costs.lcm_v_update_time
                per_batch += costs.lcm_state_seal_extra
            if spec.tmc:
                per_batch += costs.tmc_increment_latency
            # StableStorage delta-compresses consecutive sealed blobs, so
            # the steady-state store hits the disk with the suffix only
            write_time = costs.disk.write_time(
                costs.sealed_store_bytes(z), fsync=self._fsync
            )
            if spec.lcm and self._fsync:
                write_time *= costs.lcm_sync_write_factor
            per_batch += write_time
        else:
            # Native / Redis persistence on the server thread.
            if spec.group_commit:
                # Half the YCSB-A requests are writes; the log flush is
                # shared by the whole drained queue.
                writes = max(1, batch_size // 2)
                per_batch += costs.disk.write_time(64 + z, fsync=self._fsync)
                per_op += (writes / batch_size) * 1e-6  # log append bookkeeping
            else:
                per_op += costs.disk.write_time(128 + z, fsync=self._fsync)

        return per_op * batch_size + per_batch


@dataclass
class ThroughputResult:
    """Outcome of one measurement run."""

    system: str
    clients: int
    object_size: int
    fsync: bool
    operations: int
    window: float

    @property
    def ops_per_second(self) -> float:
        if self.window <= 0:
            return 0.0
        return self.operations / self.window


def measure_throughput(
    system: str | SystemSpec,
    *,
    clients: int,
    object_size: int = 100,
    fsync: bool = False,
    costs: CostModel | None = None,
    duration: float | None = None,
    warmup: float | None = None,
) -> ThroughputResult:
    """Run one closed-loop measurement and return the throughput.

    ``duration``/``warmup`` default to windows adapted to the system's
    expected rate (the TMC system needs several simulated seconds to
    complete a handful of operations).
    """
    spec = SYSTEMS[system] if isinstance(system, str) else system
    if clients < 1:
        raise ConfigurationError("need at least one client")
    costs = costs or CostModel()
    if duration is None:
        duration = 20.0 if spec.tmc else (4.0 if fsync else 0.8)
    if warmup is None:
        warmup = duration / 4.0

    sim = Simulator()
    engine = ServerEngine(sim, spec, costs, object_size, fsync=fsync)
    stunnel = (
        WorkerPool(sim, costs.stunnel_workers, "stunnel") if spec.stunnel else None
    )
    geometry = costs.geometry
    request_bytes = geometry.request_bytes(object_size, lcm=spec.lcm)
    reply_bytes = geometry.reply_bytes(object_size, lcm=spec.lcm)
    completed = {"count": 0}
    window_start = warmup
    window_end = warmup + duration

    # Client-side crypto runs on the YCSB client thread for the enclave
    # systems (JCE), but in separate Stunnel processes for Native/Redis —
    # it adds latency to the enclave paths without using server capacity.
    client_side = costs.client_crypto_latency if spec.enclave else 0.0

    def client_loop() -> None:
        # request travels to the server...
        delay_up = client_side + costs.latency.one_way(request_bytes)

        def reach_server() -> None:
            if stunnel is not None:
                stunnel.acquire_for(
                    costs.host_crypto_time(request_bytes),
                    lambda: engine.arrive(reply_path),
                )
            else:
                engine.arrive(reply_path)

        def reply_path() -> None:
            # server finished; reply crypto (stunnel) then network back.
            def reply_to_client() -> None:
                delay_down = costs.latency.one_way(reply_bytes)

                def complete() -> None:
                    if window_start <= sim.now <= window_end:
                        completed["count"] += 1
                    if sim.now < window_end:
                        client_loop()

                sim.schedule(delay_down, complete)

            if stunnel is not None:
                stunnel.acquire_for(
                    costs.host_crypto_time(reply_bytes), reply_to_client
                )
            else:
                reply_to_client()

        sim.schedule(delay_up, reach_server)

    for _ in range(clients):
        client_loop()
    sim.run_until(window_end)

    return ThroughputResult(
        system=spec.name,
        clients=clients,
        object_size=object_size,
        fsync=fsync,
        operations=completed["count"],
        window=duration,
    )
