"""Canonical, injective serialization for protocol data.

Every byte string that LCM hashes, MACs or encrypts (operations, protocol
messages, state blobs) must be produced by an *injective* encoding —
otherwise two distinct logical values could collide and defeat the hash
chain.  This module implements a small self-describing binary format
(bencode-like, but with explicit type tags and 8-byte lengths) for the value
types the protocol uses:

``None``, ``bool``, ``int``, ``bytes``, ``str``, ``list``/``tuple`` and
``dict`` (with canonically sorted keys).

The format is deliberately simple and dependency-free; it is not a general
pickle replacement and refuses unknown types loudly.
"""

from __future__ import annotations

from typing import Any

from repro.errors import LCMError


class SerdeError(LCMError):
    """Raised for unsupported types or malformed encodings."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_DICT = b"D"


def _encode_length(n: int) -> bytes:
    return n.to_bytes(8, "big")


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes.

    >>> encode([1, b"x"]) != encode([1, b"y"])
    True
    """
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        payload = value.to_bytes(16, "big", signed=True)
        return _TAG_INT + payload
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES + _encode_length(len(value)) + bytes(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _TAG_STR + _encode_length(len(raw)) + raw
    if isinstance(value, (list, tuple)):
        parts = [encode(item) for item in value]
        body = b"".join(parts)
        return _TAG_LIST + _encode_length(len(parts)) + body
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: encode(kv[0]))
        body = b"".join(encode(k) + encode(v) for k, v in items)
        return _TAG_DICT + _encode_length(len(items)) + body
    raise SerdeError(f"unsupported type for canonical encoding: {type(value)!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`.  Raises :class:`SerdeError` on malformed input."""
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise SerdeError(f"{len(data) - offset} trailing bytes after value")
    return value


def _read(data: bytes, offset: int, n: int) -> bytes:
    if offset + n > len(data):
        raise SerdeError("truncated encoding")
    return data[offset : offset + n]


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    tag = _read(data, offset, 1)
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw = _read(data, offset, 16)
        return int.from_bytes(raw, "big", signed=True), offset + 16
    if tag == _TAG_BYTES:
        length = int.from_bytes(_read(data, offset, 8), "big")
        offset += 8
        return _read(data, offset, length), offset + length
    if tag == _TAG_STR:
        length = int.from_bytes(_read(data, offset, 8), "big")
        offset += 8
        raw = _read(data, offset, length)
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_LIST:
        count = int.from_bytes(_read(data, offset, 8), "big")
        offset += 8
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        count = int.from_bytes(_read(data, offset, 8), "big")
        offset += 8
        result = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            value, offset = _decode_at(data, offset)
            result[key] = value
        return result, offset
    raise SerdeError(f"unknown type tag {tag!r}")
