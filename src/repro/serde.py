"""Canonical, injective serialization for protocol data.

Every byte string that LCM hashes, MACs or encrypts (operations, protocol
messages, state blobs) must be produced by an *injective* encoding —
otherwise two distinct logical values could collide and defeat the hash
chain.  This module implements a small self-describing binary format
(bencode-like, but with explicit type tags and 8-byte lengths) for the value
types the protocol uses:

``None``, ``bool``, ``int``, ``bytes``, ``str``, ``list``/``tuple`` and
``dict`` (with canonically sorted keys).

The format is deliberately simple and dependency-free; it is not a general
pickle replacement and refuses unknown types loudly.

The encoder writes into a single ``bytearray`` (:func:`encode_into`), so
nested containers produce no intermediate byte strings; the decoder walks a
``memoryview`` and only materialises bytes at the leaves.  Callers that
cache pre-encoded fragments (the trusted context caches per-client rows of
``V``) can assemble containers themselves with :func:`encode_list_header` /
:func:`encode_dict_header` — the framing is ``tag || count`` followed by the
encoded items, with dict items sorted by their encoded keys.
"""

from __future__ import annotations

from typing import Any

from repro.errors import LCMError

try:  # compiled codec (built at first import, cached on disk); the pure
    # encoder below stays authoritative for every value it declines, and
    # is registered as the C module's fallback at the end of this module
    from repro import _serde_native

    _NATIVE = _serde_native.load()
except Exception:  # pragma: no cover - builder failures degrade silently
    _NATIVE = None


def native_backend_active() -> bool:
    """True when the compiled codec is loaded (diagnostics / tests)."""
    return _NATIVE is not None


class SerdeError(LCMError):
    """Raised for unsupported types or malformed encodings."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_DICT = b"D"

_ORD_NONE = _TAG_NONE[0]
_ORD_TRUE = _TAG_TRUE[0]
_ORD_FALSE = _TAG_FALSE[0]
_ORD_INT = _TAG_INT[0]
_ORD_BYTES = _TAG_BYTES[0]
_ORD_STR = _TAG_STR[0]
_ORD_LIST = _TAG_LIST[0]
_ORD_DICT = _TAG_DICT[0]

#: Canonical integers are fixed-width 128-bit two's complement.
INT_MIN = -(2**127)
INT_MAX = 2**127 - 1


def _encode_length(n: int) -> bytes:
    return n.to_bytes(8, "big")


def encode(value: Any) -> bytes:
    """Canonical bytes of ``value``.

    Scalar fast paths skip the buffer round trip; their output is pinned
    byte-identical to :func:`encode_into` by the golden-vector tests.
    """
    kind = type(value)  # exact type: bool must NOT take the int path
    if kind is bytes:
        return _TAG_BYTES + len(value).to_bytes(8, "big") + value
    if kind is str:
        raw = value.encode("utf-8")
        return _TAG_STR + len(raw).to_bytes(8, "big") + raw
    if kind is int:
        try:
            return _TAG_INT + value.to_bytes(16, "big", signed=True)
        except OverflowError:
            raise SerdeError(
                f"integer {value} exceeds the canonical 128-bit range "
                f"[{INT_MIN}, {INT_MAX}]"
            ) from None
    if kind is list:
        # flat scalar lists (the operation-tuple shape) in one join; any
        # nested or exotic item bails to the general recursive encoder
        parts = [_TAG_LIST + len(value).to_bytes(8, "big")]
        for item in value:
            kind = type(item)
            if kind is str:
                raw = item.encode("utf-8")
                parts.append(_TAG_STR + len(raw).to_bytes(8, "big") + raw)
            elif kind is bytes:
                parts.append(
                    _TAG_BYTES + len(item).to_bytes(8, "big") + item
                )
            elif kind is int:
                try:
                    parts.append(
                        _TAG_INT + item.to_bytes(16, "big", signed=True)
                    )
                except OverflowError:
                    raise SerdeError(
                        f"integer {item} exceeds the canonical 128-bit "
                        f"range [{INT_MIN}, {INT_MAX}]"
                    ) from None
            elif item is None:
                parts.append(_TAG_NONE)
            elif item is True:
                parts.append(_TAG_TRUE)
            elif item is False:
                parts.append(_TAG_FALSE)
            else:
                return _encode_general(value)
        return b"".join(parts)
    return _encode_general(value)


def _encode_general(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes.

    >>> encode([1, b"x"]) != encode([1, b"y"])
    True
    """
    buf = bytearray()
    _encode_into_pure(buf, value)
    return bytes(buf)


def encode_into(buf: bytearray, value: Any) -> None:
    """Append the canonical encoding of ``value`` to ``buf``.

    Produces exactly the bytes :func:`encode` would, without building
    intermediate objects for nested containers.
    """
    if value is None:
        buf += _TAG_NONE
        return
    if value is True:
        buf += _TAG_TRUE
        return
    if value is False:
        buf += _TAG_FALSE
        return
    if isinstance(value, int):
        try:
            payload = value.to_bytes(16, "big", signed=True)
        except OverflowError:
            raise SerdeError(
                f"integer {value} exceeds the canonical 128-bit range "
                f"[{INT_MIN}, {INT_MAX}]"
            ) from None
        buf += _TAG_INT
        buf += payload
        return
    if isinstance(value, (bytes, bytearray)):
        buf += _TAG_BYTES
        buf += len(value).to_bytes(8, "big")
        buf += value
        return
    if isinstance(value, str):
        raw = value.encode("utf-8")
        buf += _TAG_STR
        buf += len(raw).to_bytes(8, "big")
        buf += raw
        return
    if isinstance(value, (list, tuple)):
        buf += _TAG_LIST
        buf += len(value).to_bytes(8, "big")
        for item in value:
            _encode_into_pure(buf, item)
        return
    if isinstance(value, dict):
        items = [(encode(key), item) for key, item in value.items()]
        items.sort(key=lambda kv: kv[0])
        buf += _TAG_DICT
        buf += len(items).to_bytes(8, "big")
        for encoded_key, item in items:
            buf += encoded_key
            _encode_into_pure(buf, item)
        return
    raise SerdeError(f"unsupported type for canonical encoding: {type(value)!r}")


#: Pure recursion pinned by name: when the compiled codec rebinds the
#: public ``encode_into`` below, the pure walker must keep calling
#: *itself* (the C codec routes declined values back here — recursing
#: through the rebound name would ping-pong between the two forever).
_encode_into_pure = encode_into


def encode_list_header(buf: bytearray, count: int) -> None:
    """Append the framing of a ``count``-item list; the caller appends the
    encoded items."""
    buf += _TAG_LIST
    buf += count.to_bytes(8, "big")


def encode_dict_header(buf: bytearray, count: int) -> None:
    """Append the framing of a ``count``-item dict; the caller appends
    encoded ``key || value`` pairs sorted by encoded key."""
    buf += _TAG_DICT
    buf += count.to_bytes(8, "big")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`.  Raises :class:`SerdeError` on malformed input."""
    view = memoryview(data)
    value, offset = _decode_at(view, 0)
    if offset != len(view):
        raise SerdeError(f"{len(view) - offset} trailing bytes after value")
    return value


def _decode_at(data: memoryview, offset: int) -> tuple[Any, int]:
    # Bounds checks are inlined (not via _read): this function runs twice
    # per protocol round trip and a helper call per field is measurable.
    size = len(data)
    if offset >= size:
        raise SerdeError("truncated encoding")
    tag = data[offset]
    offset += 1
    if tag == _ORD_INT:
        end = offset + 16
        if end > size:
            raise SerdeError("truncated encoding")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _ORD_BYTES:
        header_end = offset + 8
        if header_end > size:
            raise SerdeError("truncated encoding")
        end = header_end + int.from_bytes(data[offset:header_end], "big")
        if end > size:
            raise SerdeError("truncated encoding")
        return bytes(data[header_end:end]), end
    if tag == _ORD_STR:
        header_end = offset + 8
        if header_end > size:
            raise SerdeError("truncated encoding")
        end = header_end + int.from_bytes(data[offset:header_end], "big")
        if end > size:
            raise SerdeError("truncated encoding")
        try:
            return str(data[header_end:end], "utf-8"), end
        except UnicodeDecodeError as exc:
            raise SerdeError(f"malformed utf-8 in string: {exc}") from exc
    if tag == _ORD_LIST:
        header_end = offset + 8
        if header_end > size:
            raise SerdeError("truncated encoding")
        count = int.from_bytes(data[offset:header_end], "big")
        offset = header_end
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            append(item)
        return items, offset
    if tag == _ORD_DICT:
        header_end = offset + 8
        if header_end > size:
            raise SerdeError("truncated encoding")
        count = int.from_bytes(data[offset:header_end], "big")
        offset = header_end
        result = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            value, offset = _decode_at(data, offset)
            result[key] = value
        return result, offset
    if tag == _ORD_NONE:
        return None, offset
    if tag == _ORD_TRUE:
        return True, offset
    if tag == _ORD_FALSE:
        return False, offset
    raise SerdeError(f"unknown type tag {bytes([tag])!r}")


#: The pure-Python codec, under stable names (tests exercise both
#: backends through these regardless of which one the public names use).
encode_pure = encode
decode_pure = decode

if _NATIVE is not None:
    # The C codec routes every value it declines (ints beyond 64 bits,
    # subclasses, depth > 64, malformed blobs, ...) through the pure
    # functions above, so the public names can *be* the C functions: the
    # hot path pays no Python wrapper frame, and edge cases keep the
    # exact pure-path bytes, errors and messages.
    _NATIVE.set_fallback(encode_pure, decode_pure)
    encode = _NATIVE.encode
    decode = _NATIVE.decode

    def encode_into(buf: bytearray, value: Any) -> None:  # noqa: F811
        """Append the canonical encoding of ``value`` to ``buf``
        (compiled-codec binding of the pure function above)."""
        buf += _NATIVE.encode(value)
