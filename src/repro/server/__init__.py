"""The untrusted server substrate.

The server ``S`` hosts the trusted execution context, owns stable storage,
and forwards messages between clients and ``T`` (Sec. 2.1).  A *correct*
server does all of this faithfully (FIFO, returns the freshest stored
blob); a *malicious* server controls every interaction of ``T`` with its
environment (Sec. 2.3).

- :mod:`repro.server.storage` — versioned stable storage + disk timing model;
- :mod:`repro.server.host` — the correct server runtime;
- :mod:`repro.server.batching` — the bounded request batch queue of Sec. 5.3
  and the bounded batch-size histogram;
- :mod:`repro.server.dispatch` — the per-group batch dispatch loop shared
  by every cluster runtime;
- :mod:`repro.server.faults` — the malicious server: rollback, forking,
  replay, tampering and partitioning primitives used by attack tests.
"""

from repro.server.batching import BatchQueue, BatchSizeHistogram
from repro.server.dispatch import GroupDispatcher
from repro.server.faults import MaliciousServer
from repro.server.host import ServerHost
from repro.server.storage import DiskModel, StableStorage

__all__ = [
    "StableStorage",
    "DiskModel",
    "ServerHost",
    "BatchQueue",
    "BatchSizeHistogram",
    "GroupDispatcher",
    "MaliciousServer",
]
