"""Bounded request batching (Sec. 5.2/5.3).

The prototype collects incoming INVOKE messages in a bounded queue; once the
queue reaches its limit *or no more client requests are available*, the
server performs a single ecall with the whole batch.  The enclave processes
the batch sequentially, producing one REPLY per request, and the application
and protocol state is stored **once per batch** — this amortisation is why
the batching variants scale in Fig. 6.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


class BatchQueue(Generic[T]):
    """Collects items and flushes them in bounded batches.

    ``flush_callback`` receives the list of items in arrival order.  The
    queue auto-flushes when ``limit`` items are pending; callers flush any
    remainder (the "no more requests available" case) explicitly via
    :meth:`flush`.
    """

    def __init__(self, limit: int, flush_callback: Callable[[list[T]], None]) -> None:
        if limit < 1:
            raise ConfigurationError("batch limit must be >= 1")
        self.limit = limit
        self._flush_callback = flush_callback
        self._pending: list[T] = []
        self.batches_flushed = 0
        self.items_flushed = 0

    def add(self, item: T) -> None:
        self._pending.append(item)
        if len(self._pending) >= self.limit:
            self.flush()

    def flush(self) -> int:
        """Flush pending items (if any).  Returns the batch size flushed."""
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self.batches_flushed += 1
        self.items_flushed += len(batch)
        self._flush_callback(batch)
        return len(batch)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def mean_batch_size(self) -> float:
        if self.batches_flushed == 0:
            return 0.0
        return self.items_flushed / self.batches_flushed
