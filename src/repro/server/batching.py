"""Bounded request batching (Sec. 5.2/5.3).

The prototype collects incoming INVOKE messages in a bounded queue; once the
queue reaches its limit *or no more client requests are available*, the
server performs a single ecall with the whole batch.  The enclave processes
the batch sequentially, producing one REPLY per request, and the application
and protocol state is stored **once per batch** — this amortisation is why
the batching variants scale in Fig. 6.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


class BatchSizeHistogram:
    """Bounded batch-size statistics: ``{size: count}`` plus totals.

    Replaces the unbounded per-batch size list the cluster runtimes used
    to keep — the number of distinct sizes is capped by the batch limit,
    so memory stays O(limit) over arbitrarily long runs while the mean,
    max and full distribution remain available.
    """

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.batches = 0
        self.items = 0

    def record(self, size: int) -> None:
        self.batches += 1
        self.items += size
        self.counts[size] = self.counts.get(size, 0) + 1

    @property
    def mean(self) -> float:
        return self.items / self.batches if self.batches else 0.0

    @property
    def max_size(self) -> int:
        return max(self.counts) if self.counts else 0

    def as_dict(self) -> dict[int, int]:
        """Size -> count snapshot (sorted by size for stable output)."""
        return {size: self.counts[size] for size in sorted(self.counts)}

    def export_to(self, histogram) -> None:
        """Mirror this distribution into a registry histogram
        (:class:`repro.obs.metrics.Histogram`), wholesale.

        This is the read-through bridge the cluster's snapshot collector
        uses: the dispatch hot path keeps writing to this object (one
        dict update per batch, no registry indirection), and the registry
        copy is refreshed only when a snapshot is taken.  The
        ``dispatcher.histogram`` / ``queue.histogram`` accessors stay the
        authoritative source."""
        histogram.set_from_counts(self.counts)


class BatchQueue(Generic[T]):
    """Collects items and flushes them in bounded batches.

    ``flush_callback`` receives the list of items in arrival order.  The
    queue auto-flushes when ``limit`` items are pending; callers flush any
    remainder (the "no more requests available" case) explicitly via
    :meth:`flush`.

    A consumer that gates batch formation on external state (the shared
    :class:`~repro.server.dispatch.GroupDispatcher`, whose enclave may be
    busy) constructs the queue without a callback and drains it with
    :meth:`take` instead; both drain paths feed the same counters and
    :class:`BatchSizeHistogram`, so batch statistics come from one place.
    """

    def __init__(
        self,
        limit: int,
        flush_callback: Callable[[list[T]], None] | None = None,
    ) -> None:
        if limit < 1:
            raise ConfigurationError("batch limit must be >= 1")
        self.limit = limit
        self._flush_callback = flush_callback
        self._pending: list[T] = []
        self.batches_flushed = 0
        self.items_flushed = 0
        self.histogram = BatchSizeHistogram()

    def add(self, item: T) -> None:
        self._pending.append(item)
        if self._flush_callback is not None and len(self._pending) >= self.limit:
            self.flush()

    def flush(self) -> int:
        """Flush pending items (if any).  Returns the batch size flushed."""
        if not self._pending:
            return 0
        if self._flush_callback is None:
            raise ConfigurationError(
                "queue was built without a flush callback; drain with take()"
            )
        batch, self._pending = self._pending, []
        self.batches_flushed += 1
        self.items_flushed += len(batch)
        self.histogram.record(len(batch))
        self._flush_callback(batch)
        return len(batch)

    def take(self) -> list[T]:
        """Pop up to ``limit`` pending items, counting them as flushed."""
        pending = self._pending
        batch = pending[: self.limit]
        if batch:
            del pending[: len(batch)]
            self.batches_flushed += 1
            self.items_flushed += len(batch)
            self.histogram.record(len(batch))
        return batch

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def mean_batch_size(self) -> float:
        if self.batches_flushed == 0:
            return 0.0
        return self.items_flushed / self.batches_flushed
