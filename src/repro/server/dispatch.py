"""The per-group batch dispatch loop (Sec. 5.3), shared by every cluster.

``SimulatedCluster`` and ``ShardedCluster`` used to carry near-identical
~60-line ``_maybe_dispatch`` bodies — batch slicing, enclave-busy gating,
deliver scheduling on the virtual clock — differing only in how a
detected violation is recorded.  :class:`GroupDispatcher` is that loop,
extracted once: the cluster runtimes supply the transport (``send_batch``
into their host, ``deliver`` back onto their per-client channels) and
optional hooks, so Sec. 5.2/5.3 batching changes land in one place and
reach every runtime at once.

Dispatch semantics (unchanged from the paper's prototype):

- requests queue in a bounded :class:`~repro.server.batching.BatchQueue`;
- a batch is cut whenever the enclave is idle and requests are pending —
  up to ``batch_limit`` of them ("once the queue reaches its limit *or no
  more client requests are available*", Sec. 5.3);
- the whole batch enters the enclave in one ecall; replies are delivered
  after a virtual service interval proportional to the batch size, after
  which the loop immediately tries to cut the next batch;
- a :class:`~repro.errors.SecurityViolation` raised by the enclave halts
  the dispatcher: pending requests stay queued, nothing further enters
  the enclave.  With an ``on_violation`` hook the violation is recorded
  and the simulation continues (the sharded runtime's per-shard
  attribution); without one it propagates (the single-group runtime's
  fail-stop behaviour).

Batch-size statistics live in the queue's
:class:`~repro.server.batching.BatchSizeHistogram` — one bounded source
both cluster stats objects read from.

The router's transaction group commit composes with this loop rather
than extending it: a group of prepares/decisions flushed against one
(client, shard) machine arrives here as *one* queued request (a single
``TXN_PREPARE_MANY``/``TXN_DECIDE_MANY`` operation), so it crosses the
boundary as one unit — one queue slot, one slice of the batch, one
sealed operation in the ecall — and the per-batch service interval is
paid once for the whole group.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SecurityViolation
from repro.net.simulation import ENCLAVE_SERVICE_INTERVAL, Simulator
from repro.server.batching import BatchQueue, BatchSizeHistogram
from repro.server.execution import SerialBackend


class GroupDispatcher:
    """One LCM group's request-batching loop over the virtual clock.

    Parameters
    ----------
    sim:
        The discrete-event simulator shared by the cluster.
    send_batch:
        ``(batch: list[(client_id, message)]) -> list[reply]`` — one ecall
        into the group's enclave (or the malicious server's per-client
        fallback).
    deliver:
        ``(client_id, reply) -> None`` — route one reply onto the
        client's downlink channel.
    batch_limit:
        Bounded batch queue size (Sec. 5.3).
    label:
        Event label for the simulator agenda (diagnostics).
    service_interval:
        Virtual enclave service time per request in a batch.
    on_violation:
        Optional hook for a :class:`SecurityViolation` raised by
        ``send_batch``.  When set, the dispatcher halts itself, calls the
        hook and returns (the cluster records the violation); when
        ``None`` the exception propagates.
    on_idle:
        Optional hook that runs each time the enclave goes idle after a
        delivery, *before* the next batch is cut — the sharded runtime
        runs deferred rebalances at exactly this batch boundary.
    on_batch_complete:
        Optional hook ``(batch_size) -> None`` fired after a batch's
        replies are delivered but *before* the ``on_idle`` boundary hook
        — the streaming verifier harvests audit evidence here, so it
        observes every batch's records before a deferred rebalance or
        reshard runs at the same boundary.
    boundary_gate:
        Optional predicate refining what counts as a *cuttable* batch
        boundary for ``on_idle``.  A cross-shard transaction's prepare
        locks keys whose decision is still in flight: the moment between
        the prepare's batch and the decision's batch is an enclave-idle
        point but **not** a safe boundary (a rebalance or arc handoff
        landing there would move keys a pending decision still
        addresses).  When the gate returns False the idle hook is
        skipped for this delivery and re-tried at the next one — which is
        guaranteed to come, because the pending decision itself arrives
        through this dispatcher (the idle hooks are level-triggered, so
        nothing is lost by skipping).  Ordinary dispatching is
        unaffected; only the boundary hook waits.
    execution:
        The :mod:`~repro.server.execution` backend that runs the batch
        ecall.  The serial default executes at submit time (historical
        semantics); the threaded backend runs it on a worker pool and
        the dispatcher joins the result at the scheduled delivery event,
        so replies re-enter the virtual-time event order at the batch
        boundary regardless of wall-clock completion.  A violation
        raised by the worker is handled at that same boundary with the
        identical halt/record/propagate policy.
    take_seal:
        ``() -> flush handle | None`` — consume the deferred state-seal
        handle the transport captured for the batch just delivered
        (pipelined execution backend).  When set *and* the backend is
        pipelined, the dispatcher runs that flush on the worker pool so
        it overlaps — on the wall clock — with the next batch already in
        the enclave; the virtual schedule stays exactly the serial
        backend's, so every trace remains byte-identical (the parity
        contract).  If the backend additionally sets ``virtual_split``,
        the split is applied to the performance model too: replies
        deliver after ``(1 - seal_share)`` of the virtual service time
        and a separate seal-stage event completes after the rest.  Until
        that event fires the dispatcher reports :attr:`sealing` and
        withholds the ``on_idle`` boundary (reshard fences, handoff
        export), so every consumer of the stored state observes a
        durably completed seal.  In either mode seal flushes are
        FIFO-chained on the pool — a later batch's flush never outruns
        an earlier one — and when the dispatcher goes idle with nothing
        left to overlap, the flush is joined on the spot, so storage
        read after a drained run always holds the final seal.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        send_batch: Callable[[list[tuple[int, bytes]]], list[bytes]],
        deliver: Callable[[int, bytes], None],
        batch_limit: int = 16,
        label: str = "enclave-batch",
        service_interval: float = ENCLAVE_SERVICE_INTERVAL,
        on_violation: Callable[[SecurityViolation], None] | None = None,
        on_idle: Callable[[], None] | None = None,
        on_batch_complete: Callable[[int], None] | None = None,
        boundary_gate: Callable[[], bool] | None = None,
        execution=None,
        take_seal: Callable[[], object | None] | None = None,
    ) -> None:
        self.queue: BatchQueue[tuple[int, bytes]] = BatchQueue(batch_limit)
        self.busy = False
        self.halted = False
        self._sim = sim
        self._send_batch = send_batch
        self._deliver = deliver
        self._label = label
        self._service_interval = service_interval
        self._on_violation = on_violation
        self._on_idle = on_idle
        self._on_batch_complete = on_batch_complete
        self._boundary_gate = boundary_gate
        self._execution = execution if execution is not None else SerialBackend()
        #: in-flight batch result, joined at the delivery event (and by
        #: :meth:`quiesce` when a fault is injected mid-flight)
        self._pending: Callable[[], list[bytes]] | None = None
        #: deliveries whose boundary hook was withheld mid-transaction
        self.boundaries_deferred = 0
        #: size of the batch currently delivering replies (None outside
        #: the delivery loop) — lets the tracer stamp spans with the
        #: batch they travelled in without tagging each reply
        self.delivering_batch_size: int | None = None
        #: high-watermark of the request queue depth — the control-plane
        #: gauge source (one compare per enqueue; the registry is only
        #: consulted at snapshot time)
        self.queue_depth_peak = 0
        # --- pipelined seal stage (active only when the backend defers) ---
        self._take_seal = take_seal
        self._pipeline = take_seal is not None and getattr(
            self._execution, "pipelined", False
        )
        # the virtual-time split is the opt-in cost-model refinement the
        # frontier harness measures; the default pipelined mode overlaps
        # only wall-clock work and keeps the serial event schedule
        self._seal_share = (
            getattr(self._execution, "seal_share", 0.0)
            if self._pipeline
            and getattr(self._execution, "virtual_split", False)
            else 0.0
        )
        #: seal-stage events scheduled but not yet completed
        self._seal_pending = 0
        #: virtual time the (single) seal unit frees up — consecutive
        #: batches' seal stages queue behind each other, exactly like a
        #: second pipeline stage would
        self._seal_free_at = 0.0
        #: join of the most recently submitted wall-clock flush, chained
        #: so per-shard seal order holds on the shared pool
        self._last_flush_join: Callable[[], None] | None = None
        #: batches whose state seal actually ran off the critical path
        self.seals_deferred = 0

    # ---------------------------------------------------------------- intake

    def enqueue(self, client_id: int, message: bytes) -> None:
        """Queue one INVOKE and cut a batch if the enclave is idle."""
        self.queue.add((client_id, message))
        depth = self.queue.pending_count
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth
        self.maybe_dispatch()

    def halt(self) -> None:
        """Stop cutting batches (pending requests stay queued).

        Called by the cluster when a violation is detected outside the
        ecall itself — e.g. a client rejecting a forked reply."""
        self.halted = True

    @property
    def healthy(self) -> bool:
        """False once the dispatcher halted on a detected violation."""
        return not self.halted

    # -------------------------------------------------------------- dispatch

    def maybe_dispatch(self) -> None:
        """Cut and serve one batch if the enclave is idle (Sec. 5.3)."""
        if self.busy or self.halted or not self.queue.pending_count:
            return
        batch = self.queue.take()
        self.busy = True
        try:
            pending = self._execution.submit(lambda: self._send_batch(batch))
        except SecurityViolation as violation:
            self._handle_violation(violation)
            return
        self._pending = pending

        def deliver() -> None:
            self._pending = None
            try:
                replies = pending()
            except SecurityViolation as violation:
                self._handle_violation(violation)
                return
            self.delivering_batch_size = len(batch)
            try:
                for (client_id, _), reply in zip(batch, replies):
                    self._deliver(client_id, reply)
            finally:
                self.delivering_batch_size = None
            self.busy = False
            if self._pipeline:
                self._schedule_seal(len(batch))
            if self._on_batch_complete is not None:
                # evidence harvest runs before the idle hook: the streaming
                # verifier must see this batch's audit suffix before a
                # deferred rebalance folds the live log into the prefix
                self._on_batch_complete(len(batch))
            self._fire_idle()
            self.maybe_dispatch()
            if self._pipeline and not self._seal_share and not self.busy:
                # wall-only mode went idle with nothing to overlap the
                # flush with: make the seal durable before anything reads
                # storage after the run drains
                self._drain_flush()

        # model the enclave service interval so more requests can queue;
        # under a virtual-split pipelined backend only the
        # unseal/execute/reply share sits on the delivery path — the seal
        # share becomes its own stage, scheduled at delivery time by
        # _schedule_seal
        service = self._service_interval * len(batch)
        if self._seal_share:
            service *= 1.0 - self._seal_share
        self._sim.schedule(service, deliver, label=self._label)

    def _schedule_seal(self, batch_size: int) -> None:
        """Take the delivered batch's state-seal stage off the critical
        path: start the wall-clock flush (if the enclave actually
        deferred one) and, under ``virtual_split``, schedule its virtual
        completion.

        The virtual model treats the seal as a second pipeline stage
        with a single unit: it starts when the batch delivers *and* the
        previous seal finished, and takes ``seal_share`` of the batch's
        service time.  It is charged for every batch — also when the
        enclave sealed synchronously (cache invalidation, membership
        events, malicious hosts without the deferred surface) — so the
        virtual schedule never depends on which case occurred.
        """
        seal_work = self._take_seal()
        join: Callable[[], None] | None = None
        if seal_work is not None:
            self.seals_deferred += 1
            prev = self._last_flush_join

            def chained(prev=prev, run=seal_work.run) -> None:
                if prev is not None:
                    try:
                        prev()
                    except Exception:
                        pass  # surfaced at the earlier seal's own join event
                run()

            submit_flush = getattr(self._execution, "submit_flush", None)
            if submit_flush is not None:
                join = submit_flush(chained)
            else:
                chained()
            self._last_flush_join = join

        if not self._seal_share:
            # wall-only mode: no virtual seal event — the flush joins at
            # the next batch's chain, a barrier ecall, quiesce, or
            # deliver()'s idle drain, whichever comes first
            return

        now = self._sim.now
        seal_time = self._service_interval * batch_size * self._seal_share
        ready_at = max(now, self._seal_free_at) + seal_time
        self._seal_free_at = ready_at
        self._seal_pending += 1

        def seal_done(join=join) -> None:
            if join is not None:
                join()  # a flush failure surfaces at its own seal event
            self._seal_pending -= 1
            self._fire_idle()

        self._sim.schedule(ready_at - now, seal_done, label=f"{self._label}-seal")

    def _drain_flush(self) -> None:
        """Join the outstanding wall-clock flush (idle drain).

        A flush failure propagates here — the same fail-stop surface a
        synchronous seal failure would have had inside the batch ecall.
        """
        flush = self._last_flush_join
        if flush is not None:
            self._last_flush_join = None
            flush()

    @property
    def sealing(self) -> bool:
        """True while a batch's seal stage has not virtually completed."""
        return self._seal_pending > 0

    def quiesce(self) -> None:
        """Join any in-flight batch ecall without consuming its delivery.

        Fault injection (``crash_shard``) fires at a virtual time that
        may fall between a batch's submit and its delivery event.  The
        serial backend already ran the ecall at submit time, so the
        crash can only land between ecalls; this blocks until a threaded
        worker's ecall has likewise left the enclave, preserving the
        ecall-is-atomic semantics (and keeping the crash path's own
        audit-export ecall from entering the enclave concurrently).  The
        joined result is *not* delivered here — the scheduled delivery
        event re-joins the same future and handles replies or violations
        exactly as it would have."""
        pending = self._pending
        if pending is not None:
            try:
                pending()
            except Exception:
                pass  # surfaced again (and handled) at the delivery event
        flush = self._last_flush_join
        if flush is not None:
            try:
                flush()
            except Exception:
                pass  # surfaced again at the seal's own join event

    def _handle_violation(self, violation: SecurityViolation) -> None:
        """Server-side detection: the context halted mid-batch.  Stop
        dispatching (pending requests stay queued) and either let the
        cluster record it or fail the whole run.  With the serial
        backend this fires at submit time; with the threaded backend,
        at the delivery event where the worker's result is joined."""
        self.busy = False
        self.halt()
        if self._on_violation is None:
            raise violation
        self._on_violation(violation)

    def _fire_idle(self) -> None:
        """Run the batch-boundary hook, withholding it while the boundary
        gate reports the enclave mid-transaction.  No poll is scheduled:
        the decision that re-opens the gate is itself a message through
        this dispatcher, so its delivery re-fires the (level-triggered)
        hook — and a run that ends with an unresolved transaction drains
        instead of spinning."""
        if self._on_idle is None:
            return
        if self._seal_pending:
            # the durability gate: a batch boundary is not safe until the
            # delivered batch's state seal virtually completed (the event
            # that decrements _seal_pending re-fires this hook)
            self.boundaries_deferred += 1
            return
        if self._boundary_gate is None or self._boundary_gate():
            self._on_idle()
            return
        self.boundaries_deferred += 1

    # --------------------------------------------------------------- queries

    @property
    def batches(self) -> int:
        return self.queue.batches_flushed

    @property
    def items(self) -> int:
        return self.queue.items_flushed

    @property
    def histogram(self) -> BatchSizeHistogram:
        return self.queue.histogram

    @property
    def pending(self) -> int:
        return self.queue.pending_count
