"""The per-group batch dispatch loop (Sec. 5.3), shared by every cluster.

``SimulatedCluster`` and ``ShardedCluster`` used to carry near-identical
~60-line ``_maybe_dispatch`` bodies — batch slicing, enclave-busy gating,
deliver scheduling on the virtual clock — differing only in how a
detected violation is recorded.  :class:`GroupDispatcher` is that loop,
extracted once: the cluster runtimes supply the transport (``send_batch``
into their host, ``deliver`` back onto their per-client channels) and
optional hooks, so Sec. 5.2/5.3 batching changes land in one place and
reach every runtime at once.

Dispatch semantics (unchanged from the paper's prototype):

- requests queue in a bounded :class:`~repro.server.batching.BatchQueue`;
- a batch is cut whenever the enclave is idle and requests are pending —
  up to ``batch_limit`` of them ("once the queue reaches its limit *or no
  more client requests are available*", Sec. 5.3);
- the whole batch enters the enclave in one ecall; replies are delivered
  after a virtual service interval proportional to the batch size, after
  which the loop immediately tries to cut the next batch;
- a :class:`~repro.errors.SecurityViolation` raised by the enclave halts
  the dispatcher: pending requests stay queued, nothing further enters
  the enclave.  With an ``on_violation`` hook the violation is recorded
  and the simulation continues (the sharded runtime's per-shard
  attribution); without one it propagates (the single-group runtime's
  fail-stop behaviour).

Batch-size statistics live in the queue's
:class:`~repro.server.batching.BatchSizeHistogram` — one bounded source
both cluster stats objects read from.

The router's transaction group commit composes with this loop rather
than extending it: a group of prepares/decisions flushed against one
(client, shard) machine arrives here as *one* queued request (a single
``TXN_PREPARE_MANY``/``TXN_DECIDE_MANY`` operation), so it crosses the
boundary as one unit — one queue slot, one slice of the batch, one
sealed operation in the ecall — and the per-batch service interval is
paid once for the whole group.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SecurityViolation
from repro.net.simulation import ENCLAVE_SERVICE_INTERVAL, Simulator
from repro.server.batching import BatchQueue, BatchSizeHistogram
from repro.server.execution import SerialBackend


class GroupDispatcher:
    """One LCM group's request-batching loop over the virtual clock.

    Parameters
    ----------
    sim:
        The discrete-event simulator shared by the cluster.
    send_batch:
        ``(batch: list[(client_id, message)]) -> list[reply]`` — one ecall
        into the group's enclave (or the malicious server's per-client
        fallback).
    deliver:
        ``(client_id, reply) -> None`` — route one reply onto the
        client's downlink channel.
    batch_limit:
        Bounded batch queue size (Sec. 5.3).
    label:
        Event label for the simulator agenda (diagnostics).
    service_interval:
        Virtual enclave service time per request in a batch.
    on_violation:
        Optional hook for a :class:`SecurityViolation` raised by
        ``send_batch``.  When set, the dispatcher halts itself, calls the
        hook and returns (the cluster records the violation); when
        ``None`` the exception propagates.
    on_idle:
        Optional hook that runs each time the enclave goes idle after a
        delivery, *before* the next batch is cut — the sharded runtime
        runs deferred rebalances at exactly this batch boundary.
    on_batch_complete:
        Optional hook ``(batch_size) -> None`` fired after a batch's
        replies are delivered but *before* the ``on_idle`` boundary hook
        — the streaming verifier harvests audit evidence here, so it
        observes every batch's records before a deferred rebalance or
        reshard runs at the same boundary.
    boundary_gate:
        Optional predicate refining what counts as a *cuttable* batch
        boundary for ``on_idle``.  A cross-shard transaction's prepare
        locks keys whose decision is still in flight: the moment between
        the prepare's batch and the decision's batch is an enclave-idle
        point but **not** a safe boundary (a rebalance or arc handoff
        landing there would move keys a pending decision still
        addresses).  When the gate returns False the idle hook is
        skipped for this delivery and re-tried at the next one — which is
        guaranteed to come, because the pending decision itself arrives
        through this dispatcher (the idle hooks are level-triggered, so
        nothing is lost by skipping).  Ordinary dispatching is
        unaffected; only the boundary hook waits.
    execution:
        The :mod:`~repro.server.execution` backend that runs the batch
        ecall.  The serial default executes at submit time (historical
        semantics); the threaded backend runs it on a worker pool and
        the dispatcher joins the result at the scheduled delivery event,
        so replies re-enter the virtual-time event order at the batch
        boundary regardless of wall-clock completion.  A violation
        raised by the worker is handled at that same boundary with the
        identical halt/record/propagate policy.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        send_batch: Callable[[list[tuple[int, bytes]]], list[bytes]],
        deliver: Callable[[int, bytes], None],
        batch_limit: int = 16,
        label: str = "enclave-batch",
        service_interval: float = ENCLAVE_SERVICE_INTERVAL,
        on_violation: Callable[[SecurityViolation], None] | None = None,
        on_idle: Callable[[], None] | None = None,
        on_batch_complete: Callable[[int], None] | None = None,
        boundary_gate: Callable[[], bool] | None = None,
        execution=None,
    ) -> None:
        self.queue: BatchQueue[tuple[int, bytes]] = BatchQueue(batch_limit)
        self.busy = False
        self.halted = False
        self._sim = sim
        self._send_batch = send_batch
        self._deliver = deliver
        self._label = label
        self._service_interval = service_interval
        self._on_violation = on_violation
        self._on_idle = on_idle
        self._on_batch_complete = on_batch_complete
        self._boundary_gate = boundary_gate
        self._execution = execution if execution is not None else SerialBackend()
        #: in-flight batch result, joined at the delivery event (and by
        #: :meth:`quiesce` when a fault is injected mid-flight)
        self._pending: Callable[[], list[bytes]] | None = None
        #: deliveries whose boundary hook was withheld mid-transaction
        self.boundaries_deferred = 0
        #: size of the batch currently delivering replies (None outside
        #: the delivery loop) — lets the tracer stamp spans with the
        #: batch they travelled in without tagging each reply
        self.delivering_batch_size: int | None = None
        #: high-watermark of the request queue depth — the control-plane
        #: gauge source (one compare per enqueue; the registry is only
        #: consulted at snapshot time)
        self.queue_depth_peak = 0

    # ---------------------------------------------------------------- intake

    def enqueue(self, client_id: int, message: bytes) -> None:
        """Queue one INVOKE and cut a batch if the enclave is idle."""
        self.queue.add((client_id, message))
        depth = self.queue.pending_count
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth
        self.maybe_dispatch()

    def halt(self) -> None:
        """Stop cutting batches (pending requests stay queued).

        Called by the cluster when a violation is detected outside the
        ecall itself — e.g. a client rejecting a forked reply."""
        self.halted = True

    @property
    def healthy(self) -> bool:
        """False once the dispatcher halted on a detected violation."""
        return not self.halted

    # -------------------------------------------------------------- dispatch

    def maybe_dispatch(self) -> None:
        """Cut and serve one batch if the enclave is idle (Sec. 5.3)."""
        if self.busy or self.halted or not self.queue.pending_count:
            return
        batch = self.queue.take()
        self.busy = True
        try:
            pending = self._execution.submit(lambda: self._send_batch(batch))
        except SecurityViolation as violation:
            self._handle_violation(violation)
            return
        self._pending = pending

        def deliver() -> None:
            self._pending = None
            try:
                replies = pending()
            except SecurityViolation as violation:
                self._handle_violation(violation)
                return
            self.delivering_batch_size = len(batch)
            try:
                for (client_id, _), reply in zip(batch, replies):
                    self._deliver(client_id, reply)
            finally:
                self.delivering_batch_size = None
            self.busy = False
            if self._on_batch_complete is not None:
                # evidence harvest runs before the idle hook: the streaming
                # verifier must see this batch's audit suffix before a
                # deferred rebalance folds the live log into the prefix
                self._on_batch_complete(len(batch))
            self._fire_idle()
            self.maybe_dispatch()

        # model the enclave service interval so more requests can queue
        self._sim.schedule(
            self._service_interval * len(batch), deliver, label=self._label
        )

    def quiesce(self) -> None:
        """Join any in-flight batch ecall without consuming its delivery.

        Fault injection (``crash_shard``) fires at a virtual time that
        may fall between a batch's submit and its delivery event.  The
        serial backend already ran the ecall at submit time, so the
        crash can only land between ecalls; this blocks until a threaded
        worker's ecall has likewise left the enclave, preserving the
        ecall-is-atomic semantics (and keeping the crash path's own
        audit-export ecall from entering the enclave concurrently).  The
        joined result is *not* delivered here — the scheduled delivery
        event re-joins the same future and handles replies or violations
        exactly as it would have."""
        pending = self._pending
        if pending is None:
            return
        try:
            pending()
        except Exception:
            pass  # surfaced again (and handled) at the delivery event

    def _handle_violation(self, violation: SecurityViolation) -> None:
        """Server-side detection: the context halted mid-batch.  Stop
        dispatching (pending requests stay queued) and either let the
        cluster record it or fail the whole run.  With the serial
        backend this fires at submit time; with the threaded backend,
        at the delivery event where the worker's result is joined."""
        self.busy = False
        self.halt()
        if self._on_violation is None:
            raise violation
        self._on_violation(violation)

    def _fire_idle(self) -> None:
        """Run the batch-boundary hook, withholding it while the boundary
        gate reports the enclave mid-transaction.  No poll is scheduled:
        the decision that re-opens the gate is itself a message through
        this dispatcher, so its delivery re-fires the (level-triggered)
        hook — and a run that ends with an unresolved transaction drains
        instead of spinning."""
        if self._on_idle is None:
            return
        if self._boundary_gate is None or self._boundary_gate():
            self._on_idle()
            return
        self.boundaries_deferred += 1

    # --------------------------------------------------------------- queries

    @property
    def batches(self) -> int:
        return self.queue.batches_flushed

    @property
    def items(self) -> int:
        return self.queue.items_flushed

    @property
    def histogram(self) -> BatchSizeHistogram:
        return self.queue.histogram

    @property
    def pending(self) -> int:
        return self.queue.pending_count
