"""Pluggable shard-execution backends for the group dispatch loop.

A :class:`~repro.server.dispatch.GroupDispatcher` hands each cut batch to
an execution backend and only *realizes* the replies at the scheduled
delivery event on the virtual clock.  Four backends exist:

- :class:`SerialBackend` (the default) runs the ecall immediately on the
  caller's thread — exactly the historical dispatch semantics, fully
  deterministic, violations surface at submit time;
- :class:`ThreadedBackend` runs it on a worker pool.  The enclave hot
  path is one C call per batch (``lcm_invoke_batch_open`` /
  ``lcm_invoke_batch_reply``) and cffi releases the GIL around it, so
  batches of *different* shards execute concurrently on a multi-core
  host.  Each dispatcher keeps at most one batch in flight (its ``busy``
  flag), so a single enclave is never entered concurrently.
- :class:`PipelinedBackend` additionally splits the batch ecall into
  stages: the enclave hands the state-seal stage back as a run-once
  flush handle (``invoke_batch_deferred``), which the dispatcher runs on
  the pool *while the same shard's next batch is already unsealing* —
  the Sec. 5.2 amortization argument applied across batch boundaries.
  Flushes per shard are FIFO-chained and the dispatcher's durability
  gate holds back every event that reads the store (batch boundaries,
  handoff export, reshard fences, crash capture) until the seal landed.
- :class:`ProcessBackend` runs batch ecalls in worker *processes* over
  picklable work descriptors (the serialized context plus the raw INVOKE
  boxes), for pure-Python deployments where the GIL still serializes the
  threaded backend.  The mutated context state ships back wholesale and
  is adopted by the live enclave program; untransportable contexts fall
  back to the in-process ecall.

Determinism contract: the simulator delivers replies at virtual-time
events whose order is independent of wall-clock completion, and the
enclave derives every reply nonce from its deterministic per-context
:class:`~repro.crypto.aead.NonceSequence` — so the bytes on the wire,
the hash chains, the audit logs and the checker verdicts are identical
under all four backends (pinned by the cross-backend parity tests).
A backend only changes *when* the work happens on the wall clock (and,
for ``pipelined``, how much of it sits on the virtual critical path),
never what it produces.

Selection: pass ``execution="threaded"`` (or ``"pipelined"`` /
``"process"``) to a cluster runtime, or set the ``REPRO_EXEC_BACKEND``
environment variable; the explicit argument wins.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable

from repro.errors import ConfigurationError

#: Environment override for the default backend choice.
_ENV_VAR = "REPRO_EXEC_BACKEND"


class SerialBackend:
    """Execute each batch at submit time on the caller's thread.

    ``submit`` returns a zero-argument *completion*: calling it yields
    the already-computed replies.  Exceptions (including the protocol's
    :class:`~repro.errors.SecurityViolation` halts) raise at submit,
    preserving the historical fail-stop call stack.
    """

    name = "serial"
    parallel = False

    def __init__(self) -> None:
        #: batches handed to this backend (plain int — the cluster's
        #: snapshot-time collector mirrors it into a registry gauge)
        self.batches_submitted = 0

    def submit(self, work: Callable[[], list]) -> Callable[[], list]:
        self.batches_submitted += 1
        value = work()
        return lambda: value

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadedBackend:
    """Execute batches on a shared worker pool.

    ``submit`` returns the future's ``result`` bound method: the
    dispatcher calls it at the scheduled delivery event, joining the
    worker (and re-raising any ecall exception) at the batch boundary —
    the single point where results re-enter the deterministic event
    order.
    """

    name = "threaded"
    parallel = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("threaded backend needs >= 1 worker")
        self._pool = ThreadPoolExecutor(
            max_workers=workers or min(32, os.cpu_count() or 1),
            thread_name_prefix="repro-exec",
        )
        #: batches handed to the pool (plain int; the dispatcher keeps
        #: one batch in flight per shard, so this only races snapshot
        #: reads, never itself)
        self.batches_submitted = 0

    def submit(self, work: Callable[[], list]) -> Callable[[], list]:
        self.batches_submitted += 1
        return self._pool.submit(work).result

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


#: Measured ``state_seal`` share of the batch ecall's ``wall_total`` on
#: the native-batch path (PR 9 stage probe, batched-invoke family).  The
#: pipelined dispatcher charges the seal stage this fraction of the
#: virtual service time and takes it *off* the delivery critical path, so
#: the steady-state saturation throughput gain is ``1 / (1 - share)``.
DEFAULT_SEAL_SHARE = 0.19


class PipelinedBackend(ThreadedBackend):
    """Threaded execution plus a deferred state-seal stage.

    The dispatcher asks the enclave for ``invoke_batch_deferred``: the
    batch returns as soon as the replies are sealed, handing back a
    run-once flush for the state seal.  :meth:`submit_flush` runs that
    flush on the worker pool, overlapping it — on the wall clock — with
    the next batch's unseal/decrypt stage on the same shard.

    By default the *virtual* schedule is untouched: deliveries land at
    exactly the serial backend's events, so every trace stays
    byte-identical to ``serial``/``threaded``/``process`` (the parity
    contract), and the overlap only shortens wall-clock time on
    multi-core hosts.  ``virtual_split=True`` additionally applies the
    split to the performance model itself: delivery after
    ``(1 - seal_share)`` of the virtual service time, with a separate
    seal-stage completion event after the rest, during which the
    dispatcher withholds batch boundaries (reshard fences, handoff
    export) so everything that reads the store still observes a durably
    completed seal.  That mode *changes virtual timing by design* — it
    is the cost-model refinement the frontier harness measures (a
    closed feedback loop reacts to the earlier deliveries, so its
    evidence bytes legitimately differ from the serial schedule's).
    """

    name = "pipelined"
    pipelined = True

    def __init__(
        self,
        workers: int | None = None,
        *,
        seal_share: float | None = None,
        virtual_split: bool = False,
    ) -> None:
        super().__init__(workers)
        share = DEFAULT_SEAL_SHARE if seal_share is None else float(seal_share)
        if not 0.0 < share <= 0.5:
            # past 0.5 the seal stage, not the execute stage, would be the
            # pipeline bottleneck and the two-stage model below would let
            # seal completions lag unboundedly behind deliveries
            raise ConfigurationError(
                f"seal_share must be in (0, 0.5], got {share}"
            )
        self.seal_share = share
        self.virtual_split = virtual_split
        #: deferred seal flushes handed to the pool (snapshot diagnostics)
        self.flushes_submitted = 0
        #: with a single worker there is nothing to overlap with — a pool
        #: handoff per batch and per flush would be pure overhead — so
        #: both the batch ecall and the seal flush run on the caller's
        #: thread instead.  Exceptions still surface at the dispatcher's
        #: join points (the delivery boundary), identical to the pooled
        #: path, so the halt/record/propagate policy does not depend on
        #: the host's core count.
        self.inline = (
            workers if workers is not None else (os.cpu_count() or 1)
        ) < 2
        if self.inline:
            # the dispatcher falls back to running the flush chain on the
            # spot when the backend offers no pooled flush entry point
            self.submit_flush = None  # type: ignore[assignment]

    def submit(self, work: Callable[[], list]) -> Callable[[], list]:
        if not self.inline:
            return super().submit(work)
        self.batches_submitted += 1
        try:
            value = work()
        except Exception as exc:
            def raise_at_join(exc: Exception = exc) -> list:
                raise exc
            return raise_at_join
        return lambda: value

    def submit_flush(self, flush: Callable[[], None]) -> Callable[[], None]:
        """Run a seal flush on the pool; returns its join."""
        self.flushes_submitted += 1
        return self._pool.submit(flush).result


class _ChildEnv:
    """Enclave environment stub for a process-pool replica.

    The batch invoke path touches the environment only to store sealed
    blobs (captured here and replayed against the parent's storage);
    keys, attestation and the nonce seed were all consumed at epoch
    start in the parent, so any other access is a contract violation.
    """

    __slots__ = ("stored",)

    def __init__(self) -> None:
        self.stored: list[bytes] = []

    def ocall_store(self, blob: bytes) -> None:
        self.stored.append(blob)

    def ocall_load(self) -> bytes | None:
        raise ConfigurationError("process replica must not reload state")

    def secure_random(self, n: int) -> bytes:
        raise ConfigurationError("process replica must not draw entropy")

    def get_key(self, *context) -> None:
        raise ConfigurationError("process replica must not derive keys")

    def create_report(self, user_data: bytes) -> None:
        raise ConfigurationError("process replica must not attest")


def _execute_batch_payload(data: bytes):
    """Worker-process entry: run one batch ecall on a context replica.

    Returns ``(status, value, stored_blobs, context_state)`` where
    ``value`` is the ecall outcome or the raised exception — the parent
    re-raises it at the same delivery boundary an in-process ecall
    would, and adopts the shipped state either way (a halt recorded by
    the replica must survive adoption).
    """
    program, messages = pickle.loads(data)
    env = _ChildEnv()
    program._env = env
    try:
        value = program.ecall("invoke_batch", messages)
        status = "ok"
    except Exception as exc:  # noqa: BLE001 — transported verbatim
        value = exc
        status = "err"
    return status, value, env.stored, program.__getstate__()


class ProcessBackend(ThreadedBackend):
    """Execute batch ecalls in worker processes (GIL-free).

    The dispatch loop is the threaded backend's; what changes is the
    host's batch ecall itself (:meth:`run_batch`, installed on each
    correct host as ``remote_executor``): the live context is pickled
    together with the raw INVOKE boxes into one work descriptor, a
    worker process runs the ecall — nonces come from the deterministic
    per-context sequence, so the bytes match the in-process ecall
    exactly — and the mutated context state ships back and is adopted
    wholesale.  Contexts that cannot be transported (exotic
    functionality state, adversarial hosts) fall back to the in-process
    ecall, preserving behaviour at a bounded speed cost.
    """

    name = "process"
    wants_remote = True

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        count = workers or min(8, os.cpu_count() or 1)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork: pay the spawn cost
            context = multiprocessing.get_context("spawn")
        self._procs = ProcessPoolExecutor(max_workers=count, mp_context=context)
        # warm the first worker now, before any dispatcher threads start:
        # forking from a single-threaded parent sidesteps the classic
        # locks-held-at-fork hazards for the common one-worker case
        self._procs.submit(int).result()
        self.remote_batches = 0
        self.remote_fallbacks = 0

    def run_batch(self, enclave, payload: list, store: Callable[[bytes], None]):
        """Run one batch ecall in a worker process.

        Returns ``(ran, outcome)``; ``ran`` is False when the context
        cannot be transported and the caller must fall back to the
        in-process ecall.
        """
        program = enclave.program
        if program is None or not hasattr(program, "adopt_exec_state"):
            self.remote_fallbacks += 1
            return False, None
        try:
            data = pickle.dumps(
                (program, payload), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:  # unpicklable functionality state
            self.remote_fallbacks += 1
            return False, None
        status, value, stored, state = self._procs.submit(
            _execute_batch_payload, data
        ).result()
        program.adopt_exec_state(state)
        for blob in stored:
            store(blob)
        enclave.ecalls += 1  # the replica's ecall counts as this enclave's
        self.remote_batches += 1
        if status == "err":
            raise value
        return True, value

    def shutdown(self) -> None:
        super().shutdown()
        self._procs.shutdown(wait=True)


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadedBackend.name: ThreadedBackend,
    PipelinedBackend.name: PipelinedBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_execution_backend(
    name: str | None = None, *, workers: int | None = None
):
    """Build an execution backend by name.

    ``None`` consults ``REPRO_EXEC_BACKEND`` and falls back to the
    serial default; an unknown name raises
    :class:`~repro.errors.ConfigurationError`.  An already-constructed
    backend object passes through unchanged (the frontier harness builds
    :class:`PipelinedBackend` instances with explicit model parameters).
    """
    if name is not None and not isinstance(name, str):
        return name  # pre-built backend instance
    if name is None:
        name = os.environ.get(_ENV_VAR, "").strip() or SerialBackend.name
    backend_cls = _BACKENDS.get(name)
    if backend_cls is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r} "
            f"(choose from {sorted(_BACKENDS)})"
        )
    if backend_cls is SerialBackend:
        return SerialBackend()
    return backend_cls(workers)
