"""Pluggable shard-execution backends for the group dispatch loop.

A :class:`~repro.server.dispatch.GroupDispatcher` hands each cut batch to
an execution backend and only *realizes* the replies at the scheduled
delivery event on the virtual clock.  Two backends exist:

- :class:`SerialBackend` (the default) runs the ecall immediately on the
  caller's thread — exactly the historical dispatch semantics, fully
  deterministic, violations surface at submit time;
- :class:`ThreadedBackend` runs it on a worker pool.  The enclave hot
  path is one C call per batch (``lcm_invoke_batch_open`` /
  ``lcm_invoke_batch_reply``) and cffi releases the GIL around it, so
  batches of *different* shards execute concurrently on a multi-core
  host.  Each dispatcher keeps at most one batch in flight (its ``busy``
  flag), so a single enclave is never entered concurrently.

Determinism contract: the simulator delivers replies at virtual-time
events whose order is independent of wall-clock completion, and the
enclave derives every reply nonce from its deterministic per-context
:class:`~repro.crypto.aead.NonceSequence` — so the bytes on the wire,
the hash chains, the audit logs and the checker verdicts are identical
under both backends (pinned by the cross-backend parity tests).  The
threaded backend only changes *when* the work happens on the wall
clock, never what it produces.

Selection: pass ``execution="threaded"`` to a cluster runtime, or set
the ``REPRO_EXEC_BACKEND`` environment variable (``serial`` |
``threaded``); the explicit argument wins.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.errors import ConfigurationError

#: Environment override for the default backend choice.
_ENV_VAR = "REPRO_EXEC_BACKEND"


class SerialBackend:
    """Execute each batch at submit time on the caller's thread.

    ``submit`` returns a zero-argument *completion*: calling it yields
    the already-computed replies.  Exceptions (including the protocol's
    :class:`~repro.errors.SecurityViolation` halts) raise at submit,
    preserving the historical fail-stop call stack.
    """

    name = "serial"
    parallel = False

    def __init__(self) -> None:
        #: batches handed to this backend (plain int — the cluster's
        #: snapshot-time collector mirrors it into a registry gauge)
        self.batches_submitted = 0

    def submit(self, work: Callable[[], list]) -> Callable[[], list]:
        self.batches_submitted += 1
        value = work()
        return lambda: value

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadedBackend:
    """Execute batches on a shared worker pool.

    ``submit`` returns the future's ``result`` bound method: the
    dispatcher calls it at the scheduled delivery event, joining the
    worker (and re-raising any ecall exception) at the batch boundary —
    the single point where results re-enter the deterministic event
    order.
    """

    name = "threaded"
    parallel = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("threaded backend needs >= 1 worker")
        self._pool = ThreadPoolExecutor(
            max_workers=workers or min(32, os.cpu_count() or 1),
            thread_name_prefix="repro-exec",
        )
        #: batches handed to the pool (plain int; the dispatcher keeps
        #: one batch in flight per shard, so this only races snapshot
        #: reads, never itself)
        self.batches_submitted = 0

    def submit(self, work: Callable[[], list]) -> Callable[[], list]:
        self.batches_submitted += 1
        return self._pool.submit(work).result

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadedBackend.name: ThreadedBackend,
}


def make_execution_backend(
    name: str | None = None, *, workers: int | None = None
):
    """Build an execution backend by name.

    ``None`` consults ``REPRO_EXEC_BACKEND`` and falls back to the
    serial default; an unknown name raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if name is None:
        name = os.environ.get(_ENV_VAR, "").strip() or SerialBackend.name
    backend_cls = _BACKENDS.get(name)
    if backend_cls is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r} "
            f"(choose from {sorted(_BACKENDS)})"
        )
    if backend_cls is ThreadedBackend:
        return ThreadedBackend(workers)
    return backend_cls()
