"""The malicious server: every Byzantine capability of Sec. 2.3.

A malicious server has full control over the OS, applications, memory and
stable storage — but cannot tamper with code and data *inside* the trusted
execution context.  Concretely it can:

- **rollback** — restart ``T`` and serve an *older* (but correctly sealed)
  state blob from stable storage;
- **fork** — run multiple instances of ``T`` concurrently (or multiplex
  them), feed each a valid state, and partition the clients among them;
- **replay / tamper / drop / reorder** messages between clients and ``T``.

``MaliciousServer`` keeps the honest :class:`~repro.server.host.ServerHost`
transport API so the same client code runs against it unchanged; attack
tests then trigger misbehaviour through the extra methods and assert that
LCM's checks fire (or, for the plain-SGX baseline, that they silently
don't — which is the paper's motivation).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import StorageError
from repro.server.storage import StableStorage
from repro.tee.enclave import Enclave, EnclaveProgram
from repro.tee.platform import TeePlatform


@dataclass
class _Instance:
    """One multiplexed copy of the trusted execution context.

    Each instance owns a private storage view, so the server can hand each
    fork "a different, but valid state" (Sec. 2.3).
    """

    enclave: Enclave
    storage: StableStorage
    name: str = ""
    recorded_invokes: list[tuple[int, bytes]] = field(default_factory=list)

    def ocall_store(self, blob: bytes) -> None:
        self.storage.store(blob)

    def ocall_load(self) -> bytes | None:
        return self.storage.load()


class MaliciousServer:
    """A Byzantine server multiplexing one or more enclave instances."""

    def __init__(
        self,
        platform: TeePlatform,
        program_factory: Callable[[], EnclaveProgram],
    ) -> None:
        self.platform = platform
        self._program_factory = program_factory
        primary_storage = StableStorage("instance-0")
        primary = _Instance(enclave=None, storage=primary_storage, name="instance-0")  # type: ignore[arg-type]
        primary.enclave = platform.create_enclave(program_factory, host=primary)
        self.instances: list[_Instance] = [primary]
        self._routing: dict[int, int] = {}
        self._tamper_hook: Callable[[bytes], bytes] | None = None

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        self.instances[0].enclave.start()

    def shutdown(self) -> None:
        for instance in self.instances:
            if instance.enclave.running:
                instance.enclave.stop()

    # --------------------------------------------------- honest-looking API

    def send_invoke(self, client_id: int, message: bytes) -> bytes:
        """Deliver an INVOKE to whichever instance this client is routed to."""
        instance = self._instance_for(client_id)
        if self._tamper_hook is not None:
            message = self._tamper_hook(message)
        instance.recorded_invokes.append((client_id, message))
        outcome = instance.enclave.ecall("invoke", message)
        if isinstance(outcome, dict):  # Sec. 5.2 piggybacked sealed state
            instance.storage.store(outcome["state"])
            return outcome["reply"]
        return outcome

    def send_invoke_batch(self, messages: list[tuple[int, bytes]]) -> list[bytes]:
        """Deliver a batch of INVOKEs, each to whichever instance its
        client is routed to.

        Part of the required host transport surface.  The Byzantine
        server multiplexes enclave instances, so a batch may fan out
        across forks; delivering per message through :meth:`send_invoke`
        keeps the attack semantics (routing, tampering, recording)
        identical to the unbatched path.
        """
        return [
            self.send_invoke(client_id, message)
            for client_id, message in messages
        ]

    def ocall_store(self, blob: bytes) -> None:  # pragma: no cover - compat shim
        self.instances[0].ocall_store(blob)

    def ocall_load(self) -> bytes | None:  # pragma: no cover - compat shim
        return self.instances[0].ocall_load()

    @property
    def storage(self) -> StableStorage:
        return self.instances[0].storage

    @property
    def enclave(self) -> Enclave:
        return self.instances[0].enclave

    # -------------------------------------------------------------- attacks

    def rollback(self, version_index: int, instance_index: int = 0) -> None:
        """Mount a rollback attack: restart ``T`` from an older sealed blob.

        The blob is authentic (sealed by ``T`` itself), merely stale — the
        attack SGX alone cannot detect.
        """
        instance = self.instances[instance_index]
        instance.storage.rollback_to(version_index)
        instance.enclave.crash()
        instance.enclave.start()

    def fork(self, from_version: int | None = None) -> int:
        """Spawn a second (or nth) enclave instance from a chosen state.

        ``from_version`` selects which stored version seeds the new
        instance's storage view (default: the current one).  Returns the new
        instance index; use :meth:`route_client` to partition clients.
        """
        base = self.instances[0].storage
        if base.version_count() == 0:
            raise StorageError("nothing stored yet; nothing to fork from")
        upto = base.latest_index() if from_version is None else from_version
        view = StableStorage(f"instance-{len(self.instances)}")
        for index in range(upto + 1):
            view.store(base.load_version(index))
        instance = _Instance(enclave=None, storage=view, name=view.name)  # type: ignore[arg-type]
        instance.enclave = self.platform.create_enclave(self._program_factory, host=instance)
        instance.enclave.start()
        self.instances.append(instance)
        return len(self.instances) - 1

    def route_client(self, client_id: int, instance_index: int) -> None:
        """Partition: pin a client to a specific enclave instance."""
        if not 0 <= instance_index < len(self.instances):
            raise StorageError(f"no instance {instance_index}")
        self._routing[client_id] = instance_index

    def replay_last_invoke(self, client_id: int, instance_index: int = 0) -> bytes:
        """Re-deliver the client's last INVOKE (message replay attack)."""
        instance = self.instances[instance_index]
        for recorded_id, message in reversed(instance.recorded_invokes):
            if recorded_id == client_id:
                return instance.enclave.ecall("invoke", message)
        raise StorageError(f"no recorded INVOKE from client {client_id}")

    def set_tamper_hook(self, hook: Callable[[bytes], bytes] | None) -> None:
        """Install a bit-flipping (or arbitrary) message transformation."""
        self._tamper_hook = hook

    def crash_and_restart(self, instance_index: int = 0) -> None:
        """A plain crash/restart with the *current* state (not an attack)."""
        instance = self.instances[instance_index]
        instance.enclave.crash()
        instance.enclave.start()

    def snapshot_versions(self, instance_index: int = 0) -> list[bytes]:
        """Copy of all sealed blobs this instance has stored (for forensics)."""
        storage = self.instances[instance_index].storage
        return [
            copy.copy(storage.load_version(index))
            for index in range(storage.version_count())
        ]

    # -------------------------------------------------------------- helpers

    def _instance_for(self, client_id: int) -> _Instance:
        return self.instances[self._routing.get(client_id, 0)]
