"""The correct untrusted server runtime.

``ServerHost`` wires together one TEE platform, one trusted execution
context and one stable storage (Fig. 1 / Fig. 3 of the paper).  It exposes:

- the **ocall surface** the enclave persists its sealed state through
  (:meth:`ocall_store` / :meth:`ocall_load`);
- the **transport surface** clients send INVOKE messages to
  (:meth:`send_invoke`), optionally batched (Sec. 5.3);
- **lifecycle** operations (:meth:`start`, :meth:`reboot`) — a correct
  server restarts ``T`` after any crash, and ``T`` recovers from the sealed
  blob (Sec. 4.4).

A correct server forwards every message faithfully and always returns the
most recently stored blob.  The adversarial subclass lives in
:mod:`repro.server.faults`.
"""

from __future__ import annotations

from typing import Callable

from repro.server.batching import BatchQueue
from repro.server.storage import StableStorage
from repro.tee.enclave import Enclave, EnclaveProgram
from repro.tee.platform import TeePlatform


class ServerHost:
    """A correct server hosting one trusted execution context."""

    def __init__(
        self,
        platform: TeePlatform,
        program_factory: Callable[[], EnclaveProgram],
        *,
        storage: StableStorage | None = None,
        batch_limit: int | None = None,
    ) -> None:
        self.platform = platform
        self.storage = storage if storage is not None else StableStorage()
        self._program_factory = program_factory
        self.enclave: Enclave = platform.create_enclave(program_factory, host=self)
        self._batch_limit = batch_limit
        self.requests_handled = 0
        # set by the ``process`` execution backend: batch ecalls are then
        # offloaded to a worker process (GIL-free), falling back to the
        # in-process ecall when the context cannot be transported
        self.remote_executor = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Create/boot the trusted execution context (begin an epoch)."""
        self.enclave.start()

    def reboot(self) -> None:
        """Crash-and-restart cycle: volatile enclave memory is lost, the
        enclave re-enters ``init`` and recovers from the sealed state."""
        self.enclave.crash()
        self.enclave.start()

    def shutdown(self) -> None:
        """Orderly stop of the trusted execution context."""
        if self.enclave.running:
            self.enclave.stop()

    # ---------------------------------------------------------- ocall surface

    def ocall_store(self, blob: bytes) -> None:
        """Persist a sealed blob on behalf of the enclave (correct host)."""
        self.storage.store(blob)

    def ocall_load(self) -> bytes | None:
        """Return the most recently stored sealed blob (correct host)."""
        return self.storage.load()

    # ------------------------------------------------------- transport surface

    def send_invoke(self, client_id: int, message: bytes) -> bytes:
        """Forward one INVOKE message into the enclave, return the REPLY.

        The functional layer is synchronous call-return; the performance
        model in :mod:`repro.perf` adds queueing and timing around the same
        operations.  When the context runs with the Sec. 5.2 piggyback
        optimisation, the sealed state arrives with the reply and the
        server writes it to disk before forwarding.
        """
        self.requests_handled += 1
        outcome = self.enclave.ecall("invoke", message)
        if isinstance(outcome, dict):
            self.storage.store(outcome["state"])
            return outcome["reply"]
        return outcome

    def send_invoke_batch(self, messages: list[tuple[int, bytes]]) -> list[bytes]:
        """Forward a batch of (client_id, INVOKE) pairs in one ecall."""
        self.requests_handled += len(messages)
        payload = [message for _, message in messages]
        if self.remote_executor is not None:
            ran, outcome = self.remote_executor.run_batch(
                self.enclave, payload, self.storage.store
            )
            if not ran:  # untransportable context: run the ecall in-process
                outcome = self.enclave.ecall("invoke_batch", payload)
        else:
            outcome = self.enclave.ecall("invoke_batch", payload)
        if isinstance(outcome, dict):
            self.storage.store(outcome["state"])
            return outcome["replies"]
        return outcome

    def send_invoke_batch_deferred(
        self, messages: list[tuple[int, bytes]]
    ) -> tuple[list[bytes], object | None]:
        """Batch forward with the state-seal stage handed back as a handle.

        Used by the ``pipelined`` execution backend: the replies are
        byte-identical to :meth:`send_invoke_batch`, and the returned
        handle (``None`` when the batch already sealed synchronously)
        flushes the seal to stable storage when run — the dispatcher
        overlaps that flush with the next batch's unseal stage while its
        durability gate holds back every event that reads the store.
        """
        self.requests_handled += len(messages)
        payload = [message for _, message in messages]
        outcome = self.enclave.ecall("invoke_batch_deferred", payload)
        return outcome["replies"], outcome["seal"]

    def make_batch_queue(
        self, reply_callback: Callable[[int, bytes], None]
    ) -> BatchQueue:
        """Build the bounded batching queue of Sec. 5.3.

        Items are (client_id, INVOKE bytes); on flush the whole batch enters
        the enclave in a single ecall and each reply is routed back to its
        client via ``reply_callback``.
        """
        limit = self._batch_limit or 16

        def flush(batch: list[tuple[int, bytes]]) -> None:
            replies = self.send_invoke_batch(batch)
            for (client_id, _), reply in zip(batch, replies):
                reply_callback(client_id, reply)

        return BatchQueue(limit, flush)

    # --------------------------------------------------------------- queries

    def ecall_count(self) -> int:
        """Number of enclave transitions so far (batching diagnostics)."""
        return self.enclave.ecalls

    def stored_versions(self) -> int:
        """Number of sealed blobs ever written to stable storage."""
        return self.storage.version_count()
