"""Versioned stable storage and the disk timing model.

``StableStorage`` retains *every* blob ever stored.  A correct server's
``load`` returns the most recent one; keeping the full version history is
what gives a malicious server its rollback ammunition ("a malicious server
may still return a correctly protected but outdated state", Sec. 2.3) and
lets tests assert exactly which stale state was replayed.

``DiskModel`` supplies the timing side for the performance experiments:
Fig. 5 runs with asynchronous writes (the write syscall returns after
hitting the page cache), Fig. 6 with fsync per state store, which the paper
shows flattens every non-batching system to a few hundred ops/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError


@dataclass(frozen=True)
class DiskModel:
    """Latency model for one store of a state blob.

    ``async_write_latency`` models a buffered write on the paper's SSD;
    ``fsync_latency`` the full synchronous flush.  Values are calibrated in
    :mod:`repro.perf.costs`; these defaults match a SATA SSD of the period.
    """

    async_write_latency: float = 30e-6
    fsync_latency: float = 4.0e-3
    bytes_per_second: float = 450e6  # sequential write bandwidth

    def write_time(self, size_bytes: int, *, fsync: bool) -> float:
        transfer = size_bytes / self.bytes_per_second
        if fsync:
            return self.fsync_latency + transfer
        return self.async_write_latency + transfer


class StableStorage:
    """Append-only version store with a movable "current" pointer.

    A correct host only ever calls :meth:`store` and :meth:`load`.  The
    malicious host additionally uses :meth:`version_count`,
    :meth:`load_version` and :meth:`rollback_to` — the latter repoints
    "current" at an older version, which is precisely a rollback attack on
    the next enclave restart.
    """

    def __init__(self, name: str = "stable-storage") -> None:
        self.name = name
        self._versions: list[bytes] = []
        self._current: int = -1
        self.stores = 0
        self.loads = 0

    # -------------------------------------------------- correct-host surface

    def store(self, blob: bytes) -> int:
        """Persist a blob; returns its version index."""
        if not isinstance(blob, (bytes, bytearray)):
            raise StorageError("stable storage holds bytes only")
        self._versions.append(bytes(blob))
        self._current = len(self._versions) - 1
        self.stores += 1
        return self._current

    def load(self) -> bytes | None:
        """Return the blob at the current pointer (None if nothing stored)."""
        self.loads += 1
        if self._current < 0:
            return None
        return self._versions[self._current]

    # ------------------------------------------------ malicious-host surface

    def version_count(self) -> int:
        return len(self._versions)

    def load_version(self, index: int) -> bytes:
        try:
            return self._versions[index]
        except IndexError as exc:
            raise StorageError(f"no stored version {index}") from exc

    def rollback_to(self, index: int) -> None:
        """Repoint "current" at an older version (rollback attack setup)."""
        if not 0 <= index < len(self._versions):
            raise StorageError(f"no stored version {index}")
        self._current = index

    def latest_index(self) -> int:
        return self._current

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._versions)
