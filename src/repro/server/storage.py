"""Versioned stable storage and the disk timing model.

``StableStorage`` retains *every* blob ever stored.  A correct server's
``load`` returns the most recent one; keeping the full version history is
what gives a malicious server its rollback ammunition ("a malicious server
may still return a correctly protected but outdated state", Sec. 2.3) and
lets tests assert exactly which stale state was replayed.

Since the trusted context seals its state as ``[key_blob, static_blob,
dynamic_blob]``, consecutive per-operation versions share a long common
prefix (the key and static-config boxes change only on membership or key
events).  The store exploits that: each version is kept as a delta against
the previously appended one — ``(shared prefix length, suffix bytes)`` —
with a full snapshot every :data:`SNAPSHOT_INTERVAL` versions so any
version reconstructs in a bounded number of joins.  The external contract
is unchanged: ``load``/``load_version`` return the exact bytes stored.

``DiskModel`` supplies the timing side for the performance experiments:
Fig. 5 runs with asynchronous writes (the write syscall returns after
hitting the page cache), Fig. 6 with fsync per state store, which the paper
shows flattens every non-batching system to a few hundred ops/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

try:  # vectorised first-mismatch scan; the image bakes numpy in
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

#: Every Nth version is stored in full, bounding delta-chain reconstruction.
SNAPSHOT_INTERVAL = 64


def _common_prefix_length(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of two byte strings."""
    n = min(len(a), len(b))
    if 0 < n <= 1024:
        # below ~1 KiB a single big-int XOR beats the numpy pass (no
        # array-object setup); the top set bit locates the first mismatch
        xor = int.from_bytes(a[:n], "big") ^ int.from_bytes(b[:n], "big")
        if xor == 0:
            return n
        return n - ((xor.bit_length() + 7) >> 3)
    if _np is not None and n > 64:
        # one vectorised pass, no slice copies (frombuffer is zero-copy);
        # consecutive sealed blobs usually differ, so the eager equality
        # slice-compare below would copy both strings just to fail
        mismatch = (
            _np.frombuffer(a, dtype=_np.uint8, count=n)
            != _np.frombuffer(b, dtype=_np.uint8, count=n)
        )
        first = int(mismatch.argmax())
        if first == 0 and not mismatch[0]:
            return n  # argmax of all-False is 0: fully shared prefix
        return first
    if a[:n] == b[:n]:
        return n
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


@dataclass(frozen=True)
class DiskModel:
    """Latency model for one store of a state blob.

    ``async_write_latency`` models a buffered write on the paper's SSD;
    ``fsync_latency`` the full synchronous flush.  Values are calibrated in
    :mod:`repro.perf.costs`; these defaults match a SATA SSD of the period.
    """

    async_write_latency: float = 30e-6
    fsync_latency: float = 4.0e-3
    bytes_per_second: float = 450e6  # sequential write bandwidth

    def write_time(self, size_bytes: int, *, fsync: bool) -> float:
        transfer = size_bytes / self.bytes_per_second
        if fsync:
            return self.fsync_latency + transfer
        return self.async_write_latency + transfer


class StableStorage:
    """Append-only version store with a movable "current" pointer.

    A correct host only ever calls :meth:`store` and :meth:`load`.  The
    malicious host additionally uses :meth:`version_count`,
    :meth:`load_version` and :meth:`rollback_to` — the latter repoints
    "current" at an older version, which is precisely a rollback attack on
    the next enclave restart.
    """

    def __init__(self, name: str = "stable-storage", *, delta: bool = True) -> None:
        self.name = name
        #: prefix-sharing only pays off when consecutive versions are
        #: near-copies (sealed state blobs); stores whose versions are
        #: unrelated records (the coordinator's decision log) pass
        #: ``delta=False`` and skip the scan — every version is a snapshot
        self._delta = delta
        # (shared prefix length vs the previously appended version, suffix);
        # snapshot versions have shared length 0
        self._records: list[tuple[int, bytes]] = []
        self._lengths: list[int] = []
        self._tail: bytes = b""  # full bytes of the newest version
        self._current: int = -1
        self.stores = 0
        self.loads = 0

    # -------------------------------------------------- correct-host surface

    def store(self, blob: bytes) -> int:
        """Persist a blob; returns its version index."""
        if not isinstance(blob, (bytes, bytearray)):
            raise StorageError("stable storage holds bytes only")
        blob = bytes(blob)
        if self._delta and self._records and len(self._records) % SNAPSHOT_INTERVAL:
            shared = _common_prefix_length(self._tail, blob)
        else:
            shared = 0
        self._records.append((shared, blob[shared:]))
        self._lengths.append(len(blob))
        self._tail = blob
        self._current = len(self._records) - 1
        self.stores += 1
        return self._current

    def load(self) -> bytes | None:
        """Return the blob at the current pointer (None if nothing stored)."""
        self.loads += 1
        if self._current < 0:
            return None
        return self.load_version(self._current)

    # ------------------------------------------------ malicious-host surface

    def version_count(self) -> int:
        return len(self._records)

    def load_version(self, index: int) -> bytes:
        if not 0 <= index < len(self._records):
            raise StorageError(f"no stored version {index}")
        if index == len(self._records) - 1:
            return self._tail
        base = index
        while self._records[base][0]:
            base -= 1
        blob = self._records[base][1]
        for position in range(base + 1, index + 1):
            shared, suffix = self._records[position]
            blob = blob[:shared] + suffix
        return blob

    def rollback_to(self, index: int) -> None:
        """Repoint "current" at an older version (rollback attack setup)."""
        if not 0 <= index < len(self._records):
            raise StorageError(f"no stored version {index}")
        self._current = index

    def latest_index(self) -> int:
        return self._current

    def total_bytes(self) -> int:
        """Logical bytes across all versions (as if each were stored whole)."""
        return sum(self._lengths)

    def physical_bytes(self) -> int:
        """Bytes actually retained after prefix-sharing delta compression."""
        return sum(len(suffix) for _, suffix in self._records)

    def last_delta_bytes(self) -> int | None:
        """Bytes the most recent store physically appended (its suffix).

        This is the quantity the :class:`DiskModel` charges a steady-state
        sync write for (``CostModel.sealed_store_bytes``): the sealed-blob
        prefix shared with the previous version never hits the disk again.
        """
        if not self._records:
            return None
        return len(self._records[-1][1])
