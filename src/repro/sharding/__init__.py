"""Sharded group runtime: many LCM groups over one partitioned keyspace.

The paper protects a *single* enclave-hosted functionality; its client
scaling results (Figs. 5/6) saturate at the one-group ceiling because the
whole keyspace funnels through one single-threaded trusted context.  This
package runs **many LCM groups side by side**:

- :mod:`~repro.sharding.partitioner` — a consistent-hash keyspace
  partitioner with virtual nodes (:class:`HashRing`);
- :mod:`~repro.sharding.cluster` — :class:`ShardedCluster`, provisioning N
  independent groups (own platform, host, sealed storage, batch queue)
  over the discrete-event simulator, with migration-driven rebalancing;
- :mod:`~repro.sharding.router` — :class:`ShardRouter`, the client facade
  that routes single-key operations, fans multi-key/scan requests out
  across shards concurrently, and merges per-shard fork-linearizability
  evidence into one :class:`ShardedVerdict`.

Every shard individually keeps LCM's rollback/forking guarantees; the
compound system adds horizontal scale without weakening any of them.
"""

from repro.sharding.cluster import ShardedCluster, ShardedStats
from repro.sharding.partitioner import HashRing
from repro.sharding.router import (
    ShardRouter,
    ShardVerdict,
    ShardedVerdict,
    routing_key,
)

__all__ = [
    "HashRing",
    "ShardedCluster",
    "ShardedStats",
    "ShardRouter",
    "ShardVerdict",
    "ShardedVerdict",
    "routing_key",
]
