"""Sharded group runtime: many LCM groups over one partitioned keyspace.

The paper protects a *single* enclave-hosted functionality; its client
scaling results (Figs. 5/6) saturate at the one-group ceiling because the
whole keyspace funnels through one single-threaded trusted context.  This
package runs **many LCM groups side by side**:

- :mod:`~repro.sharding.partitioner` — a consistent-hash keyspace
  partitioner with virtual nodes (:class:`HashRing`), including the
  :meth:`~HashRing.arc_diff` movement contract for membership changes;
- :mod:`~repro.sharding.cluster` — :class:`ShardedCluster`, provisioning N
  independent groups (own platform, host, sealed storage, batch queue)
  over the discrete-event simulator, with migration-driven rebalancing,
  runtime ``add_shard``/``remove_shard``/``recover_shard`` and
  crash-fault injection;
- :mod:`~repro.sharding.controlplane` — :class:`ControlPlane`, the
  sequencer that fences + drains the shards a reconfiguration touches
  and hands over exactly the ring-reassigned keys between live groups;
- :mod:`~repro.sharding.router` — :class:`ShardRouter`, the client facade
  that routes single-key operations, fans multi-key/scan requests out
  across shards concurrently, parks + replays operations across outages
  (``failover=True``), and merges per-shard fork-linearizability
  evidence — every generation of every shard id — into one
  :class:`ShardedVerdict`.

Every shard individually keeps LCM's rollback/forking guarantees; the
compound system adds horizontal scale and elasticity without weakening
any of them (see README "Consistency contract" for exactly what the
merged verdict does and does not promise).
"""

from repro.sharding.cluster import (
    GenerationEvidence,
    ShardedCluster,
    ShardedStats,
)
from repro.sharding.controlplane import ControlPlane, ReshardReport
from repro.sharding.partitioner import ArcMove, HashRing
from repro.sharding.router import (
    GenerationVerdict,
    ShardRouter,
    ShardVerdict,
    ShardedVerdict,
    TxnRecord,
    TxnResult,
    routing_key,
)

__all__ = [
    "TxnRecord",
    "TxnResult",
    "ArcMove",
    "ControlPlane",
    "GenerationEvidence",
    "GenerationVerdict",
    "HashRing",
    "ReshardReport",
    "ShardedCluster",
    "ShardedStats",
    "ShardRouter",
    "ShardVerdict",
    "ShardedVerdict",
    "routing_key",
]
